"""Compare visualization techniques on the anomaly-finding task.

Renders the taxi trace with every technique from the paper's user study
(Section 5.1) and scores each two ways:

* **pixel error** — how faithfully it re-renders the raw plot (Table 4's
  metric; M4 wins by design);
* **saliency margin** — how strongly the rendered pixels separate the true
  anomalous region from the rest, per the simulated observer (the Figure 6
  mechanism; ASAP wins by design).

The point of the paper in one table: pixel fidelity and attention
prioritization are different goals.

Run:  python examples/anomaly_comparison.py
"""

import numpy as np

from repro.perception import VISUALIZATIONS, region_saliency, render_visualization
from repro.timeseries import load
from repro.vis import pixel_error

dataset = load("taxi")
values = dataset.series.values
n = len(values)
true_region = dataset.anomalies[0].region_index(n, regions=5)
x_range = (0.0, float(n - 1))

print(f"Taxi trace: {n} points, anomaly ({dataset.anomalies[0].kind}) "
      f"in plot region {true_region + 1}/5\n")
print(f"{'technique':>12} {'points':>7} {'pixel err':>10} {'saliency margin':>16}")
for technique in VISUALIZATIONS:
    plot = render_visualization(technique, values)
    error = pixel_error(
        values, plot.values, transformed_positions=plot.positions
    )
    saliency = region_saliency(
        plot.values, positions=plot.positions, x_range=x_range
    )
    others = np.delete(saliency, true_region)
    margin = float(saliency[true_region] - others.max())
    print(f"{technique:>12} {plot.values.size:>7} {error:>10.2f} {margin:>+16.2f}")

print("""
Reading the table:
  - M4/simp re-render the raw pixels almost exactly (low pixel error) but the
    anomalous region pops no more than in the raw plot (margin near zero).
  - ASAP disagrees with most raw pixels -- deliberately -- and produces the
    largest saliency margin: the observer (and the paper's human subjects)
    find the anomaly faster and more reliably.""")
