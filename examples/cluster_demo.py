"""Demo: a 4-shard cluster surviving a shard crash via checkpoint/restore.

The story in five acts:

1. bring up a :class:`~repro.cluster.ShardedHub` with 4 process shards and
   a dozen live streams;
2. serve a while (buffered ingest, one batched IPC round per shard per
   tick), then take a durable checkpoint (:mod:`repro.persist` — one NPZ
   file, no pickle);
3. hard-kill one shard worker, mid-service;
4. the next tick raises :class:`~repro.cluster.ShardDownError` — drop the
   dead shard and restore its streams from the checkpoint onto the
   surviving shards;
5. keep serving every stream, and show a restored stream's snapshot.

This demo drives the cluster tier directly because it exercises the
cluster-only operations (shard membership, crash recovery).  Programs that
only need the serving lifecycle should use :func:`repro.connect`
(``backend="sharded"``) — and can still reach these operations through
``client.hub``.

Run::

    PYTHONPATH=src python examples/cluster_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import AsapSpec
from repro.cluster import ShardDownError, ShardedHub

N_SHARDS = 4
N_STREAMS = 12
CHUNK = 100
WARM_ROUNDS = 8
FINAL_ROUNDS = 4


def main() -> None:
    rng = np.random.default_rng(20170501)
    length = (WARM_ROUNDS + FINAL_ROUNDS + 2) * CHUNK
    ts = np.arange(length, dtype=np.float64)
    traffic = [
        np.sin(2 * np.pi * ts / rng.integers(60, 200)) + 0.3 * rng.normal(size=length)
        for _ in range(N_STREAMS)
    ]
    # The unified spec configures the cluster exactly as it does smooth()
    # and the hub tier; it crosses the coordinator->shard IPC boundary as a
    # plain dict and travels inside the checkpoint unchanged.
    config = AsapSpec(pane_size=4, resolution=200, refresh_interval=10)

    print(f"1) starting {N_SHARDS} process shards, {N_STREAMS} streams")
    hub = ShardedHub(shards=N_SHARDS, backend="process", default_config=config)
    ids = [hub.create_stream(f"metric-{i}") for i in range(N_STREAMS)]
    for sid in ids:
        print(f"   {sid:10s} -> {hub.shard_of(sid)}")

    position = 0
    frames_served = 0
    for _ in range(WARM_ROUNDS):
        for index, sid in enumerate(ids):
            hub.ingest(
                sid,
                ts[position : position + CHUNK],
                traffic[index][position : position + CHUNK],
                buffered=True,
            )
        frames_served += sum(len(f) for f in hub.tick().values())
        position += CHUNK
    print(f"2) served {WARM_ROUNDS} rounds ({frames_served} frames); checkpointing")
    checkpoint_path = Path(tempfile.mkstemp(suffix=".npz", prefix="cluster-")[1])
    hub.checkpoint(checkpoint_path)
    print(f"   wrote {checkpoint_path} ({checkpoint_path.stat().st_size} bytes)")

    victim = hub.shard_of(ids[0])
    print(f"3) killing {victim} (hosts {sum(1 for s in ids if hub.shard_of(s) == victim)} streams)")
    hub.kill_shard(victim)

    try:
        for index, sid in enumerate(ids):
            hub.ingest(
                sid,
                ts[position : position + CHUNK],
                traffic[index][position : position + CHUNK],
                buffered=True,
            )
        hub.tick()
        raise SystemExit("the dead shard went unnoticed — this should not happen")
    except ShardDownError as exc:
        print(f"4) tick failed as expected: {exc}")
        lost = hub.drop_shard(exc.shard_ids[0])
        restored = hub.restore_streams(checkpoint_path, lost)
        print(
            f"   dropped {exc.shard_ids[0]}; restored {len(restored)} streams "
            f"from the checkpoint onto {len(hub.shard_ids)} surviving shards:"
        )
        for sid in restored:
            print(f"   {sid:10s} -> {hub.shard_of(sid)}")
    position += CHUNK

    # Restored streams lost the points after the checkpoint (that is the
    # durability contract) and simply resume from where the checkpoint was.
    print(f"5) serving {FINAL_ROUNDS} more rounds with every stream alive")
    frames_after = 0
    for _ in range(FINAL_ROUNDS):
        for index, sid in enumerate(ids):
            hub.ingest(
                sid,
                ts[position : position + CHUNK],
                traffic[index][position : position + CHUNK],
                buffered=True,
            )
        frames_after += sum(len(f) for f in hub.tick().values())
        position += CHUNK
    snap = hub.snapshot(ids[0])
    stats = hub.stats
    print(
        f"   {frames_after} frames after recovery; {ids[0]} has "
        f"{snap.panes} panes, window {snap.last_window}"
    )
    print(
        f"   cluster stats: {stats.sessions_active} sessions on "
        f"{len(hub.shard_ids)} shards, {stats.points_ingested} points, "
        f"{stats.frames_emitted} frames, {stats.sessions_imported} imports"
    )
    hub.shutdown()
    checkpoint_path.unlink()
    print("done: the cluster outlived its shard")


if __name__ == "__main__":
    main()
