"""Quickstart: smooth a noisy series for visualization in three lines.

Reproduces the paper's opening example (Figure 1): the NYC taxi trace, where
daily fluctuations hide a week-long Thanksgiving dip that ASAP's smoothing
makes obvious.

Run:  python examples/quickstart.py
"""

import repro
from repro.timeseries import load, zscore
from repro.vis import side_by_side

# 1. Load a time series (here: the reconstructed NYC taxi trace).
taxi = load("taxi")

# 2. Smooth it for an 800-pixel-wide plot. ASAP picks the window itself.
#    connect("local") runs in-process; the same client API scales to a
#    multi-tenant hub or a sharded cluster by changing that one argument
#    (see examples/tier_escalation.py).
client = repro.connect("local")
result = client.smooth(taxi.series, resolution=800)

# 3. Plot (terminal sparklines here; feed result.series to any charting lib).
print("ASAP quickstart — NYC taxi passengers, 75 days")
print(f"  chosen window : {result.window} aggregated points "
      f"({result.window_original_units} raw points = "
      f"{result.window_original_units / 48:.1f} days)")
print(f"  roughness     : {result.original_roughness:.4f} -> {result.roughness:.4f} "
      f"({result.roughness_reduction:.0f}x smoother)")
print(f"  kurtosis      : {result.original_kurtosis:.2f} -> {result.kurtosis:.2f} "
      f"(preserved: {result.kurtosis >= result.original_kurtosis})")
print(f"  search        : {result.search.candidates_evaluated} candidates "
      f"({result.search.strategy})")
print()
print(side_by_side([
    ("raw", zscore(taxi.series.values)),
    ("ASAP", zscore(result.series.values)),
], width=72))
print()
anomaly = taxi.anomalies[0]
print(f"The {anomaly.kind} spans samples [{anomaly.start}, {anomaly.end}) — "
      "visible as the dip about two thirds along the ASAP line.")
