"""Pixel-aware preaggregation across target devices (Table 1 / Section 4.4).

The same week of 1 Hz telemetry (604,800 points) is smoothed for each display
in the paper's Table 1.  The point-to-pixel ratio shrinks the search space by
orders of magnitude — watch the candidate counts and wall-clock times — while
the chosen window tracks the underlying daily period at every resolution.

Run:  python examples/device_resolutions.py
"""

import time

import numpy as np

from repro import smooth
from repro.timeseries import sine_wave, white_noise
from repro.vis import DEVICES, reduction_factor

# One week of 1-second samples with a daily cycle and a sustained incident.
N = 604_800
DAY = 86_400
values = (
    50.0
    + 10.0 * sine_wave(N, DAY)
    + white_noise(N, sigma=4.0, seed=42)
)
values[int(0.7 * N) : int(0.7 * N) + DAY // 2] -= 25.0  # half-day outage

print(f"One week of 1 Hz telemetry ({N:,} points), smoothed per device:\n")
print(f"{'device':>24} {'pixels':>7} {'ratio':>6} {'window':>14} "
      f"{'candidates':>10} {'time':>8}")
for device in DEVICES:
    start = time.perf_counter()
    result = smooth(values, resolution=device.horizontal)
    elapsed = time.perf_counter() - start
    window_hours = result.window_original_units / 3600.0
    print(
        f"{device.name:>24} {device.horizontal:>7} "
        f"{result.preaggregation_ratio:>6} "
        f"{result.window:>5} ({window_hours:>5.1f}h) "
        f"{result.search.candidates_evaluated:>10} "
        f"{elapsed * 1e3:>6.1f}ms"
    )

print(f"\nTable 1 reduction factors (search-space shrinkage on 1M points):")
for device in DEVICES:
    print(f"  {device.name:>24}: {reduction_factor(1_000_000, device.horizontal)}x")
print("\nEvery device resolves the daily structure; smaller screens simply")
print("search (and render) proportionally fewer candidates.")
