"""Historical analysis: 248 years of monthly temperature (Figure 3 and the
Temp user-study dataset).

Seasonal swings dominate the raw plot; ASAP smooths them away and the 1900s
warming trend emerges.  This is also the dataset where *oversmoothing* beats
ASAP in the paper's studies — both are shown so you can judge.

Run:  python examples/historical_climate.py
"""

from repro import smooth
from repro.spectral import sma
from repro.timeseries import kurtosis, load, roughness, zscore
from repro.vis import side_by_side

temp = load("temp")
values = temp.series.values

result = smooth(temp.series, resolution=800)
months_per_point = result.window_original_units
oversmooth_window = max(len(values) // 4, 2)
oversmoothed = sma(values, oversmooth_window)

print("Monthly temperature in England, 1723-1970 (reconstruction)")
print(f"  ASAP window       : {months_per_point} months "
      f"(~{months_per_point / 12:.0f}-year average; paper found 23 years)")
print(f"  oversmooth window : {oversmooth_window} months "
      f"(~{oversmooth_window / 12:.0f}-year average)")
print()
rows = [
    ("raw", values),
    ("ASAP", result.series.values),
    ("oversmoothed", oversmoothed),
]
print(f"{'plot':>14} {'roughness':>10} {'kurtosis':>9}")
for label, series in rows:
    print(f"{label:>14} {roughness(series):>10.4f} {kurtosis(series):>9.2f}")
print()
print(side_by_side([(label, zscore(series)) for label, series in rows], width=72))
print()
anomaly = temp.anomalies[0]
print(f"Ground truth: the {anomaly.kind} occupies the final fifth of the record.")
print("ASAP keeps decadal variability visible; the quarter-length average")
print("flattens everything except the warming trend — which is why the")
print("paper's participants preferred it for this one dataset.")
