"""Streaming dashboard: continuously smooth live telemetry (Section 2's
Application Monitoring case study, Figure 2).

An on-call operator watches cluster CPU utilization.  Raw 5-minute readings
fluctuate so much that a sustained usage spike is invisible; streaming ASAP
folds arrivals into pixel-sized panes, re-searches the smoothing window at a
human refresh timescale, and each emitted frame is ready to draw.

Run:  python examples/dashboard_monitoring.py
"""

from repro import AsapSpec
from repro.stream import ReplaySource, run_stream
from repro.timeseries import load, zscore
from repro.vis import side_by_side

RESOLUTION = 800          # dashboard panel width in pixels
REFRESH_EVERY = 60        # aggregated points between re-renders

telemetry = load("cpu_util")
n = len(telemetry.series)
pane_size = max(n // RESOLUTION, 1)

# The unified spec configures the streaming operator exactly as it does
# smooth() and the serving tiers (see examples/tier_escalation.py).
operator = AsapSpec(
    pane_size=pane_size,
    resolution=RESOLUTION,
    refresh_interval=REFRESH_EVERY,
).build_operator()

print(f"Streaming {n} CPU readings (pane={pane_size} pts, "
      f"refresh every {REFRESH_EVERY} aggregated pts)...\n")

frames = list(run_stream(operator, ReplaySource(telemetry.series)))
for frame in frames:
    stats = frame.search
    print(f"  refresh #{frame.refresh_index}: ingested={frame.points_ingested:>5} "
          f"window={frame.window:>3} "
          f"candidates={stats.candidates_evaluated:>2} "
          f"roughness={stats.roughness:.4f}")

final = frames[-1]
print(f"\n{operator.searches_run} searches over {operator.points_ingested} points "
      f"({operator.candidates_evaluated} total SMA evaluations)")
print()
print(side_by_side([
    ("raw", zscore(telemetry.series.values)),
    ("ASAP", zscore(final.series.values)),
], width=72))
print("\nThe sustained usage spike near the end of the window is obscured by")
print("noise in the raw line and unmistakable in the smoothed one.")
