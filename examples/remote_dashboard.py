"""Demo: one sharded server, three remote dashboards at different zooms.

The story in four acts:

1. bring up a :class:`~repro.net.AsapServer` over a 2-shard
   :class:`~repro.cluster.ShardedHub` (``repro.serve`` — one call, own
   thread, ``tcp://`` URL out);
2. connect three remote dashboard clients over plain TCP —
   ``repro.connect("tcp://host:port")`` — each subscribed to the same
   stream at its own resolution (a wall display, a laptop, a phone);
3. stream monitoring-shaped traffic through a fourth writer connection;
   every refresh boundary pushes each subscriber its freshly served view —
   no polling anywhere;
4. verify the law that makes the tier trustworthy: every pushed view is
   **bit-identical** to what ``connect("local")`` computes from the same
   arrivals.

Run::

    PYTHONPATH=src python examples/remote_dashboard.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.cluster import ShardedHub

STREAM = "api-latency"
ROUNDS = 6
CHUNK = 200
RESOLUTIONS = {"wall display": 120, "laptop": 60, "phone": 30}
SPEC = repro.AsapSpec(pane_size=4, resolution=200, refresh_interval=10)


def main() -> None:
    rng = np.random.default_rng(20170501)
    length = ROUNDS * CHUNK
    ts = np.arange(length, dtype=np.float64)
    traffic = (
        np.sin(2 * np.pi * ts / 140)
        + 0.5 * np.sin(2 * np.pi * ts / 620)
        + 0.3 * rng.normal(size=length)
    )

    print("1) serving a 2-shard cluster over TCP")
    hub = ShardedHub(shards=2, default_config=SPEC)
    handle = repro.serve(hub)
    print(f"   listening on {handle.url} (hub kind: {hub.checkpoint_kind})")

    writer = repro.connect(handle.url, spec=SPEC)
    writer.stream(stream_id=STREAM)

    print(f"2) three dashboards subscribe to {STREAM!r}:")
    dashboards = {}
    for name, resolution in RESOLUTIONS.items():
        client = repro.connect(handle.url, spec=SPEC)
        client.subscribe(STREAM, resolution=resolution)
        dashboards[name] = (client, resolution, [])
        print(f"   {name:12s} -> {resolution} buckets")

    # The local witness: same spec, same arrivals, no network anywhere.
    witness = repro.connect("local", spec=SPEC)
    witness.stream(stream_id=STREAM)

    print(f"3) streaming {ROUNDS} rounds of {CHUNK} points")
    for round_index in range(ROUNDS):
        chunk = slice(round_index * CHUNK, (round_index + 1) * CHUNK)
        writer.ingest(STREAM, ts[chunk], traffic[chunk])
        witness.ingest(STREAM, ts[chunk], traffic[chunk])
        for name, (client, _, views) in dashboards.items():
            fresh = [e.view for e in client.pushes(timeout=2.0) if e.view is not None]
            views.extend(fresh)
            if fresh:
                view = fresh[-1]
                print(
                    f"   round {round_index + 1}: {name:12s} got "
                    f"{len(fresh)} push(es), latest window {view.window} "
                    f"({view.series.values.size} points on screen)"
                )

    print("4) verifying every pushed view against connect('local')")
    checked = 0
    for name, (client, resolution, views) in dashboards.items():
        assert views, f"{name} never received a push"
        reference = witness.snapshot(STREAM, resolution=resolution)
        final = views[-1]
        assert final.series.values.tobytes() == reference.series.values.tobytes(), (
            f"{name}: pushed values differ from the local witness"
        )
        assert final.series.timestamps.tobytes() == reference.series.timestamps.tobytes()
        assert final.window == reference.window
        checked += len(views)
        client.close()
    stats = writer.hub.server_stats()
    print(
        f"   {checked} pushed views, final views bit-identical to local; "
        f"server pushed {stats['pushes_sent']} messages, dropped "
        f"{stats['push_dropped']}"
    )
    writer.close()
    witness.close()
    handle.stop()
    print("done: three screens, one server, zero polling, zero drift")


if __name__ == "__main__":
    main()
