"""StreamHub demo: serving many live dashboards from one process.

Simulates a small fleet of metric streams — CPU, latency, queue depth — each
delivering one scrape interval of points per round.  A single StreamHub hosts
every stream: batch ingestion, refreshes coalesced on the shared tick,
incremental per-refresh statistics (O(new panes), not O(window)), and — via
each session's rollup pyramid — the same stream served at several pixel
widths from one session (``snapshot(stream_id, resolution=...)``).

Run::

    PYTHONPATH=src python examples/streamhub_demo.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.vis.ascii_plot import sparkline

SCRAPE_INTERVAL = 60  # points delivered per stream per round
ROUNDS = 40


def make_fleet(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Synthetic metrics with distinct shapes, one series per stream."""
    n = SCRAPE_INTERVAL * ROUNDS
    t = np.arange(n)
    # Spikes keep the kurtosis constraint meaningful: ASAP smooths away the
    # noise while refusing windows that would erase the anomalies.
    cpu = 0.5 + 0.1 * np.sin(2 * np.pi * t / 240) + 0.1 * rng.normal(size=n)
    cpu[rng.integers(0, n, size=4)] += 3.0
    latency = 80 + 5 * np.sin(2 * np.pi * t / 600) + 6 * rng.normal(size=n)
    latency[rng.integers(0, n, size=3)] += 400.0
    return {
        "cpu.load": cpu,
        "api.latency_ms": latency,
        "queue.depth": np.maximum(0, 20 + rng.normal(size=n).cumsum()),
        "disk.iops": 1000 + 200 * np.sin(2 * np.pi * t / 120) + 50 * rng.normal(size=n),
        "net.errors": rng.poisson(2.0, size=n).astype(np.float64),
        "cache.hit_rate": 0.9 + 0.02 * np.sin(2 * np.pi * t / 300) + 0.01 * rng.normal(size=n),
    }


def main() -> None:
    rng = np.random.default_rng(7)
    fleet = make_fleet(rng)

    # One spec configures every session; connect("hub") opens the
    # multi-tenant tier (swap the backend argument for "local" or "sharded"
    # — the rest of this program is unchanged).
    hub = repro.connect(
        "hub",
        repro.AsapSpec(pane_size=3, resolution=400, refresh_interval=20),
        max_sessions=16,
        max_panes_per_session=1024,
        idle_ticks_before_eviction=10,
    )
    for name in fleet:
        hub.stream(stream_id=name)
    print(f"created {len(hub)} streams: {', '.join(hub.stream_ids())}")

    timestamps = np.arange(SCRAPE_INTERVAL * ROUNDS, dtype=np.float64)
    latest_window: dict[str, int] = {}
    for round_index in range(ROUNDS):
        start = round_index * SCRAPE_INTERVAL
        stop = start + SCRAPE_INTERVAL
        for name, values in fleet.items():
            hub.ingest(name, timestamps[start:stop], values[start:stop])
        for name, frames in hub.tick().items():
            latest_window[name] = frames[-1].window

    print("\nsmoothing windows selected at the final refresh (aggregated units):")
    for name in fleet:
        snapshot = hub.snapshot(name)
        window = latest_window.get(name, snapshot.last_window)
        print(
            f"  {name:16s} window={window!s:>4s}  panes={snapshot.panes:4d}  "
            f"frames={snapshot.frames_emitted:3d}  points={snapshot.points_ingested}"
        )

    # Multi-resolution serving: the same stream rendered at three widths from
    # one session — each snapshot comes from the session's shared rollup
    # pyramid (nearest coarser level + residual re-bucket), no duplicate
    # sessions, no re-ingestion.
    print("\napi.latency_ms served at three pixel widths from one session:")
    for width in (25, 50, 100):
        view = hub.snapshot("api.latency_ms", resolution=width)
        print(
            f"  {width:4d}px ratio={view.ratio:2d} (level {view.level_ratio} x "
            f"residual {view.residual}) window={view.window_original_units} raw pts"
        )
        print(f"    {sparkline(view.series.values, width=min(width, 72))}")

    stats = hub.stats
    print(
        f"\nhub: {stats.points_ingested} points -> {stats.frames_emitted} frames "
        f"over {stats.ticks} ticks ({stats.sessions_evicted} idle evictions); "
        f"{stats.views_served} resolution views served "
        f"({stats.view_cache_hits} from cache)"
    )

    # Session lifecycle: close one stream and let another idle out.
    final_frames = hub.close_stream("net.errors")
    print(f"closed net.errors (flushed {len(final_frames)} final frame(s))")
    for _ in range(12):  # nothing ingests; idle eviction reaps the rest
        hub.tick()
    print(f"after idle ticks: {len(hub)} sessions remain; {hub.stats.sessions_evicted} evicted")


if __name__ == "__main__":
    main()
