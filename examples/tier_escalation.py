"""One program, three serving tiers: local -> hub -> sharded.

The point of the unified API: the *same* streaming program runs in-process,
on the multi-tenant StreamHub tier, and across a multi-process sharded
cluster, by changing one argument to ``repro.connect``.  Frames are
bit-identical across tiers (sessions are partitioned, never split), which
this script verifies as it goes.

Run:  PYTHONPATH=src python examples/tier_escalation.py
"""

import numpy as np

import repro

# One spec configures every tier: operator knobs (resolution, strategy),
# streaming knobs (pane_size, refresh_interval), serving knobs (pyramid).
SPEC = repro.AsapSpec(pane_size=4, resolution=200, refresh_interval=10)

rng = np.random.default_rng(42)
N = 20_000
TS = np.arange(float(N))
VS = (
    np.sin(TS * 2 * np.pi / 96.0)
    + 0.4 * np.sin(TS * 2 * np.pi / 960.0)
    + rng.normal(0, 0.8, N)
)


def serve(backend: str, **options) -> list:
    """The program under test — identical for every backend."""
    with repro.connect(backend, SPEC, **options) as client:
        stream = client.stream(stream_id="api.latency")
        frames = []
        for start in range(0, N, 2_500):  # one scrape interval per chunk
            frames += stream.ingest(TS[start : start + 2_500], VS[start : start + 2_500])
            frames += stream.tick()
        print(
            f"  {backend:8s} {len(frames):3d} frames, "
            f"last window {frames[-1].window} panes, "
            f"{client.stats.points_ingested} points served"
        )
        return frames


print("tier escalation — the same program on every serving tier")
local = serve("local")
hub = serve("hub", max_sessions=512)
sharded = serve("sharded", shards=4)  # shard_backend="process" for real cores

assert local == hub == sharded, "tiers must emit bit-identical frames"
print("  all three tiers emitted bit-identical frames")

# The spec is wire-serializable: ship it as JSON, get the same run back.
wired = repro.AsapSpec.from_json(SPEC.to_json())
assert wired == SPEC
print(f"  spec survives the wire: {wired.to_json()}")
