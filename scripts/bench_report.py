"""Merge benchmark ``--json`` outputs into one perf-trajectory report.

Every ``benchmarks/bench_*.py`` writes a JSON payload with the same spine —
``benchmark`` (name), ``params`` (including ``smoke``), an identity block
(``identity`` or ``equivalence``, with ``ok``), and a headline speedup —
uploaded from CI as ``BENCH_<name>.json`` artifacts.  This tool reads any
number of those files (or directories containing them) and prints a markdown
trajectory table, so one artifact per run shows how every tier's speedup
moves over time::

    python scripts/bench_report.py BENCH_*.json
    python scripts/bench_report.py --output merged.json artifacts/

With ``--check benchmarks/baselines.json`` it becomes the perf ratchet: each
baseline entry names a benchmark and the speedup floor it must clear.  The
check fails (exit 1) when a baselined benchmark is missing, failed identity,
was run in ``--smoke`` mode (smoke sizes are identity gates, not performance
measurements — floors can only be judged on full runs), or fell below its
floor.  Benchmarks present in the reports but absent from the baselines are
reported informationally and never gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# The headline metric differs per benchmark; everything else in the payloads
# shares one spine.
SPEEDUP_KEYS = {
    "batch_engine": "grid_aggregate_naive_over_engine",
    "streamhub": "speedup",
    "pyramid": "speedup_vs_noagg",
    "cluster": "speedup_vs_one_shard",
    "kernels": "speedup",
    "messy": "speedup",
    "net": "pipelining_speedup",
}

EXTRA_NOTES = {
    "kernels": lambda p: f"fallbacks {p.get('fallback_rate', 0.0):.1%}",
    "messy": lambda p: f"{p.get('gaps_filled', 0)} gap points filled",
    "pyramid": lambda p: f"{p.get('view_cache_hits', 0)} view-cache hits",
    "cluster": lambda p: f"{p.get('params', {}).get('shards', '?')} shards",
    "backfill": lambda p: f"seeded replay lane {p.get('replay_speedup', 0.0):.2f}x",
    "net": lambda p: f"{p.get('remote_snapshots_per_second', 0.0):.0f} remote snapshots/s",
}


def collect_reports(paths: list[str]) -> list[dict]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("BENCH_*.json")))
        elif not path.exists():
            # An unexpanded BENCH_*.json glob (no artifacts yet) arrives here
            # as a literal path; an empty run is a state to report, not an
            # error to crash on.
            print(f"note: {path} does not exist; skipping", file=sys.stderr)
        else:
            files.append(path)
    reports = []
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"ERROR: cannot read {file}: {exc}", file=sys.stderr)
            sys.exit(2)
        if not isinstance(payload, dict) or "benchmark" not in payload:
            print(f"ERROR: {file} is not a benchmark payload", file=sys.stderr)
            sys.exit(2)
        payload["_source"] = str(file)
        payload["_mtime"] = file.stat().st_mtime
        reports.append(payload)
    # Matrix CI legs can upload the same benchmark more than once (e.g. one
    # smoke payload per Python version).  The newest file wins, so one stale
    # or smoke duplicate can't mask — or fail — the current full run.
    newest: dict[str, dict] = {}
    deduped: set[str] = set()
    for payload in reports:
        name = payload["benchmark"]
        if name in newest:
            deduped.add(name)
            older = min(newest[name], payload, key=lambda p: p["_mtime"])
            print(
                f"note: duplicate reports for {name!r}; keeping newest, "
                f"ignoring {older['_source']}",
                file=sys.stderr,
            )
        if name not in newest or payload["_mtime"] > newest[name]["_mtime"]:
            newest[name] = payload
    # When dedup fired, the table must say which file the row came from —
    # otherwise a stale-vs-current dispute can't be settled from the summary.
    for name in deduped:
        newest[name]["_deduped"] = True
    return list(newest.values())


def identity_block(payload: dict) -> dict:
    return payload.get("identity") or payload.get("equivalence") or {}


def headline_speedup(payload: dict) -> float | None:
    key = SPEEDUP_KEYS.get(payload["benchmark"], "speedup")
    value = payload.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def render_table(reports: list[dict]) -> str:
    lines = [
        "| benchmark | mode | identity | speedup | notes |",
        "|---|---|---|---|---|",
    ]
    for payload in sorted(reports, key=lambda p: p["benchmark"]):
        name = payload["benchmark"]
        smoke = payload.get("params", {}).get("smoke", False)
        ok = identity_block(payload).get("ok", False)
        speedup = headline_speedup(payload)
        note = EXTRA_NOTES.get(name, lambda p: "")(payload)
        if payload.get("_deduped"):
            chosen = f"kept {Path(payload['_source']).name}"
            note = f"{note}; {chosen}" if note else chosen
        lines.append(
            "| {} | {} | {} | {} | {} |".format(
                name,
                "smoke" if smoke else "full",
                "ok" if ok else "FAILED",
                f"{speedup:.2f}x" if speedup is not None else "-",
                note,
            )
        )
    return "\n".join(lines)


def check_baselines(reports: list[dict], baselines_path: str) -> int:
    try:
        baselines = json.loads(Path(baselines_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"ERROR: cannot read baselines {baselines_path}: {exc}", file=sys.stderr)
        return 2
    by_name = {payload["benchmark"]: payload for payload in reports}
    failures = []
    for name, floor in sorted(baselines.items()):
        minimum = float(floor["min_speedup"])
        payload = by_name.get(name)
        if payload is None:
            failures.append(f"{name}: no report found (floor {minimum:.2f}x unchecked)")
            continue
        if not identity_block(payload).get("ok", False):
            failures.append(f"{name}: identity verification not ok")
            continue
        if payload.get("params", {}).get("smoke", False):
            failures.append(f"{name}: report is a --smoke run; floors require a full run")
            continue
        speedup = headline_speedup(payload)
        if speedup is None:
            failures.append(f"{name}: payload has no headline speedup")
        elif speedup < minimum:
            failures.append(f"{name}: speedup {speedup:.2f}x below ratcheted floor {minimum:.2f}x")
        else:
            print(f"ratchet ok: {name} {speedup:.2f}x >= {minimum:.2f}x")
    for failure in failures:
        print(f"RATCHET FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        help="BENCH_*.json files, or directories searched recursively for them",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINES",
        default=None,
        help="enforce speedup floors from this baselines JSON (exit 1 on violation)",
    )
    parser.add_argument(
        "--output", default=None, help="also write the merged reports to this JSON file"
    )
    args = parser.parse_args(argv)

    reports = collect_reports(args.paths)
    if not reports:
        if args.check:
            # A ratchet run with nothing to check means every floor went
            # unverified — that must stay loud.
            print("ERROR: no benchmark reports found", file=sys.stderr)
            return 2
        print("No benchmark reports yet — no perf trajectory to summarize.")
        print("Run a benchmark with --json BENCH_<name>.json to start one.")
        return 0
    print(render_table(reports))
    if args.output:
        merged = {payload["benchmark"]: payload for payload in reports}
        Path(args.output).write_text(json.dumps(merged, indent=2))
        print(f"\nwrote {args.output}")
    if args.check:
        print()
        return check_baselines(reports, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
