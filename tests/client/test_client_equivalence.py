"""The acceptance pins for the unified API: for a fixed seeded workload,

* legacy paths (``smooth()`` kwargs, spec-built operators, direct
  ``StreamHub``/``ShardedHub`` construction) and the ``AsapSpec`` /
  ``connect()`` paths produce bit-identical results and frames;
* a spec serialized through ``to_dict -> json -> from_dict`` drives a run
  bit-identical to the in-memory spec — including across the cluster's IPC
  boundary, where specs travel as plain dicts.
"""

import json

import numpy as np
import pytest

import repro
from repro import ASAP, AsapSpec, ShardedHub, StreamHub, connect
from repro.core.streaming import StreamingASAP
from repro.service import StreamConfig


def seeded_workload(n=6000, seed=20260729):
    rng = np.random.default_rng(seed)
    ts = np.arange(float(n))
    vs = (
        np.sin(ts * 2 * np.pi / 48.0)
        + 0.4 * np.sin(ts * 2 * np.pi / 480.0)
        + rng.normal(0, 0.3, n)
    )
    return ts, vs


SPEC = AsapSpec(pane_size=3, resolution=120, refresh_interval=7, max_window=40)


def drive(target, stream_id, ts, vs, chunk=997):
    """Feed a hub-like object in uneven chunks; returns all frames in order."""
    frames = []
    for start in range(0, ts.size, chunk):
        frames.extend(target.ingest(stream_id, ts[start : start + chunk], vs[start : start + chunk]))
        frames.extend(target.tick().get(stream_id, []))
    return frames


class TestBatchPathEquivalence:
    def test_kwargs_spec_operator_and_client_agree_bitwise(self):
        _, vs = seeded_workload()
        legacy = repro.smooth(vs, resolution=240, strategy="asap", max_window=50)
        via_spec = AsapSpec(resolution=240, max_window=50).smooth(vs)
        via_operator = ASAP(resolution=240, max_window=50).smooth(vs)
        via_client = connect("local").smooth(vs, resolution=240, max_window=50)
        assert legacy == via_spec == via_operator == via_client
        # Bit-identical, not merely equal-by-tolerance:
        assert np.array_equal(legacy.series.values, via_client.series.values)

    def test_smooth_many_agrees_bitwise(self):
        _, vs = seeded_workload()
        batch = [vs, np.roll(vs, 100), vs * 1.5]
        legacy = repro.smooth_many(batch, resolution=240, strategy="grid2")
        spec = AsapSpec(resolution=240, strategy="grid2")
        via_client = connect("local", spec).smooth_many(batch)
        assert tuple(legacy) == tuple(via_client)


class TestStreamingPathEquivalence:
    def test_legacy_constructor_and_spec_built_operator_agree(self):
        ts, vs = seeded_workload()
        legacy = StreamingASAP(
            pane_size=SPEC.pane_size,
            resolution=SPEC.resolution,
            refresh_interval=SPEC.refresh_interval,
            strategy=SPEC.strategy,
            max_window=SPEC.max_window,
            incremental=True,
            keep_pane_sketches=False,
            pyramid=True,
        )
        built = SPEC.build_operator()
        legacy_frames = legacy.push_many(ts, vs)
        built_frames = built.push_many(ts, vs)
        assert len(legacy_frames) == len(built_frames) > 0
        for theirs, ours in zip(legacy_frames, built_frames):
            assert theirs == ours

    def test_direct_hub_and_client_emit_identical_frames(self):
        ts, vs = seeded_workload()
        hub = StreamHub(default_config=StreamConfig(**SPEC.to_dict()))
        sid = hub.create_stream("s")
        direct = drive(hub, sid, ts, vs)

        client = connect("hub", SPEC)
        stream = client.stream(stream_id="s")
        via_client = drive(client, stream.stream_id, ts, vs)

        assert len(direct) == len(via_client) > 0
        for theirs, ours in zip(direct, via_client):
            assert theirs == ours

    def test_direct_cluster_and_client_emit_identical_frames(self):
        ts, vs = seeded_workload()
        with ShardedHub(shards=3, default_config=SPEC) as cluster:
            sid = cluster.create_stream("s")
            direct = drive(cluster, sid, ts, vs)
        with connect("sharded", SPEC, shards=3) as client:
            stream = client.stream(stream_id="s")
            via_client = drive(client, stream.stream_id, ts, vs)
        assert len(direct) == len(via_client) > 0
        for theirs, ours in zip(direct, via_client):
            assert theirs == ours

    @pytest.mark.parametrize("backend", ["local", "hub", "sharded"])
    def test_every_tier_emits_the_single_operator_frames(self, backend):
        # The headline: the same program, scaled by one argument, emits the
        # frames a lone StreamingASAP would.
        ts, vs = seeded_workload()
        reference = SPEC.build_operator().push_many(ts, vs)
        with connect(backend, SPEC) as client:
            stream = client.stream(stream_id="s")
            frames = drive(client, stream.stream_id, ts, vs)
        assert len(reference) == len(frames) > 0
        for theirs, ours in zip(reference, frames):
            assert theirs == ours


class TestWireEquivalence:
    def test_json_round_tripped_spec_drives_identical_run(self):
        ts, vs = seeded_workload()
        wired = AsapSpec.from_dict(json.loads(json.dumps(SPEC.to_dict())))
        assert wired == SPEC

        assert wired.smooth(vs) == SPEC.smooth(vs)

        in_memory = SPEC.build_operator().push_many(ts, vs)
        off_the_wire = wired.build_operator().push_many(ts, vs)
        assert len(in_memory) == len(off_the_wire) > 0
        for theirs, ours in zip(in_memory, off_the_wire):
            assert theirs == ours

    @pytest.mark.parametrize("shard_backend", ["inprocess", "process"])
    def test_spec_crossing_cluster_ipc_drives_identical_run(self, shard_backend):
        # The spec crosses the coordinator->shard boundary as a plain dict
        # and rebuilds shard-side; the frames must match an in-process
        # operator configured from the very same spec object.
        ts, vs = seeded_workload(3000)
        reference = SPEC.build_operator().push_many(ts, vs)
        with connect("sharded", shards=2, shard_backend=shard_backend) as client:
            stream = client.stream(SPEC, stream_id="s")
            frames = drive(client, stream.stream_id, ts, vs)
        assert len(reference) == len(frames) > 0
        for theirs, ours in zip(reference, frames):
            assert theirs == ours
