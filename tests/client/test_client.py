"""The connect() façade: one lifecycle across every backend."""

import numpy as np
import pytest

import repro
from repro import AsapSpec, Client, SpecError, StreamHandle, connect
from repro.client import BACKENDS
from repro.core.streaming import Frame
from repro.errors import UnknownStreamError
from repro.service import SessionSnapshot


def workload(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    ts = np.arange(float(n))
    return ts, np.sin(ts / 12.0) + rng.normal(0, 0.25, n)


SPEC = AsapSpec(pane_size=2, resolution=100, refresh_interval=8)


class TestConnect:
    def test_connect_is_exported_at_the_top(self):
        assert repro.connect is connect

    def test_bad_backend_named(self):
        with pytest.raises(SpecError, match="backend"):
            connect("cloud")

    def test_spec_overrides_build_the_default(self):
        client = connect("local", resolution=256, pane_size=4)
        assert client.spec == AsapSpec(resolution=256, pane_size=4)

    def test_spec_plus_overrides_merge(self):
        client = connect("local", AsapSpec(strategy="grid2"), resolution=256)
        assert client.spec == AsapSpec(strategy="grid2", resolution=256)

    def test_unknown_spec_field_named(self):
        with pytest.raises(SpecError, match="resolutoin"):
            connect("local", resolutoin=256)

    def test_non_spec_argument_named_not_attribute_error(self):
        with pytest.raises(SpecError, match="AsapSpec, got dict"):
            connect("hub", {"resolution": 100})
        client = connect("local")
        with pytest.raises(SpecError, match="AsapSpec, got str"):
            client.smooth([1.0] * 100, "asap")

    def test_stream_id_passed_as_spec_gets_a_hint(self):
        client = connect("local")
        with pytest.raises(SpecError, match="stream_id"):
            client.stream("api.latency")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_opens(self, backend):
        with connect(backend, SPEC) as client:
            assert client.backend == backend
            assert len(client) == 0
            assert "connected" not in client.stream_ids()
            assert backend in repr(client)


class TestOneShot:
    def test_smooth_matches_direct_call(self):
        _, vs = workload()
        client = connect("local")
        assert client.smooth(vs, resolution=300) == repro.smooth(vs, resolution=300)

    def test_smooth_many_matches_direct_call(self):
        _, vs = workload()
        batch = {"a": vs, "b": vs * 2.0}
        client = connect("local", resolution=300)
        result = client.smooth_many(batch)
        direct = repro.smooth_many(batch, resolution=300)
        assert result.labels == direct.labels
        assert tuple(result) == tuple(direct)

    def test_engines_are_reused_per_spec(self):
        _, vs = workload()
        client = connect("local", resolution=300)
        client.smooth_many([vs])
        first = client._engine_for(client.spec)
        client.smooth_many([vs])
        assert client._engine_for(client.spec) is first
        # A refresh with the same series hits the engine's shared ACF cache.
        assert first.acf_cache.hits > 0

    def test_engine_cache_is_bounded_lru(self):
        client = connect("local")
        default = client._engine_for(client.spec)
        for width in range(100, 100 + 2 * Client.MAX_CACHED_ENGINES):
            client._engine_for(client.spec.merge(resolution=width))
            # Keep the default engine warm so the sweep evicts around it.
            assert client._engine_for(client.spec) is default
        assert len(client._engines) <= Client.MAX_CACHED_ENGINES


class TestStreamingLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_lifecycle(self, backend):
        ts, vs = workload()
        with connect(backend, SPEC) as client:
            stream = client.stream()
            assert isinstance(stream, StreamHandle)
            assert stream.stream_id in client

            frames = stream.ingest(ts, vs)
            frames += stream.tick()
            assert frames and all(isinstance(f, Frame) for f in frames)

            snap = stream.snapshot()
            assert isinstance(snap, SessionSnapshot)
            assert snap.points_ingested == ts.size

            view = stream.snapshot(resolution=50)
            assert view.resolution == 50
            assert view.series.values.size <= 50

            final = stream.close()
            assert isinstance(final, list)
            assert stream.stream_id not in client

    def test_handle_close_is_idempotent(self):
        client = connect("local", SPEC)
        stream = client.stream()
        stream.close()
        assert stream.close() == []

    def test_handle_context_manager_discards(self):
        client = connect("local", SPEC)
        with client.stream() as stream:
            sid = stream.stream_id
        assert sid not in client

    def test_per_stream_spec_overrides(self):
        client = connect("local", SPEC)
        stream = client.stream(refresh_interval=3)
        assert stream.spec == SPEC.merge(refresh_interval=3)
        assert stream.snapshot().config == stream.spec

    def test_handle_tick_never_drops_other_streams_frames(self):
        # h1.tick() runs h2's deferred refresh too; h2's frames must stash
        # on the client and surface at h2's own tick, not vanish.
        ts, vs = workload()
        client = connect("local", SPEC)
        h1 = client.stream(stream_id="one")
        h2 = client.stream(stream_id="two")
        h1.ingest(ts, vs)
        h2.ingest(ts, vs)
        first = h1.tick()
        second = h2.tick()

        reference = connect("local", SPEC)
        lone = reference.stream(stream_id="solo")
        lone.ingest(ts, vs)
        expected = lone.tick()
        assert first == expected
        assert second == expected
        assert len(expected) > 0

    def test_close_flushes_stashed_frames(self):
        ts, vs = workload()
        client = connect("local", SPEC)
        h1 = client.stream(stream_id="one")
        h2 = client.stream(stream_id="two")
        h1.ingest(ts, vs)
        h2.ingest(ts, vs)
        h1.tick()  # stashes h2's tick frame on the client
        closed = h2.close()
        reference = connect("local", SPEC)
        lone = reference.stream(stream_id="solo")
        lone.ingest(ts, vs)
        expected = lone.tick() + lone.close()
        assert closed == expected

    def test_stash_survives_a_raising_tick(self):
        # A dead shard makes client.tick() raise; frames another handle's
        # tick stashed must survive for the retry after recovery.
        from repro.errors import ShardDownError

        ts, vs = workload()
        with connect("sharded", SPEC, shards=2) as client:
            a = client.stream(stream_id="a")
            b = client.stream(stream_id="b")
            a.ingest(ts, vs)
            b.ingest(ts, vs)
            a.tick()  # runs b's refresh too; b's frames stash on the client
            assert client._pending_frames.get("b")
            stashed = list(client._pending_frames["b"])
            client.hub.kill_shard(client.hub.shard_of("a"))
            with pytest.raises(ShardDownError):
                client.tick()
            assert client._pending_frames.get("b") == stashed
            client.hub.drop_shard(client.hub.shard_of("a"))
            assert client.tick().get("b") == stashed  # surfaces after recovery

    def test_raising_close_does_not_destroy_stashed_frames(self):
        ts, vs = workload()
        client = connect("local", SPEC, idle_ticks_before_eviction=1)
        one = client.stream(stream_id="one")
        two = client.stream(stream_id="two")
        one.ingest(ts, vs)
        two.ingest(ts, vs)
        one.tick()  # stashes two's frames
        stashed = list(client._pending_frames["two"])
        for _ in range(3):  # idle ticks evict both streams hub-side
            client.hub.tick()
        with pytest.raises(UnknownStreamError):
            client.close_stream("two")
        assert client._pending_frames["two"] == stashed  # not destroyed

    def test_none_overrides_mean_not_provided(self):
        # Same convention as the legacy kwargs: None is "use the default".
        _, vs = workload()
        client = connect("local", strategy=None, resolution=300)
        assert client.spec == AsapSpec(resolution=300)
        assert client.smooth(vs, strategy=None) == repro.smooth(
            vs, resolution=300, strategy=None
        )

    def test_client_level_ingest_and_tick(self):
        ts, vs = workload()
        client = connect("local", SPEC)
        a = client.stream(stream_id="a").stream_id
        b = client.stream(stream_id="b").stream_id
        client.ingest(a, ts, vs)
        client.ingest(b, ts, vs)
        emitted = client.tick()
        assert set(emitted) <= {a, b}
        assert client.stats.points_ingested == 2 * ts.size
        with pytest.raises(UnknownStreamError):
            client.ingest("nope", ts, vs)


class TestDurability:
    @pytest.mark.parametrize("backend", ["hub", "sharded"])
    def test_checkpoint_restore_resumes_bit_identically(self, backend, tmp_path):
        ts, vs = workload(4000)
        half = 2000
        with connect(backend, SPEC) as client:
            sid = client.stream(stream_id="s").stream_id
            client.ingest(sid, ts[:half], vs[:half])
            client.tick()
            path = client.checkpoint(tmp_path / "state.npz")

            restored = Client.restore(path)
            assert restored.backend == backend
            assert restored.spec == SPEC

            tail_live = client.ingest(sid, ts[half:], vs[half:])
            tail_live += client.tick().get(sid, [])
            tail_restored = restored.ingest(sid, ts[half:], vs[half:])
            tail_restored += restored.tick().get(sid, [])
            restored.close()
        assert len(tail_live) == len(tail_restored) > 0
        for live, resumed in zip(tail_live, tail_restored):
            assert live == resumed

    def test_module_level_restore(self, tmp_path):
        from repro.client import restore

        client = connect("local", SPEC)
        client.stream(stream_id="x")
        payload = client.checkpoint()
        reopened = restore(payload)
        assert reopened.backend == "hub"  # local streams live on a hub
        assert "x" in reopened
