"""Tests for the shared EvaluationCache and the vectorized grid evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import (
    STRATEGIES,
    asap_search,
    binary_search,
    exhaustive_search,
    grid_search,
    run_strategy,
)
from repro.core.smoothing import (
    EvaluationCache,
    evaluate_window,
    evaluate_window_grid,
)


class TestEvaluateWindowGrid:
    def test_agrees_with_scalar_evaluator(self, rng):
        values = rng.normal(size=500)
        windows = list(range(2, 51))
        grid = evaluate_window_grid(values, windows)
        for evaluation in grid:
            scalar = evaluate_window(values, evaluation.window)
            assert evaluation.roughness == pytest.approx(scalar.roughness, rel=1e-9, abs=1e-9)
            assert evaluation.kurtosis == pytest.approx(scalar.kurtosis, rel=1e-9, abs=1e-9)

    def test_single_window_matches_grid_value_exactly(self, rng):
        values = rng.normal(size=300)
        windows = list(range(2, 31))
        grid = evaluate_window_grid(values, windows)
        for j, window in enumerate(windows):
            alone = evaluate_window_grid(values, [window])[0]
            assert alone == grid[j]


class TestEvaluationCache:
    def test_memoizes_evaluations(self, rng):
        cache = EvaluationCache(rng.normal(size=200))
        first = cache.evaluate(10)
        second = cache.evaluate(10)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1

    def test_evaluate_many_fills_only_misses(self, rng):
        cache = EvaluationCache(rng.normal(size=200))
        cache.evaluate(5)
        evaluations = cache.evaluate_many([2, 5, 9])
        assert [e.window for e in evaluations] == [2, 5, 9]
        assert cache.misses == 3  # 5 was cached; 2 and 9 plus the initial 5
        assert cache.hits == 1

    def test_scalar_kernel_option(self, rng):
        values = rng.normal(size=300)
        grid_cache = EvaluationCache(values, kernel="grid")
        scalar_cache = EvaluationCache(values, kernel="scalar")
        for window in (2, 17, 60):
            fast = grid_cache.evaluate(window)
            reference = scalar_cache.evaluate(window)
            assert fast.roughness == pytest.approx(reference.roughness, rel=1e-9, abs=1e-9)
            assert fast.kurtosis == pytest.approx(reference.kurtosis, rel=1e-9, abs=1e-9)

    def test_original_moments_lazy_and_seedable(self, rng):
        from repro.timeseries.stats import kurtosis, roughness

        values = rng.normal(size=100)
        cache = EvaluationCache(values)
        assert cache.original_roughness == roughness(values)
        assert cache.original_kurtosis == kurtosis(values)
        seeded = EvaluationCache(values)
        seeded.seed_original(1.25, 3.5)
        assert seeded.original_roughness == 1.25
        assert seeded.original_kurtosis == 3.5

    def test_rejects_bad_kernel_and_shape(self):
        with pytest.raises(ValueError, match="kernel"):
            EvaluationCache(np.ones(10), kernel="magic")
        with pytest.raises(ValueError, match="1-D"):
            EvaluationCache(np.ones((2, 5)))


class TestStrategiesShareOneNumericPath:
    def test_candidate_counts_unchanged_by_caching(self, white_noise_series):
        # Memoization must not change the paper's candidates_evaluated
        # accounting: counts reflect considerations, not kernel calls.
        assert exhaustive_search(white_noise_series, max_window=50).candidates_evaluated == 49
        assert grid_search(white_noise_series, 2, max_window=80).candidates_evaluated == 40
        assert binary_search(white_noise_series, max_window=128).candidates_evaluated <= 9

    def test_shared_cache_across_strategies(self, periodic_series):
        cache = EvaluationCache(np.asarray(periodic_series, dtype=np.float64))
        exhaustive = exhaustive_search(periodic_series, max_window=100, cache=cache)
        kernel_calls = cache.misses
        # A second strategy over the same cache evaluates nothing new.
        asap = asap_search(periodic_series, max_window=100, cache=cache)
        assert cache.misses == kernel_calls
        assert asap.roughness >= exhaustive.roughness - 1e-12

    def test_adaptive_and_grid_strategies_agree_per_window(self, periodic_series):
        # Binary/ASAP evaluate single windows; exhaustive evaluates the whole
        # grid in one kernel call.  The shared kernel guarantees the same
        # window always produces the same numbers either way.
        values = np.asarray(periodic_series, dtype=np.float64)
        full_cache = EvaluationCache(values)
        exhaustive_search(values, max_window=100, cache=full_cache)
        single_cache = EvaluationCache(values)
        for window in (2, 37, 60, 100):
            assert single_cache.evaluate(window) == full_cache.evaluate(window)

    def test_run_strategy_forwards_cache(self, white_noise_series):
        cache = EvaluationCache(np.asarray(white_noise_series, dtype=np.float64))
        for name in STRATEGIES:
            result = run_strategy(name, white_noise_series, 60, cache=cache)
            assert result.window >= 1
        # Every strategy reused the one cache: the exhaustive pass seeded all
        # candidate windows, so later strategies were pure hits.
        assert cache.misses <= 59 + 1
