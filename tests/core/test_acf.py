"""Tests for autocorrelation analysis and peak detection (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acf import (
    ACFAnalysis,
    analyze_acf,
    autocorrelation,
    autocorrelation_bruteforce,
    default_max_lag,
    find_acf_peaks,
)


class TestEstimator:
    def test_fft_matches_bruteforce(self, periodic_series):
        fft_acf = autocorrelation(periodic_series, max_lag=200)
        brute = autocorrelation_bruteforce(periodic_series, max_lag=200)
        np.testing.assert_allclose(fft_acf, brute, atol=1e-9)

    def test_native_fft_backend_matches_numpy_backend(self, periodic_series):
        native = autocorrelation(periodic_series[:512], max_lag=60, backend="native")
        via_numpy = autocorrelation(periodic_series[:512], max_lag=60, backend="numpy")
        np.testing.assert_allclose(native, via_numpy, atol=1e-8)

    def test_lag_zero_is_one(self, white_noise_series):
        acf = autocorrelation(white_noise_series, max_lag=10)
        assert acf[0] == pytest.approx(1.0)

    def test_white_noise_has_no_structure(self, white_noise_series):
        acf = autocorrelation(white_noise_series, max_lag=50)
        assert np.max(np.abs(acf[1:])) < 0.1

    def test_sine_peaks_at_period(self):
        t = np.arange(1000, dtype=np.float64)
        wave = np.sin(2 * np.pi * t / 50)
        acf = autocorrelation(wave, max_lag=120)
        assert acf[50] == pytest.approx(1.0, abs=0.05)
        assert acf[100] == pytest.approx(1.0, abs=0.1)
        assert acf[25] == pytest.approx(-1.0, abs=0.05)

    def test_constant_series_degrades_safely(self):
        acf = autocorrelation(np.full(100, 3.0), max_lag=10)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_default_max_lag_is_tenth(self):
        assert default_max_lag(1000) == 100
        assert default_max_lag(10) == 2

    def test_lag_bounds_validated(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), max_lag=10)
        with pytest.raises(ValueError):
            autocorrelation(np.ones(1), max_lag=0)


class TestPeakDetection:
    def test_finds_period_multiples(self):
        t = np.arange(2000, dtype=np.float64)
        wave = np.sin(2 * np.pi * t / 40)
        acf = autocorrelation(wave, max_lag=200)
        peaks, max_acf = find_acf_peaks(acf)
        assert peaks, "expected peaks on a pure sinusoid"
        for peak in peaks:
            assert min(peak % 40, 40 - peak % 40) <= 2
        assert max_acf > 0.9

    def test_no_peaks_on_noise(self, white_noise_series):
        acf = autocorrelation(white_noise_series, max_lag=100)
        peaks, max_acf = find_acf_peaks(acf)
        assert peaks == []
        assert max_acf == 0.0

    def test_threshold_filters_weak_peaks(self, periodic_series):
        acf = autocorrelation(periodic_series, max_lag=200)
        strict, _ = find_acf_peaks(acf, threshold=0.99)
        lax, _ = find_acf_peaks(acf, threshold=0.1)
        assert len(strict) <= len(lax)


class TestAnalysis:
    def test_analysis_bundles_everything(self, periodic_series):
        analysis = analyze_acf(periodic_series, max_lag=200)
        assert isinstance(analysis, ACFAnalysis)
        assert analysis.is_periodic
        assert analysis.max_lag == 200
        assert analysis.correlations.size == 201

    def test_aperiodic_flag(self, white_noise_series):
        analysis = analyze_acf(white_noise_series)
        assert not analysis.is_periodic

    def test_correlation_at_clamps(self, periodic_series):
        analysis = analyze_acf(periodic_series, max_lag=50)
        assert analysis.correlation_at(1_000_000) == 0.0
        with pytest.raises(ValueError):
            analysis.correlation_at(-1)

    def test_max_lag_clamped_to_series(self):
        analysis = analyze_acf(np.arange(10.0), max_lag=50)
        assert analysis.max_lag == 9
