"""Warm-started window search: bit-identity to cold search, plus accounting.

The tentpole guarantee: ``warm_start=True`` changes how many kernel dispatches
a refresh costs, never what it computes.  Every frame — window choice and
smoothed values — must be **bit-identical** to a ``warm_start=False`` run over
the same arrivals, for every strategy, chunking, and drift pattern, including
adversarial regime changes engineered to force the search off the prefetched
trace (the counted fallback path).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import ADAPTIVE_STRATEGIES, plan_warm_probes
from repro.core.streaming import StreamingASAP


def run_pair(values, chunks, warm_kwargs=None, cold_kwargs=None, **kwargs):
    """Stream *values* through warm and cold operators, identically chunked."""
    timestamps = np.arange(values.size, dtype=np.float64)
    ops = {}
    frames = {}
    for label, flag, extra in (
        ("warm", True, warm_kwargs or {}),
        ("cold", False, cold_kwargs or {}),
    ):
        op = StreamingASAP(warm_start=flag, **{**kwargs, **extra})
        out = []
        start = 0
        for size in chunks:
            stop = start + size
            out.extend(op.push_many(timestamps[start:stop], values[start:stop]))
            start = stop
        out.extend(op.flush())
        ops[label], frames[label] = op, out
    return ops, frames


def assert_frames_bit_identical(frames_a, frames_b):
    assert len(frames_a) == len(frames_b)
    for a, b in zip(frames_a, frames_b):
        assert a.window == b.window
        assert a.refresh_index == b.refresh_index
        assert np.array_equal(a.series.values, b.series.values)
        assert np.array_equal(a.series.timestamps, b.series.timestamps)


def chunkings(total, seed):
    """Deterministic irregular chunk sizes summing to *total*."""
    chunk_rng = np.random.default_rng(seed)
    sizes = []
    remaining = total
    while remaining > 0:
        size = int(chunk_rng.integers(1, 97))
        sizes.append(min(size, remaining))
        remaining -= sizes[-1]
    return sizes


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", ["asap", "binary", "grid10", "exhaustive"])
    def test_all_strategies_bit_identical(self, rng, strategy):
        t = np.arange(3000, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 60) + 0.3 * rng.normal(size=3000)
        ops, frames = run_pair(
            values,
            chunkings(3000, seed=1),
            pane_size=1,
            resolution=400,
            refresh_interval=8,
            strategy=strategy,
            max_window=80,
        )
        assert len(frames["warm"]) > 10
        assert_frames_bit_identical(frames["warm"], frames["cold"])
        if strategy in ADAPTIVE_STRATEGIES:
            assert ops["warm"].warm_prefetches > 0
        else:
            # Grid strategies already batch their whole candidate grid.
            assert ops["warm"].warm_prefetches == 0
        assert ops["cold"].warm_prefetches == 0

    def test_incremental_and_scratch_agree(self, rng):
        t = np.arange(2000, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 45) + 0.2 * rng.normal(size=2000)
        common = dict(pane_size=2, resolution=300, refresh_interval=5, strategy="asap")
        _, frames_plain = run_pair(values, [2000], **common)
        _, frames_incr = run_pair(values, [2000], incremental=True, **common)
        assert_frames_bit_identical(frames_plain["warm"], frames_plain["cold"])
        assert_frames_bit_identical(frames_incr["warm"], frames_incr["cold"])

    def test_regime_change_forces_fallback_but_not_divergence(self, rng):
        # Adversarial drift: the period quadruples mid-stream, so the ACF
        # peaks (and with them the search's candidate trace) jump.  The warm
        # search must fall back — counted — and still emit identical frames.
        t = np.arange(4000, dtype=np.float64)
        values = np.where(
            t < 2000,
            np.sin(2 * np.pi * t / 20),
            np.sin(2 * np.pi * t / 80),
        ) + 0.1 * rng.normal(size=4000)
        ops, frames = run_pair(
            values,
            chunkings(4000, seed=2),
            pane_size=1,
            resolution=500,
            refresh_interval=10,
            strategy="asap",
            max_window=120,
        )
        assert_frames_bit_identical(frames["warm"], frames["cold"])
        assert ops["warm"].warm_prefetches > 0
        assert ops["warm"].warm_fallbacks > 0
        assert ops["warm"].warm_fallbacks <= ops["warm"].warm_prefetches

    def test_scalar_kernel_excluded_from_warm_start(self, rng):
        t = np.arange(1200, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 40) + 0.2 * rng.normal(size=1200)
        ops, frames = run_pair(
            values,
            [1200],
            pane_size=1,
            resolution=300,
            refresh_interval=10,
            strategy="asap",
            kernel="scalar",
        )
        assert_frames_bit_identical(frames["warm"], frames["cold"])
        assert ops["warm"].warm_prefetches == 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        strategy=st.sampled_from(ADAPTIVE_STRATEGIES),
        pane_size=st.integers(1, 3),
        refresh_interval=st.integers(1, 12),
        drift=st.sampled_from(["stable", "jump", "ramp", "noise-burst"]),
    )
    def test_property_warm_equals_cold(self, seed, strategy, pane_size, refresh_interval, drift):
        data_rng = np.random.default_rng(seed)
        n = 1500
        t = np.arange(n, dtype=np.float64)
        period = float(data_rng.integers(12, 90))
        base = np.sin(2 * np.pi * t / period)
        if drift == "jump":
            base = np.where(t < n // 2, base, np.sin(2 * np.pi * t / (period * 3)))
        elif drift == "ramp":
            base = base + t / n * 5.0
        elif drift == "noise-burst":
            burst = np.zeros(n)
            burst[n // 3 : n // 2] = data_rng.normal(size=n // 2 - n // 3) * 4.0
            base = base + burst
        values = base + 0.25 * data_rng.normal(size=n)
        ops, frames = run_pair(
            values,
            chunkings(n, seed=seed ^ 0xA5A5),
            pane_size=pane_size,
            resolution=250,
            refresh_interval=refresh_interval,
            strategy=strategy,
            max_window=60,
        )
        assert_frames_bit_identical(frames["warm"], frames["cold"])
        # Windows equal is implied by bit-identical frames; assert explicitly
        # for a readable failure if the series assertion ever loosens.
        assert [f.window for f in frames["warm"]] == [f.window for f in frames["cold"]]


class TestAccountingAndState:
    def test_counters_round_trip_through_state(self, rng):
        t = np.arange(1500, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 50) + 0.2 * rng.normal(size=1500)
        op = StreamingASAP(pane_size=1, resolution=300, refresh_interval=10)
        op.push_many(t, values)
        assert op.warm_prefetches > 0
        restored = StreamingASAP.from_state(op.state_dict())
        assert restored.warm_start == op.warm_start
        assert restored.warm_prefetches == op.warm_prefetches
        assert restored.warm_fallbacks == op.warm_fallbacks
        assert restored._warm_trace == op._warm_trace

    def test_restored_operator_continues_bit_identically(self, rng):
        t = np.arange(2400, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 55) + 0.2 * rng.normal(size=2400)
        live = StreamingASAP(pane_size=1, resolution=300, refresh_interval=10)
        live.push_many(t[:1200], values[:1200])
        restored = StreamingASAP.from_state(live.state_dict())
        frames_live = live.push_many(t[1200:], values[1200:])
        frames_restored = restored.push_many(t[1200:], values[1200:])
        assert_frames_bit_identical(frames_live, frames_restored)
        assert live.warm_prefetches == restored.warm_prefetches

    def test_reset_clears_trace(self, rng):
        t = np.arange(600, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 30) + 0.1 * rng.normal(size=600)
        op = StreamingASAP(pane_size=1, resolution=200, refresh_interval=10)
        op.push_many(t, values)
        assert op._warm_trace is not None
        op.reset()
        assert op._warm_trace is None

    def test_from_spec_carries_warm_start_and_kernel(self):
        from repro.spec import AsapSpec

        spec = AsapSpec(pane_size=2, warm_start=False, kernel="scalar")
        op = StreamingASAP.from_spec(spec)
        assert op.warm_start is False
        assert op.kernel == "scalar"
        spec_on = AsapSpec(pane_size=2)
        assert StreamingASAP.from_spec(spec_on).warm_start is True

    def test_kernel_validated_eagerly(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="kernel"):
            StreamingASAP(pane_size=1, kernel="fpga")


class TestPlanWarmProbes:
    def test_merges_trace_and_neighborhood(self):
        probes = plan_warm_probes((5, 9, 30), 9, limit=40)
        assert probes == [5, 8, 9, 10, 30]

    def test_clips_to_valid_range(self):
        probes = plan_warm_probes((1, 2, 50), 2, limit=40)
        assert probes == [2, 3]
        assert plan_warm_probes(None, None, limit=40) == []

    def test_none_trace_with_previous(self):
        assert plan_warm_probes(None, 10, limit=40) == [9, 10, 11]
