"""Tests for streaming ASAP (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import smooth
from repro.core.streaming import Frame, StreamingASAP
from repro.stream.operators import run_stream
from repro.stream.sources import ReplaySource, StreamPoint
from repro.timeseries import TimeSeries


def stream_series(operator, series):
    return list(run_stream(operator, ReplaySource(series)))


class TestRefreshCadence:
    def test_frames_emitted_every_interval(self, periodic_series):
        series = TimeSeries(periodic_series)
        operator = StreamingASAP(pane_size=4, resolution=300, refresh_interval=25)
        frames = stream_series(operator, series)
        # 2400 points / 4 per pane = 600 panes -> one frame per 25 panes,
        # minus the warm-up frames skipped below the minimum pane count.
        assert 20 <= len(frames) <= 24
        assert all(isinstance(f, Frame) for f in frames)

    def test_no_frames_below_minimum_panes(self):
        operator = StreamingASAP(pane_size=1, resolution=100, refresh_interval=1)
        for i in range(7):
            assert operator.push(StreamPoint(float(i), 1.0 * i)) == ()

    def test_flush_emits_pending_frame(self, periodic_series):
        series = TimeSeries(periodic_series[:500])
        operator = StreamingASAP(pane_size=1, resolution=600, refresh_interval=10_000)
        frames = []
        for point in ReplaySource(series):
            frames.extend(operator.push(point))
        assert frames == []
        flushed = list(operator.flush())
        assert len(flushed) == 1

    def test_flush_is_noop_when_aligned(self, periodic_series):
        series = TimeSeries(periodic_series[:100])
        operator = StreamingASAP(pane_size=1, resolution=200, refresh_interval=50)
        stream_series(operator, series)
        assert list(operator.flush()) == []

    def test_refresh_interval_validated(self):
        with pytest.raises(ValueError):
            StreamingASAP(pane_size=1, refresh_interval=0)


class TestWindowQuality:
    def test_final_frame_matches_batch(self, periodic_series):
        # Once the full series is in the window, the streamed search must
        # agree with a batch search over the same aggregates.
        series = TimeSeries(periodic_series)
        operator = StreamingASAP(pane_size=2, resolution=1200, refresh_interval=50)
        frames = stream_series(operator, series)
        # Compare against batch on the aggregated stream: pane_size 2 halves
        # the series, so smooth the bucket means directly.
        aggregated = periodic_series.reshape(-1, 2).mean(axis=1)
        batch_agg = smooth(aggregated, resolution=1200, use_preaggregation=False)
        assert frames[-1].window == batch_agg.window

    def test_frames_track_regime_change(self, rng):
        # A stream that shifts from period-20 to aperiodic noise should
        # adapt its window after the change floods the buffer.
        t = np.arange(3000, dtype=np.float64)
        periodic = np.sin(2 * np.pi * t / 20)[:1500] + 0.2 * rng.normal(size=1500)
        noise = rng.normal(size=1500)
        series = TimeSeries(np.concatenate([periodic, noise]))
        operator = StreamingASAP(pane_size=1, resolution=1000, refresh_interval=100)
        frames = stream_series(operator, series)
        early = frames[len(frames) // 3]
        late = frames[-1]
        assert early.window != late.window

    def test_frame_series_is_smoothed_window(self, periodic_series):
        series = TimeSeries(periodic_series)
        operator = StreamingASAP(pane_size=2, resolution=400, refresh_interval=100)
        frames = stream_series(operator, series)
        last = frames[-1]
        assert len(last.series) <= 400
        assert last.search.window == last.window


class TestCounters:
    def test_counters_accumulate(self, periodic_series):
        series = TimeSeries(periodic_series)
        operator = StreamingASAP(pane_size=2, resolution=400, refresh_interval=50)
        frames = stream_series(operator, series)
        assert operator.refresh_count == len(frames)
        assert operator.searches_run == len(frames)
        assert operator.candidates_evaluated >= len(frames)
        assert operator.points_ingested == len(series)

    def test_reset_clears_state(self, periodic_series):
        series = TimeSeries(periodic_series[:600])
        operator = StreamingASAP(pane_size=1, resolution=300, refresh_interval=20)
        stream_series(operator, series)
        operator.reset()
        assert operator.points_ingested == 0
        assert operator.push(StreamPoint(0.0, 1.0)) == ()


class TestConfigurations:
    def test_exhaustive_strategy_works(self, periodic_series):
        series = TimeSeries(periodic_series[:800])
        operator = StreamingASAP(
            pane_size=1, resolution=900, refresh_interval=200, strategy="exhaustive"
        )
        frames = stream_series(operator, series)
        assert frames

    def test_seeding_preserves_window_quality(self, periodic_series):
        # CHECKLASTWINDOW reuses the previous feasible window to seed pruning
        # (Section 4.5); the selected windows must not degrade relative to
        # fresh searches, and the only extra evaluations are the per-refresh
        # revalidation smooths.
        series = TimeSeries(periodic_series)

        def run(seed_from_previous):
            operator = StreamingASAP(
                pane_size=1,
                resolution=2400,
                refresh_interval=200,
                seed_from_previous=seed_from_previous,
            )
            frames = stream_series(operator, series)
            return [f.window for f in frames], operator.candidates_evaluated

        seeded_windows, seeded_evals = run(True)
        fresh_windows, fresh_evals = run(False)
        assert seeded_windows[-1] == fresh_windows[-1]
        assert seeded_evals <= fresh_evals + len(seeded_windows) + 2

    def test_max_window_respected(self, periodic_series):
        series = TimeSeries(periodic_series)
        operator = StreamingASAP(
            pane_size=1, resolution=2400, refresh_interval=300, max_window=15
        )
        frames = stream_series(operator, series)
        assert all(f.window <= 15 for f in frames)
