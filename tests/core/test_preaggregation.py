"""Tests for pixel-aware preaggregation (Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import (
    bucket_means,
    expected_ratio,
    point_to_pixel_ratio,
    preaggregate,
    prepare_search_input,
)


class TestRatio:
    def test_paper_example(self):
        # Section 4.4: one week of 1 Hz data on a Retina MBP -> ratio 262.
        assert point_to_pixel_ratio(604_800, 2304) == 262

    def test_floor_of_one(self):
        assert point_to_pixel_ratio(100, 800) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            point_to_pixel_ratio(-1, 10)
        with pytest.raises(ValueError):
            point_to_pixel_ratio(10, 0)


class TestPreaggregate:
    def test_bucket_means(self):
        values = np.arange(12.0)
        result = preaggregate(values, 3)
        assert result.ratio == 4
        assert np.array_equal(result.values, [1.5, 5.5, 9.5])
        assert result.applied

    def test_small_series_untouched(self):
        values = np.arange(100.0)
        result = preaggregate(values, 80)  # 100 < 2*80
        assert result.ratio == 1
        assert not result.applied
        assert np.array_equal(result.values, values)

    def test_threshold_is_twice_resolution(self):
        assert not preaggregate(np.arange(159.0), 80).applied
        assert preaggregate(np.arange(160.0), 80).applied

    def test_partial_trailing_bucket_dropped(self):
        values = np.arange(10.0)
        result = preaggregate(values, 4)  # ratio 2, buckets 5
        assert result.values.size == 5
        result = preaggregate(np.arange(11.0), 4)  # ratio 2, 5 full buckets
        assert result.values.size == 5

    def test_window_unit_translation(self):
        result = preaggregate(np.arange(1000.0), 100)
        assert result.ratio == 10
        assert result.window_in_original_units(7) == 70

    def test_output_near_resolution(self):
        for n in (10_000, 54_321, 100_000):
            result = preaggregate(np.random.default_rng(0).normal(size=n), 800)
            assert 800 <= result.values.size <= 1600

    def test_mean_preserved(self, rng):
        values = rng.normal(size=1000)
        result = preaggregate(values, 100)
        kept = values[: result.values.size * result.ratio]
        assert result.values.mean() == pytest.approx(kept.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            preaggregate(np.ones(10), 0)
        with pytest.raises(ValueError):
            preaggregate(np.ones((2, 5)), 2)


class TestTailSemantics:
    """The trailing-partial-bucket contract (and its include_partial switch)."""

    def test_default_drops_partial_and_reports_usage(self):
        values = np.arange(11.0)
        result = preaggregate(values, 4)  # ratio 2, 5 full buckets, 1 dropped
        assert result.values.size == 5
        assert result.partial_bucket_points == 0
        assert result.original_length == 11
        assert result.original_length_used == 10  # the dropped tail is visible

    def test_include_partial_appends_tail_mean(self):
        values = np.arange(11.0)
        result = preaggregate(values, 4, include_partial=True)
        assert result.values.size == 6
        assert result.values[-1] == values[10:].mean()
        assert result.partial_bucket_points == 1
        assert result.original_length_used == 11

    def test_include_partial_noop_when_series_divides_evenly(self):
        values = np.arange(12.0)
        default = preaggregate(values, 4)
        partial = preaggregate(values, 4, include_partial=True)
        assert np.array_equal(default.values, partial.values)
        assert partial.partial_bucket_points == 0

    def test_both_paths_share_complete_buckets_bit_for_bit(self, rng):
        values = rng.normal(size=1003)
        default = preaggregate(values, 100)
        partial = preaggregate(values, 100, include_partial=True)
        assert np.array_equal(default.values, partial.values[:-1])


class TestBucketMeans:
    def test_matches_reshape_mean(self, rng):
        values = rng.normal(size=103)
        assert np.array_equal(
            bucket_means(values, 10), values[:100].reshape(10, 10).mean(axis=1)
        )

    def test_ratio_one_is_identity(self, rng):
        values = rng.normal(size=7)
        out = bucket_means(values, 1)
        assert np.array_equal(out, values)
        out[0] = np.inf  # a copy, not a view
        assert values[0] != np.inf

    def test_chunked_bucketing_is_bit_identical(self, rng):
        # The pyramid's property: bucketing a prefix then the rest produces
        # the same buckets as bucketing the concatenation.
        values = rng.normal(size=400)
        whole = bucket_means(values, 16)
        head = bucket_means(values[:160], 16)
        tail = bucket_means(values[160:], 16)
        assert np.array_equal(whole, np.concatenate([head, tail]))

    def test_validation(self):
        with pytest.raises(ValueError):
            bucket_means(np.ones(10), 0)
        with pytest.raises(ValueError):
            bucket_means(np.ones((2, 5)), 2)


class TestPipelineStage:
    def test_stage_matches_preaggregate(self, rng):
        values = rng.normal(size=2400)
        staged = prepare_search_input(values, 300)
        direct = preaggregate(values, 300)
        assert staged.ratio == direct.ratio
        assert np.array_equal(staged.values, direct.values)

    def test_stage_identity_when_disabled(self, rng):
        values = rng.normal(size=2400)
        staged = prepare_search_input(values, 300, use_preaggregation=False)
        assert staged.ratio == 1
        assert np.array_equal(staged.values, values)

    def test_stage_validates_even_when_disabled(self):
        with pytest.raises(ValueError):
            prepare_search_input(np.ones(10), 0, use_preaggregation=False)
        with pytest.raises(ValueError):
            prepare_search_input(np.ones((2, 5)), 4, use_preaggregation=False)

    def test_expected_ratio_predicts_stage(self, rng):
        for n in (100, 159, 160, 1000, 2401):
            values = rng.normal(size=n)
            for resolution in (80, 300):
                predicted = expected_ratio(n, resolution)
                assert predicted == prepare_search_input(values, resolution).ratio
            assert expected_ratio(n, 80, use_preaggregation=False) == 1
