"""Tests for pixel-aware preaggregation (Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import point_to_pixel_ratio, preaggregate


class TestRatio:
    def test_paper_example(self):
        # Section 4.4: one week of 1 Hz data on a Retina MBP -> ratio 262.
        assert point_to_pixel_ratio(604_800, 2304) == 262

    def test_floor_of_one(self):
        assert point_to_pixel_ratio(100, 800) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            point_to_pixel_ratio(-1, 10)
        with pytest.raises(ValueError):
            point_to_pixel_ratio(10, 0)


class TestPreaggregate:
    def test_bucket_means(self):
        values = np.arange(12.0)
        result = preaggregate(values, 3)
        assert result.ratio == 4
        assert np.array_equal(result.values, [1.5, 5.5, 9.5])
        assert result.applied

    def test_small_series_untouched(self):
        values = np.arange(100.0)
        result = preaggregate(values, 80)  # 100 < 2*80
        assert result.ratio == 1
        assert not result.applied
        assert np.array_equal(result.values, values)

    def test_threshold_is_twice_resolution(self):
        assert not preaggregate(np.arange(159.0), 80).applied
        assert preaggregate(np.arange(160.0), 80).applied

    def test_partial_trailing_bucket_dropped(self):
        values = np.arange(10.0)
        result = preaggregate(values, 4)  # ratio 2, buckets 5
        assert result.values.size == 5
        result = preaggregate(np.arange(11.0), 4)  # ratio 2, 5 full buckets
        assert result.values.size == 5

    def test_window_unit_translation(self):
        result = preaggregate(np.arange(1000.0), 100)
        assert result.ratio == 10
        assert result.window_in_original_units(7) == 70

    def test_output_near_resolution(self):
        for n in (10_000, 54_321, 100_000):
            result = preaggregate(np.random.default_rng(0).normal(size=n), 800)
            assert 800 <= result.values.size <= 1600

    def test_mean_preserved(self, rng):
        values = rng.normal(size=1000)
        result = preaggregate(values, 100)
        kept = values[: result.values.size * result.ratio]
        assert result.values.mean() == pytest.approx(kept.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            preaggregate(np.ones(10), 0)
        with pytest.raises(ValueError):
            preaggregate(np.ones((2, 5)), 2)
