"""Property tests: the bulk backfill lane against the equivalence law.

The generator produces arbitrary series, configurations, and split points;
the properties pin the tentpole bar of the backfill lane:

* ``backfill(prefix)`` then streaming the suffix is **bit-identical** to
  streaming everything — at the bare operator, behind a :class:`StreamHub`,
  across a :class:`ShardedHub`, and in every multi-resolution pyramid view;
* the elision ledger balances: frames elided plus frames emitted equals the
  frames point-by-point replay would have produced;
* the equivalence survives a checkpoint/restore taken mid-suffix.

These run under the ``ci`` profile on every PR (derandomized, blob-printing)
and under ``nightly`` with 10x examples; see ``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardedHub
from repro.core.streaming import StreamingASAP
from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub


def assert_frames_identical(ours, theirs):
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.window == b.window
        assert a.refresh_index == b.refresh_index
        assert a.points_ingested == b.points_ingested
        assert a.series.values.tobytes() == b.series.values.tobytes()
        assert a.series.timestamps.tobytes() == b.series.timestamps.tobytes()
        assert a.search == b.search
        assert a.quality == b.quality


@st.composite
def backfill_cases(draw):
    """(ts, vs, split, config kwargs, suffix batch size)."""
    length = draw(st.integers(min_value=60, max_value=600))
    split = draw(st.integers(min_value=0, max_value=length))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    ts = np.arange(length, dtype=np.float64)
    period = draw(st.sampled_from([7.0, 19.0, 53.0]))
    vs = np.sin(ts / period) + 0.3 * rng.normal(size=length)
    config = dict(
        pane_size=draw(st.sampled_from([1, 2, 4])),
        resolution=draw(st.sampled_from([40, 80, 150])),
        refresh_interval=draw(st.sampled_from([3, 5, 10])),
        strategy=draw(st.sampled_from(["asap", "binary", "grid10"])),
        incremental=draw(st.booleans()),
    )
    if config["strategy"] == "asap":
        # Both lanes: seeded searches take the exact replay lane, unseeded
        # ones the bulk fast lane.
        config["seed_from_previous"] = draw(st.booleans())
    if draw(st.booleans()):  # messy archive: NaN holes behind the quality stage
        config["normalize"] = True
        config["cadence"] = 1.0
        config["watermark"] = draw(st.integers(min_value=2, max_value=8))
        hole = draw(st.integers(min_value=0, max_value=length - 4))
        vs[hole : hole + 3] = np.nan
    batch = draw(st.integers(min_value=1, max_value=60))
    return ts, vs, split, config, batch


def stream_suffix(push, ts, vs, start, batch):
    frames = []
    for lo in range(start, ts.size, batch):
        frames.extend(push(ts[lo : lo + batch], vs[lo : lo + batch]))
    return frames


@given(case=backfill_cases())
@settings(max_examples=40)
def test_backfill_then_stream_is_bit_identical(case):
    ts, vs, split, config, batch = case
    ref = StreamingASAP(**config)
    ref_prefix = list(ref.push_many(ts[:split], vs[:split]))
    ref_prefix_points = ref.points_ingested
    ref_suffix = stream_suffix(ref.push_many, ts, vs, split, batch)

    op = StreamingASAP(**config)
    result = op.backfill(ts[:split], vs[:split])
    # The emitted frames are the tail of point-by-point replay's frames, and
    # the ledger accounts for every interior frame the lane skipped.
    if result.frames:
        assert_frames_identical(list(result.frames), ref_prefix[-len(result.frames) :])
    assert result.frames_elided + len(result.frames) == len(ref_prefix)
    # points counts what actually folded in, net of the quality stage's
    # drops and the reorder buffer's still-held tail.
    assert result.points == ref_prefix_points
    suffix = stream_suffix(op.push_many, ts, vs, split, batch)
    assert_frames_identical(suffix, ref_suffix)
    if op.pyramid is not None and op.panes_completed:
        ours = op.pyramid_view(16)
        theirs = ref.pyramid_view(16)
        assert ours.values.tobytes() == theirs.values.tobytes()
        assert ours.timestamps.tobytes() == theirs.timestamps.tobytes()


@given(case=backfill_cases())
@settings(max_examples=15)
def test_hub_backfill_survives_checkpoint_mid_suffix(case):
    ts, vs, split, config, batch = case
    cfg = StreamConfig(**config)

    ref = StreamHub(default_config=cfg)
    rid = ref.create_stream()
    ref_frames = list(ref.ingest(rid, ts[:split], vs[:split]))
    for frames in ref.tick().values():  # the deferred end-of-prefix boundary
        ref_frames.extend(frames)
    ref_prefix_points = ref.snapshot(rid).points_ingested

    hub = StreamHub(default_config=cfg)
    sid = hub.create_stream()
    result = hub.backfill(sid, ts[:split], vs[:split])
    # backfill closes its final boundary inline, so ref's ticked prefix
    # frames end exactly where the backfill's emitted frames end.
    if result.frames and ref_frames:
        assert_frames_identical([result.frames[-1]], [ref_frames[-1]])
    assert result.frames_elided + len(result.frames) == len(ref_frames)

    starts = list(range(split, ts.size, batch))
    cut = len(starts) // 2
    ours, theirs = [], []
    for i, lo in enumerate(starts):
        if i == cut:  # checkpoint/restore mid-suffix
            hub = restore(checkpoint(hub))
        ours.extend(hub.ingest(sid, ts[lo : lo + batch], vs[lo : lo + batch]))
        theirs.extend(ref.ingest(rid, ts[lo : lo + batch], vs[lo : lo + batch]))
        for frames in hub.tick().values():
            ours.extend(frames)
        for frames in ref.tick().values():
            theirs.extend(frames)
    assert_frames_identical(ours, theirs)
    stats = hub.stats
    assert stats.backfills == 1
    assert stats.backfill_points == ref_prefix_points


@given(case=backfill_cases())
@settings(max_examples=10)
def test_sharded_backfill_matches_single_hub(case):
    ts, vs, split, config, batch = case
    cfg = StreamConfig(**config)

    ref = StreamHub(default_config=cfg)
    rid = ref.create_stream()
    ref.ingest(rid, ts[:split], vs[:split])
    ref.tick()
    ref_prefix_points = ref.snapshot(rid).points_ingested

    with ShardedHub(shards=2, default_config=cfg) as sharded:
        sid = sharded.create_stream(history=(ts[:split], vs[:split]))
        ours, theirs = [], []
        for lo in range(split, ts.size, batch):
            ours.extend(sharded.ingest(sid, ts[lo : lo + batch], vs[lo : lo + batch]))
            theirs.extend(ref.ingest(rid, ts[lo : lo + batch], vs[lo : lo + batch]))
            for frames in sharded.tick().values():
                ours.extend(frames)
            for frames in ref.tick().values():
                theirs.extend(frames)
        assert_frames_identical(ours, theirs)
        stats = sharded.stats
        assert stats.backfills == 1
        assert stats.backfill_points == ref_prefix_points

        snap = sharded.snapshot(sid)
        ref_snap = ref.snapshot(rid)
        assert snap.points_ingested == ref_snap.points_ingested
        assert snap.panes == ref_snap.panes
        if snap.panes >= 16:  # enough buckets for a multi-resolution view
            view = sharded.snapshot(sid, resolution=16)
            ref_view = ref.snapshot(rid, resolution=16)
            assert view.window == ref_view.window
            assert view.series.values.tobytes() == ref_view.series.values.tobytes()
