"""Unit tests for the bulk backfill lane's building blocks.

The equivalence law itself (backfill then stream == stream everything) is
pinned property-style in ``test_backfill_property.py``; these tests cover the
primitives and the edges — :meth:`RollingWindowState.from_bulk`,
:meth:`Pyramid.build_from`, the pane journal's ``requeue_completed``, the
``backfill`` spec knob, the mode ledger, and state-dict round trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import BackfillResult, RollingWindowState, StreamingASAP
from repro.errors import SpecError
from repro.pyramid import Pyramid
from repro.spec import AsapSpec
from repro.stream.panes import PaneBuffer


@pytest.fixture
def series():
    rng = np.random.default_rng(20170501)
    ts = np.arange(3000, dtype=np.float64)
    vs = np.sin(ts / 23) + 0.3 * rng.standard_normal(ts.size)
    return ts, vs


# -- RollingWindowState.from_bulk ---------------------------------------------


@pytest.mark.parametrize("capacity", [8, 64, 500])
@pytest.mark.parametrize("chunks", [1, 7, 64])
def test_from_bulk_matches_extend_then_rebuild(series, capacity, chunks):
    _ts, vs = series
    bulk = RollingWindowState.from_bulk(vs, capacity=capacity, lag_budget=20)
    streamed = RollingWindowState(capacity=capacity, lag_budget=20)
    for block in np.array_split(vs, chunks):
        streamed.extend(block)
    streamed.rebuild()
    assert bulk.values().tobytes() == streamed.values().tobytes()
    assert bulk.roughness() == streamed.roughness()
    assert bulk.kurtosis() == streamed.kurtosis()
    lag = min(capacity - 1, 20)
    assert bulk.correlations(lag).tobytes() == streamed.correlations(lag).tobytes()


def test_from_bulk_empty_and_validation():
    state = RollingWindowState.from_bulk([], capacity=16, lag_budget=4)
    assert len(state) == 0
    with pytest.raises(ValueError, match="1-D"):
        RollingWindowState.from_bulk(np.zeros((2, 2)), capacity=16, lag_budget=4)


# -- Pyramid.build_from -------------------------------------------------------


def test_build_from_matches_incremental_extend(series):
    ts, vs = series
    incremental = Pyramid(capacity=vs.size)
    incremental.extend(vs, ts)
    bulk = Pyramid.build_from(vs, ts, capacity=vs.size)
    from repro.pyramid import ViewSpec

    for resolution in (16, 64, 200):
        a = bulk.view(ViewSpec(resolution=resolution, include_partial=True))
        b = incremental.view(ViewSpec(resolution=resolution, include_partial=True))
        assert a.values.tobytes() == b.values.tobytes()
        assert a.timestamps.tobytes() == b.timestamps.tobytes()


def test_build_from_defaults_and_validation():
    pyramid = Pyramid.build_from(np.arange(10.0))
    assert pyramid.capacity == 10
    with pytest.raises(ValueError):
        Pyramid.build_from(np.zeros((3, 3)))


# -- PaneBuffer.requeue_completed ---------------------------------------------


def test_requeue_completed_round_trip(series):
    ts, vs = series
    buffer = PaneBuffer(pane_size=4, capacity=200, journal=True)
    buffer.extend(ts, vs)
    means, times = buffer.drain_completed()
    buffer.requeue_completed(means[5:], times[5:])
    again_means, again_times = buffer.drain_completed()
    assert again_means.tobytes() == means[5:].tobytes()
    assert again_times.tobytes() == times[5:].tobytes()


def test_requeue_completed_rejects_misuse():
    plain = PaneBuffer(pane_size=4, capacity=16, journal=False)
    with pytest.raises(ValueError, match="journal=False"):
        plain.requeue_completed([1.0], [1.0])
    journaled = PaneBuffer(pane_size=4, capacity=16, journal=True)
    with pytest.raises(ValueError):
        journaled.requeue_completed([1.0, 2.0], [1.0])


# -- the spec knob ------------------------------------------------------------


def test_spec_backfill_knob_validates():
    assert AsapSpec().backfill == "auto"
    assert AsapSpec(backfill="replay").validate().backfill == "replay"
    with pytest.raises(SpecError, match="backfill"):
        AsapSpec(backfill="bulk").validate()
    with pytest.raises(SpecError, match="backfill"):
        StreamingASAP(pane_size=4, backfill="bulk")


def test_spec_backfill_knob_reaches_operator(series):
    ts, vs = series
    operator = AsapSpec(
        pane_size=4, refresh_interval=10, seed_from_previous=False, backfill="replay"
    ).build_operator()
    result = operator.backfill(ts, vs)
    assert result.mode == "replay"


# -- mode resolution and the ledger -------------------------------------------


def test_auto_mode_picks_fast_lane_when_seed_free(series):
    ts, vs = series
    op = StreamingASAP(pane_size=4, refresh_interval=10, seed_from_previous=False)
    result = op.backfill(ts, vs)
    assert result.mode == "fast"
    assert result.searches_run == 1  # one closing search; interior elided
    assert result.frames_elided > 0
    assert result.frame is result.frames[-1]


def test_auto_mode_falls_back_to_replay_when_seeded(series):
    ts, vs = series
    op = StreamingASAP(pane_size=4, refresh_interval=10, seed_from_previous=True)
    result = op.backfill(ts, vs)
    assert result.mode == "replay"
    assert result.searches_run > 1  # every boundary searched, frames elided
    assert result.frames_elided > 0


def test_empty_backfill_is_a_no_op():
    op = StreamingASAP(pane_size=4, refresh_interval=10, seed_from_previous=False)
    result = op.backfill([], [])
    assert result == BackfillResult(
        points=0, panes=0, frames_elided=0, searches_run=0, mode="fast"
    )
    assert result.frame is None
    assert op.points_ingested == 0


def test_backfill_validates_shapes():
    op = StreamingASAP(pane_size=4)
    with pytest.raises(ValueError):
        op.backfill([1.0, 2.0], [1.0])


# -- counters and durability --------------------------------------------------


def test_backfill_counters_survive_state_round_trip(series):
    ts, vs = series
    op = StreamingASAP(pane_size=4, refresh_interval=10, seed_from_previous=False)
    op.backfill(ts[:2000], vs[:2000])
    assert op.backfills == 1
    assert op.backfill_points == 2000
    assert op.backfill_elided > 0

    revived = StreamingASAP.from_state(op.state_dict())
    assert revived.backfills == 1
    assert revived.backfill_points == 2000
    assert revived.backfill_elided == op.backfill_elided
    assert revived.backfill_mode == op.backfill_mode

    ours = list(revived.push_many(ts[2000:], vs[2000:]))
    theirs = list(op.push_many(ts[2000:], vs[2000:]))
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.window == b.window
        assert a.series.values.tobytes() == b.series.values.tobytes()
