"""Tests for the public batch smoothing API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ASAP, SmoothingResult, TimeSeries, find_window, smooth
from repro.spectral.convolution import sma
from repro.timeseries import load


class TestSmooth:
    def test_accepts_arrays_and_series(self, periodic_series):
        from_array = smooth(periodic_series, resolution=400)
        from_series = smooth(TimeSeries(periodic_series), resolution=400)
        assert from_array.window == from_series.window

    def test_result_fields_consistent(self, taxi_small):
        result = smooth(taxi_small.series, resolution=400)
        assert isinstance(result, SmoothingResult)
        assert result.window_original_units == result.window * result.preaggregation_ratio
        assert result.roughness <= result.original_roughness + 1e-12
        assert len(result.series) > 0
        assert "window=" in result.summary()

    def test_output_respects_resolution_budget(self):
        values = load("power", scale=0.5).series.values
        result = smooth(values, resolution=500)
        # At most ~resolution points after preaggregation + smoothing.
        assert len(result.series) <= 1000

    def test_output_values_match_manual_pipeline(self, taxi_small):
        from repro.core.preaggregation import preaggregate

        result = smooth(taxi_small.series, resolution=400)
        agg = preaggregate(taxi_small.series.values, 400)
        expected = sma(agg.values, result.window)
        np.testing.assert_allclose(result.series.values, expected)

    def test_timestamps_are_bucket_starts(self):
        series = TimeSeries(np.sin(np.arange(2000) / 10.0), timestamps=np.arange(2000.0) * 5)
        result = smooth(series, resolution=500)
        ratio = result.preaggregation_ratio
        assert result.series.timestamps[0] == 0.0
        assert result.series.timestamps[1] == 5.0 * ratio

    def test_no_preaggregation_mode(self, periodic_series):
        result = smooth(periodic_series, resolution=100, use_preaggregation=False)
        assert result.preaggregation_ratio == 1

    def test_high_kurtosis_left_unsmoothed(self):
        dataset = load("twitter_aapl", scale=0.5)
        result = smooth(dataset.series, resolution=800)
        assert not result.smoothed
        assert result.roughness_reduction == 1.0
        np.testing.assert_allclose(
            result.series.values,
            __import__("repro").core.preaggregate(dataset.series.values, 800).values,
        )

    def test_strategy_selection(self, periodic_series):
        asap = smooth(periodic_series, resolution=400, strategy="asap")
        exhaustive = smooth(periodic_series, resolution=400, strategy="exhaustive")
        assert asap.window == exhaustive.window
        assert asap.search.strategy == "asap"
        assert exhaustive.search.strategy == "exhaustive"

    def test_max_window_cap_respected(self, periodic_series):
        result = smooth(periodic_series, resolution=400, max_window=10)
        assert result.window <= 10

    def test_smoothing_reduces_roughness_on_noisy_data(self):
        result = smooth(load("taxi").series, resolution=400)
        assert result.roughness_reduction > 5.0


class TestFindWindow:
    def test_returns_search_and_ratio(self, taxi_small):
        search, ratio = find_window(taxi_small.series, resolution=400)
        full = smooth(taxi_small.series, resolution=400)
        assert search.window == full.window
        assert ratio == full.preaggregation_ratio


class TestASAPClass:
    def test_configured_operator(self, taxi_small):
        operator = ASAP(resolution=400, strategy="asap")
        result = operator.smooth(taxi_small.series)
        assert result.window == smooth(taxi_small.series, resolution=400).window

    def test_find_window_delegates(self, taxi_small):
        operator = ASAP(resolution=400)
        search, ratio = operator.find_window(taxi_small.series)
        assert search.window >= 1
        assert ratio >= 1

    def test_repr_mentions_config(self):
        assert "resolution=1200" in repr(ASAP(resolution=1200))

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            ASAP(resolution=0)

    def test_attributes_stay_assignable_and_now_validate(self, taxi_small):
        # Pre-spec, the knobs were plain attributes; assignment must keep
        # working (now re-merging the spec) and invalid values must raise.
        operator = ASAP(resolution=400)
        operator.resolution = 200
        operator.strategy = "grid2"
        assert operator.spec == operator.spec.merge(resolution=200, strategy="grid2")
        assert operator.smooth(taxi_small.series) == smooth(
            taxi_small.series, resolution=200, strategy="grid2"
        )
        with pytest.raises(ValueError, match="resolution"):
            operator.resolution = 0


class TestASAPForwardsEveryKnob:
    """Regression: ASAP.smooth()/find_window() used to silently drop
    ``kernel``, ``cache``, and ``acf`` — the dataclass and the function must
    accept the same knobs and forward them through the spec path."""

    def test_forwarded_call_sees_kernel_cache_and_acf(self, taxi_small, monkeypatch):
        from repro.core import batch as batch_module

        captured = {}

        def capture(data, *args, **kwargs):
            captured.update(kwargs)
            return "sentinel"

        monkeypatch.setattr(batch_module, "smooth", capture)
        operator = ASAP(resolution=400, kernel="scalar")
        cache, acf = object(), object()
        assert operator.smooth(taxi_small.series, cache=cache, acf=acf) == "sentinel"
        assert captured["spec"].kernel == "scalar"
        assert captured["cache"] is cache
        assert captured["acf"] is acf

        captured.clear()
        monkeypatch.setattr(batch_module, "find_window", capture)
        assert operator.find_window(taxi_small.series, cache=cache, acf=acf) == "sentinel"
        assert captured["spec"].kernel == "scalar"
        assert captured["cache"] is cache
        assert captured["acf"] is acf

    def test_scalar_kernel_configures_the_evaluation_path(self, taxi_small):
        from repro.core.batch import find_window
        from repro.core.preaggregation import prepare_search_input
        from repro.core.smoothing import EvaluationCache

        operator = ASAP(resolution=400, kernel="scalar")
        assert operator.kernel == "scalar"
        assert operator.smooth(taxi_small.series) == smooth(
            taxi_small.series, resolution=400, kernel="scalar"
        )

        # A caller-supplied cache is actually consulted, not dropped.
        staged = prepare_search_input(taxi_small.series.values, 400)
        cache = EvaluationCache(staged.values)
        reference, _ = find_window(taxi_small.series, resolution=400, cache=cache)
        hits_before = cache.hits
        again, _ = operator.find_window(taxi_small.series, cache=cache)
        assert again == reference
        assert cache.hits > hits_before
