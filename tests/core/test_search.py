"""Tests for the window-search strategies (Algorithms 1 and 2).

The exhaustive search serves as the oracle: it evaluates every candidate, so
any strategy claiming quality must match or approach its selected window.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acf import analyze_acf
from repro.core.preaggregation import preaggregate
from repro.core.search import (
    STRATEGIES,
    SearchState,
    asap_search,
    binary_search,
    exhaustive_search,
    grid_search,
    run_strategy,
    search_periodic,
)
from repro.spectral.convolution import sma
from repro.timeseries import load
from repro.timeseries.stats import kurtosis, roughness


class TestExhaustive:
    def test_candidate_count(self, white_noise_series):
        result = exhaustive_search(white_noise_series, max_window=50)
        assert result.candidates_evaluated == 49  # windows 2..50

    def test_default_max_window_is_tenth(self, white_noise_series):
        result = exhaustive_search(white_noise_series)
        assert result.max_window == white_noise_series.size // 10

    def test_iid_platykurtic_picks_large_window(self, rng):
        # Section 4.2 / Equation 4: for IID data with kurtosis < 3, smoothing
        # raises kurtosis toward 3, so every window is feasible and the
        # largest (smoothest) wins.  Uniform noise (kurtosis 1.8) makes this
        # robust in finite samples, where Gaussian noise hovers near the
        # feasibility boundary.
        values = rng.uniform(-1.0, 1.0, size=4000)
        result = exhaustive_search(values, max_window=100)
        assert result.window > 90

    def test_result_metrics_are_consistent(self, periodic_series):
        result = exhaustive_search(periodic_series, max_window=100)
        smoothed = sma(periodic_series, result.window)
        assert result.roughness == pytest.approx(roughness(smoothed))
        assert result.smoothed == (result.window > 1)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_search(np.ones(3))


class TestKurtosisConstraint:
    def test_extreme_outlier_prevents_smoothing(self, rng):
        # Section 3.2's example: one huge outlier means any smoothing dilutes
        # it and drops kurtosis, so the series must stay unsmoothed.
        values = rng.uniform(-1, 1, size=2000)
        values[1000] = 50.0
        for strategy in ("exhaustive", "binary", "asap"):
            result = run_strategy(strategy, values, 100)
            assert result.window == 1, strategy

    def test_every_selected_window_is_feasible(self, periodic_series):
        original_kurtosis = kurtosis(periodic_series)
        for strategy in STRATEGIES:
            result = run_strategy(strategy, periodic_series, 120)
            if result.window > 1:
                smoothed = sma(periodic_series, result.window)
                assert kurtosis(smoothed) >= original_kurtosis - 1e-9, strategy


class TestBinarySearch:
    def test_matches_exhaustive_on_iid(self, white_noise_series):
        # Section 4.2: binary search is justified for IID data.
        binary = binary_search(white_noise_series, max_window=100)
        exhaustive = exhaustive_search(white_noise_series, max_window=100)
        assert binary.window == pytest.approx(exhaustive.window, abs=2)

    def test_few_candidates(self, white_noise_series):
        result = binary_search(white_noise_series, max_window=128)
        assert result.candidates_evaluated <= 9  # log2(127) + 1


class TestGridSearch:
    def test_step_one_equals_exhaustive(self, periodic_series):
        grid = grid_search(periodic_series, step=1, max_window=80)
        exhaustive = exhaustive_search(periodic_series, max_window=80)
        assert grid.window == exhaustive.window

    def test_candidate_counts_scale_with_step(self, periodic_series):
        grid2 = grid_search(periodic_series, step=2, max_window=80)
        grid10 = grid_search(periodic_series, step=10, max_window=80)
        assert grid2.candidates_evaluated == 40
        assert grid10.candidates_evaluated == 8

    def test_coarse_grid_can_miss_optimum(self, periodic_series):
        # Roughness is non-monotonic for periodic data (Section 4.1), so a
        # step-10 grid cannot guarantee the exhaustive window.
        grid10 = grid_search(periodic_series, step=10, max_window=80)
        exhaustive = exhaustive_search(periodic_series, max_window=80)
        assert grid10.roughness >= exhaustive.roughness - 1e-12

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            grid_search(np.ones(100), step=0)


class TestASAP:
    @pytest.mark.parametrize(
        "name", ["taxi", "temp", "sine", "power", "ramp_traffic", "sim_daily"]
    )
    def test_matches_exhaustive_on_datasets(self, name):
        # Table 2's headline: ASAP finds the exhaustive-search window (at the
        # paper's full dataset scale and 1200px target).
        values = preaggregate(load(name).series.values, 1200).values
        asap = asap_search(values)
        exhaustive = exhaustive_search(values)
        assert asap.window == exhaustive.window

    def test_checks_far_fewer_candidates(self):
        values = preaggregate(load("taxi").series.values, 1200).values
        asap = asap_search(values)
        exhaustive = exhaustive_search(values)
        assert asap.candidates_evaluated < exhaustive.candidates_evaluated / 4

    def test_periodic_series_selects_period_multiple(self, periodic_series):
        result = asap_search(periodic_series, max_window=150)
        assert result.window % 60 <= 2 or 60 - (result.window % 60) <= 2

    def test_aperiodic_falls_back_to_binary(self, white_noise_series):
        asap = asap_search(white_noise_series, max_window=100)
        binary = binary_search(white_noise_series, max_window=100)
        assert asap.window == binary.window

    def test_accepts_precomputed_acf_and_state(self, periodic_series):
        acf = analyze_acf(periodic_series, max_lag=150)
        state = SearchState.for_series(periodic_series)
        result = asap_search(periodic_series, max_window=150, acf=acf, state=state)
        assert result.window >= 1

    def test_seeded_state_prunes_candidates(self, periodic_series):
        # Seeding with the known-feasible previous window (Section 4.5)
        # should never increase the number of evaluations.
        fresh = asap_search(periodic_series, max_window=150)
        seeded_state = SearchState.for_series(periodic_series)
        seeded_state.window = fresh.window
        seeded_state.roughness = fresh.roughness
        seeded = asap_search(periodic_series, max_window=150, state=seeded_state)
        assert seeded.candidates_evaluated <= fresh.candidates_evaluated + 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            run_strategy("annealing", np.ones(100))


class TestSearchPeriodic:
    def test_respects_lower_bound(self, periodic_series):
        acf = analyze_acf(periodic_series, max_lag=150)
        state = SearchState.for_series(periodic_series)
        state.lower_bound = 10_000  # absurd bound: everything pruned
        out = search_periodic(periodic_series, list(acf.peaks), acf, state)
        assert out.candidates_evaluated == 0

    def test_feasible_peak_updates_state(self, periodic_series):
        acf = analyze_acf(periodic_series, max_lag=150)
        state = SearchState.for_series(periodic_series)
        out = search_periodic(periodic_series, list(acf.peaks), acf, state)
        assert out.largest_feasible_idx >= 0
        assert out.window > 1


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_asap_never_beats_exhaustive_roughness(self, seed):
        rng = np.random.default_rng(seed)
        t = np.arange(600, dtype=np.float64)
        period = rng.integers(10, 40)
        values = np.sin(2 * np.pi * t / period) + 0.5 * rng.normal(size=600)
        asap = asap_search(values, max_window=60)
        exhaustive = exhaustive_search(values, max_window=60)
        # Exhaustive is the oracle: ASAP can only match it, never beat it.
        assert asap.roughness >= exhaustive.roughness - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_selected_window_always_feasible_or_one(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=400) + np.sin(np.arange(400) / 8.0)
        result = asap_search(values, max_window=40)
        if result.window > 1:
            assert kurtosis(sma(values, result.window)) >= kurtosis(values) - 1e-9
