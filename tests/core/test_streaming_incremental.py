"""Incremental refresh state vs from-scratch recomputation.

The contract under test: every statistic the incremental path maintains —
the correlogram from rolling cross-product sums, kurtosis from rolling power
sums, roughness from rolling first-difference sums — agrees with the
from-scratch computation over the same window to within the repo's 1e-9
discipline, after *arbitrary* push/flush/reset interleavings, and the frames
an incremental operator emits are interchangeable with the from-scratch
operator's (identical windows, bit-identical smoothed values).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acf import analyze_acf, autocorrelation_bruteforce
from repro.core.smoothing import EvaluationCache
from repro.core.streaming import (
    IncrementalDriftError,
    RollingWindowState,
    StreamingASAP,
    _check_agreement,
)
from repro.spectral.convolution import cross_product_sums
from repro.stream.sources import StreamPoint


def drive(operator, values, timestamps=None):
    ts = np.arange(len(values), dtype=np.float64) if timestamps is None else timestamps
    frames = []
    for t, v in zip(ts, values):
        frames.extend(operator.push(StreamPoint(float(t), float(v))))
    frames.extend(operator.flush())
    return frames


def assert_frames_equivalent(fresh, incremental):
    assert len(fresh) == len(incremental)
    for a, b in zip(fresh, incremental):
        assert a.window == b.window
        assert a.refresh_index == b.refresh_index
        assert a.points_ingested == b.points_ingested
        assert np.array_equal(a.series.values, b.series.values)
        assert np.array_equal(a.series.timestamps, b.series.timestamps)
        assert a.search.roughness == pytest.approx(b.search.roughness, rel=1e-9, abs=1e-9)
        assert a.search.kurtosis == pytest.approx(b.search.kurtosis, rel=1e-9, abs=1e-9)


class TestRollingWindowState:
    def test_matches_from_scratch_after_random_schedules(self):
        # Property-style: random capacities, offsets, scales, lengths and
        # rebuild cadences; the state must match analyze_acf + the scalar
        # moment kernels (via EvaluationCache) over the retained window.
        rng = np.random.default_rng(20260728)
        for trial in range(40):
            capacity = int(rng.integers(8, 150))
            lag_budget = max(capacity // 10, 2)
            state = RollingWindowState(capacity, lag_budget)
            window: list[float] = []
            offset = float(rng.normal()) * 10.0 ** float(rng.integers(0, 5))
            scale = 10.0 ** float(rng.integers(-2, 3))
            for step in range(int(rng.integers(16, 400))):
                value = offset + scale * float(rng.normal())
                state.append(value)
                window.append(value)
                if len(window) > capacity:
                    window.pop(0)
                if step % 53 == 52:
                    state.rebuild()
            arr = np.asarray(window)
            if arr.size < 8:
                continue
            max_lag = min(lag_budget, arr.size - 1)
            reference = analyze_acf(arr, max_lag=max_lag)
            np.testing.assert_allclose(
                state.correlations(max_lag),
                reference.correlations,
                rtol=1e-9,
                atol=1e-9,
            )
            cache = EvaluationCache(arr)
            assert state.roughness() == pytest.approx(
                cache.original_roughness, rel=1e-9, abs=1e-9
            )
            assert state.kurtosis() == pytest.approx(
                cache.original_kurtosis, rel=1e-9, abs=1e-9
            )

    def test_matches_bruteforce_cross_products(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=64)
        state = RollingWindowState(capacity=64, lag_budget=10)
        state.extend(values)
        anchored = values - values[0]
        np.testing.assert_allclose(
            state._s, cross_product_sums(anchored, 10), rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            state.correlations(10),
            autocorrelation_bruteforce(values, 10),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_rebuild_is_exact(self):
        rng = np.random.default_rng(6)
        state = RollingWindowState(capacity=32, lag_budget=5)
        state.extend(rng.normal(size=200) + 1e6)  # hostile offset
        state.rebuild()
        window = state.values().copy()
        np.testing.assert_array_equal(
            state._s, cross_product_sums(window, 5)
        )

    def test_degenerate_window_is_safe(self):
        state = RollingWindowState(capacity=16, lag_budget=4)
        state.extend(np.full(12, 3.25))
        correlations = state.correlations(4)
        assert correlations[0] == 1.0
        assert np.all(correlations[1:] == 0.0)
        assert state.roughness() == 0.0
        assert state.kurtosis() == 0.0

    def test_clear_resets_everything(self):
        state = RollingWindowState(capacity=8, lag_budget=2)
        state.extend([1.0, 2.0, 3.0])
        state.clear()
        assert len(state) == 0
        assert state.appended == 0
        state.extend([5.0, 6.0, 7.0, 8.0, 9.0])
        np.testing.assert_allclose(
            state.correlations(2),
            autocorrelation_bruteforce(np.arange(5.0) + 5.0, 2),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingWindowState(capacity=0, lag_budget=2)
        with pytest.raises(ValueError):
            RollingWindowState(capacity=4, lag_budget=-1)
        state = RollingWindowState(capacity=4, lag_budget=2)
        with pytest.raises(ValueError):
            state.correlations(0)  # < 2 window values
        state.extend([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            state.correlations(3)  # beyond the budget


class TestIncrementalStreaming:
    def test_frames_match_from_scratch(self, periodic_series):
        fresh = StreamingASAP(pane_size=2, resolution=400, refresh_interval=25)
        incremental = StreamingASAP(
            pane_size=2,
            resolution=400,
            refresh_interval=25,
            incremental=True,
            recompute_every=8,
        )
        assert_frames_equivalent(
            drive(fresh, periodic_series), drive(incremental, periodic_series)
        )
        assert incremental.full_recomputes > 0

    def test_verify_mode_is_clean_on_hostile_offsets(self, rng):
        # Large offsets are the worst case for raw-sum maintenance; the
        # escape hatch asserts 1e-9 agreement on every single refresh.
        values = 1e7 + rng.normal(size=2500).cumsum()
        operator = StreamingASAP(
            pane_size=1,
            resolution=300,
            refresh_interval=10,
            verify_incremental=True,
            recompute_every=16,
        )
        frames = drive(operator, values)
        assert frames  # verification ran and never raised

    def test_frames_match_with_max_window(self, periodic_series):
        kwargs = dict(pane_size=1, resolution=600, refresh_interval=40, max_window=25)
        fresh = StreamingASAP(**kwargs)
        incremental = StreamingASAP(**kwargs, incremental=True)
        assert_frames_equivalent(
            drive(fresh, periodic_series), drive(incremental, periodic_series)
        )

    def test_push_flush_reset_interleavings(self):
        # Arbitrary schedules of push_many / flush / reset: after every
        # event, the incremental operator must keep matching a from-scratch
        # twin driven through the identical schedule.
        rng = np.random.default_rng(99)
        kwargs = dict(pane_size=2, resolution=120, refresh_interval=7)
        fresh = StreamingASAP(**kwargs)
        incremental = StreamingASAP(**kwargs, verify_incremental=True, recompute_every=5)
        clock = 0.0
        for _ in range(60):
            action = rng.choice(["push", "push", "push", "flush", "reset"])
            if action == "push":
                count = int(rng.integers(1, 90))
                ts = clock + np.arange(count, dtype=np.float64)
                vs = 50.0 + np.sin(ts / 9.0) + 0.2 * rng.normal(size=count)
                clock += count
                a = fresh.push_many(ts, vs)
                b = incremental.push_many(ts, vs)
            elif action == "flush":
                a = list(fresh.flush())
                b = list(incremental.flush())
            else:
                fresh.reset()
                incremental.reset()
                a, b = [], []
            assert_frames_equivalent(a, b)

    def test_push_many_equals_per_point_push(self, periodic_series):
        rng = np.random.default_rng(3)
        ts = np.arange(periodic_series.size, dtype=np.float64)
        kwargs = dict(pane_size=3, resolution=250, refresh_interval=9, incremental=True)
        pointwise = StreamingASAP(**kwargs)
        frames_pointwise = drive(pointwise, periodic_series, ts)
        batched = StreamingASAP(**kwargs)
        frames_batched = []
        i = 0
        while i < periodic_series.size:
            step = int(rng.integers(1, 160))
            frames_batched.extend(
                batched.push_many(ts[i : i + step], periodic_series[i : i + step])
            )
            i += step
        frames_batched.extend(batched.flush())
        assert_frames_equivalent(frames_pointwise, frames_batched)
        # push_many parity is exact, not just 1e-9: same candidate counts too.
        assert pointwise.candidates_evaluated == batched.candidates_evaluated

    def test_deferred_boundary_refresh(self):
        operator = StreamingASAP(pane_size=1, resolution=100, refresh_interval=10, incremental=True)
        ts = np.arange(20, dtype=np.float64)
        vs = np.sin(ts)
        assert operator.push_many(ts[:10], vs[:10], defer_boundary=True) == []
        assert operator.refresh_due
        assert operator.refresh_if_due() is not None
        assert not operator.refresh_due
        assert operator.refresh_if_due() is None
        # A deferred refresh left pending runs before new data is folded.
        operator.push_many(ts[10:20], vs[10:20], defer_boundary=True)
        assert operator.refresh_due
        frames = operator.push_many([20.0], [0.5])
        assert len(frames) == 1
        assert frames[0].points_ingested == 20  # refreshed pre-fold state

    def test_reset_clears_incremental_state(self, periodic_series):
        operator = StreamingASAP(
            pane_size=1, resolution=100, refresh_interval=10, verify_incremental=True
        )
        drive(operator, periodic_series[:400])
        operator.reset()
        assert operator.pane_count == 0
        assert not operator.refresh_due
        # Verification still passes after re-use from a clean slate.
        assert drive(operator, periodic_series[400:900])

    def test_ill_conditioned_offsets_fall_back_to_exact(self):
        # Above ~1e6 offset/spread the scalar kernels themselves wobble past
        # 1e-9, so agreement is only achievable by running the exact path;
        # frames must stay identical to the from-scratch operator and the
        # verify escape hatch must not fire.
        rng = np.random.default_rng(42)
        values = np.concatenate(
            [
                1e12 + rng.normal(size=1500),  # huge offset, unit noise
                1e12 + 1e-4 * rng.normal(size=1500),  # then variance collapses
            ]
        )
        kwargs = dict(pane_size=1, resolution=300, refresh_interval=25)
        fresh = StreamingASAP(**kwargs)
        incremental = StreamingASAP(**kwargs, verify_incremental=True, recompute_every=8)
        frames_fresh = drive(fresh, values)
        frames_incremental = drive(incremental, values)
        assert incremental.exact_fallbacks > 0
        assert len(frames_fresh) == len(frames_incremental)
        for a, b in zip(frames_fresh, frames_incremental):
            assert a.window == b.window
            assert np.array_equal(a.series.values, b.series.values)
            assert a.search.roughness == b.search.roughness
            assert a.search.kurtosis == b.search.kurtosis

    def test_well_conditioned_streams_stay_incremental(self, periodic_series):
        operator = StreamingASAP(
            pane_size=1, resolution=300, refresh_interval=25, incremental=True
        )
        drive(operator, periodic_series)
        assert operator.exact_fallbacks == 0

    def test_non_asap_strategies_skip_lag_sums(self):
        operator = StreamingASAP(
            pane_size=1, resolution=400, refresh_interval=10,
            strategy="grid10", incremental=True,
        )
        assert operator._rolling.lag_budget == 0
        values = np.sin(np.arange(600) / 7.0) + 0.1 * np.cos(np.arange(600))
        frames = drive(operator, values)
        reference = drive(
            StreamingASAP(pane_size=1, resolution=400, refresh_interval=10, strategy="grid10"),
            values,
        )
        assert_frames_equivalent(reference, frames)

    def test_drift_error_formatting(self):
        with pytest.raises(IncrementalDriftError, match="kurtosis"):
            _check_agreement("kurtosis", 1.0, 2.0)

    def test_recompute_every_validated(self):
        with pytest.raises(ValueError):
            StreamingASAP(pane_size=1, recompute_every=0)
