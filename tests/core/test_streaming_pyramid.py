"""Tests for StreamingASAP's attached multi-resolution pyramid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import bucket_means
from repro.core.streaming import StreamingASAP
from repro.pyramid import Pyramid, ViewSpec


def make_stream(n: int, seed: int = 11) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    return t, np.sin(2 * np.pi * t / 180) + 0.3 * rng.normal(size=n)


def drive(operator: StreamingASAP, ts, values, chunk: int = 257):
    frames = []
    for start in range(0, values.size, chunk):
        frames.extend(operator.push_many(ts[start : start + chunk], values[start : start + chunk]))
    return frames


class TestAttachment:
    def test_pyramid_true_builds_matching_capacity(self):
        operator = StreamingASAP(pane_size=4, resolution=200, pyramid=True)
        assert operator.pyramid is not None
        assert operator.pyramid.capacity == 200

    def test_prebuilt_pyramid_accepted(self):
        pyramid = Pyramid(capacity=300)
        operator = StreamingASAP(pane_size=2, resolution=300, pyramid=pyramid)
        assert operator.pyramid is pyramid

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            StreamingASAP(pane_size=2, resolution=300, pyramid=Pyramid(capacity=100))

    def test_no_pyramid_view_raises_with_guidance(self):
        operator = StreamingASAP(pane_size=2, resolution=100)
        with pytest.raises(ValueError, match="pyramid=True"):
            operator.pyramid_view(50)


class TestFeed:
    def test_pyramid_mirrors_window_after_sync(self):
        ts, values = make_stream(12_000)
        operator = StreamingASAP(pane_size=5, resolution=400, refresh_interval=20, pyramid=True)
        drive(operator, ts, values)
        operator.pyramid_view(100)  # syncs
        assert np.array_equal(operator.pyramid.base_values(), operator.aggregated_values())
        assert operator.pyramid.verify_levels() > 0

    def test_view_matches_direct_bucketing_of_window(self):
        ts, values = make_stream(12_000)
        operator = StreamingASAP(pane_size=5, resolution=400, refresh_interval=20, pyramid=True)
        drive(operator, ts, values)
        for resolution in (40, 55, 100, 199):
            view = operator.pyramid_view(resolution)
            base = operator.pyramid.base_values()
            start = view.base_start - operator.pyramid.window_start
            direct = bucket_means(base[start : start + view.base_length], view.ratio)
            assert np.allclose(view.values, direct, rtol=0, atol=1e-9)

    def test_view_timestamps_are_pane_starts(self):
        ts, values = make_stream(4000)
        operator = StreamingASAP(pane_size=4, resolution=500, refresh_interval=25, pyramid=True)
        drive(operator, ts, values)
        view = operator.pyramid_view(ViewSpec(100))
        # pane start timestamps step by pane_size; view buckets by ratio panes
        expected_step = 4 * view.ratio
        assert np.all(np.diff(view.timestamps) == expected_step)

    def test_frames_identical_with_and_without_pyramid(self):
        ts, values = make_stream(9000, seed=3)
        with_pyramid = StreamingASAP(
            pane_size=3, resolution=300, refresh_interval=30, incremental=True, pyramid=True
        )
        without = StreamingASAP(
            pane_size=3, resolution=300, refresh_interval=30, incremental=True
        )
        frames_a = drive(with_pyramid, ts, values)
        frames_b = drive(without, ts, values)
        assert len(frames_a) == len(frames_b)
        for a, b in zip(frames_a, frames_b):
            assert a.window == b.window
            assert np.array_equal(a.series.values, b.series.values)

    def test_reset_clears_pyramid(self):
        ts, values = make_stream(2000)
        operator = StreamingASAP(pane_size=2, resolution=200, pyramid=True)
        drive(operator, ts, values)
        operator.reset()
        assert operator.pyramid.total_appended == 0

    def test_panes_completed_is_monotone_version(self):
        ts, values = make_stream(1000)
        operator = StreamingASAP(pane_size=4, resolution=50, pyramid=True)
        seen = []
        for start in range(0, 1000, 100):
            operator.push_many(ts[start : start + 100], values[start : start + 100])
            seen.append(operator.panes_completed)
        assert seen == sorted(seen)
        assert seen[-1] == 250  # includes panes evicted beyond the window
