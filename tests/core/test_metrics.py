"""Tests for ASAP's quality metrics and closed-form estimates (Sections 3-4)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    estimate_is_rougher,
    kurtosis_iid,
    roughness_estimate,
    roughness_iid,
)
from repro.core.acf import autocorrelation
from repro.spectral.convolution import sma
from repro.timeseries.stats import kurtosis, roughness, std


class TestEquation2:
    def test_iid_roughness_matches_prediction(self, white_noise_series):
        # Equation 2: roughness(SMA(X, w)) = sqrt(2) * sigma / w for IID X.
        sigma = std(white_noise_series)
        for window in (2, 5, 10, 40):
            predicted = roughness_iid(sigma, window)
            observed = roughness(sma(white_noise_series, window))
            assert observed == pytest.approx(predicted, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            roughness_iid(-1.0, 2)
        with pytest.raises(ValueError):
            roughness_iid(1.0, 0)


class TestEquation4:
    def test_kurtosis_moves_toward_three(self):
        assert kurtosis_iid(9.0, 3) == pytest.approx(5.0)
        assert kurtosis_iid(1.8, 2) == pytest.approx(2.4)
        assert kurtosis_iid(3.0, 100) == pytest.approx(3.0)

    def test_iid_kurtosis_empirical(self, rng):
        # Laplace noise (kurt 6) averaged over disjoint windows of w should
        # land near 3 + 3/w.
        values = rng.laplace(0.0, 1.0, size=200_000)
        window = 4
        disjoint = values.reshape(-1, window).mean(axis=1)
        assert kurtosis(disjoint) == pytest.approx(kurtosis_iid(6.0, window), abs=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            kurtosis_iid(3.0, 0)


class TestEquation5:
    def test_estimate_tracks_truth_on_periodic_data(self, periodic_series):
        # Figure A.1's claim, on a controlled series: error around 1-2%.
        sigma = std(periodic_series)
        n = periodic_series.size
        acf = autocorrelation(periodic_series, max_lag=130)
        for window in (10, 30, 60, 90, 120):
            predicted = roughness_estimate(sigma, n, window, float(acf[window]))
            observed = roughness(sma(periodic_series, window))
            assert predicted == pytest.approx(observed, rel=0.05)

    def test_radicand_clamped(self):
        # Extreme autocorrelation can push the radicand negative; clamp to 0.
        assert roughness_estimate(1.0, 100, 50, 0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            roughness_estimate(-1.0, 10, 2, 0.0)
        with pytest.raises(ValueError):
            roughness_estimate(1.0, 10, 10, 0.0)


class TestIsRougher:
    def test_same_acf_prefers_larger_window(self):
        # With equal autocorrelation, the larger window is always smoother.
        assert estimate_is_rougher(10, 0.5, 20, 0.5)
        assert not estimate_is_rougher(20, 0.5, 10, 0.5)

    def test_high_acf_can_beat_larger_window(self):
        # A small window at a strong ACF peak can beat a large window off-peak.
        assert not estimate_is_rougher(10, 0.999, 20, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_is_rougher(0, 0.5, 10, 0.5)
