"""Tests for the pixel rasterizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vis.rasterize import column_extents, pixel_columns, rasterize


class TestPixelColumns:
    def test_uniform_mapping_is_monotone(self):
        cols = pixel_columns(100, 10)
        assert cols.size == 100
        assert np.all(np.diff(cols) >= 0)
        assert cols[0] == 0
        assert cols[-1] == 9

    def test_single_point(self):
        assert np.array_equal(pixel_columns(1, 10), [0])

    def test_positions_respected(self):
        cols = pixel_columns(3, 10, positions=[0.0, 5.0, 9.999], x_range=(0.0, 10.0))
        assert np.array_equal(cols, [0, 5, 9])

    def test_positions_clipped_to_range(self):
        cols = pixel_columns(2, 10, positions=[-5.0, 50.0], x_range=(0.0, 10.0))
        assert np.array_equal(cols, [0, 9])

    def test_degenerate_range(self):
        cols = pixel_columns(2, 10, positions=[3.0, 3.0], x_range=(3.0, 3.0))
        assert np.array_equal(cols, [0, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            pixel_columns(0, 10)
        with pytest.raises(ValueError):
            pixel_columns(5, 0)
        with pytest.raises(ValueError):
            pixel_columns(3, 10, positions=[1.0, 2.0])


class TestColumnExtents:
    def test_extents_are_min_max(self):
        values = np.array([1.0, 3.0, 2.0, 5.0])
        extents = column_extents(values, 2)
        assert np.array_equal(extents[0], [1.0, 3.0])
        assert np.array_equal(extents[1], [2.0, 5.0])

    def test_empty_columns_interpolated(self):
        extents = column_extents(np.array([0.0, 10.0]), 11,
                                 positions=[0.0, 10.0], x_range=(0.0, 10.0))
        # Middle columns inherit linear interpolation between the endpoints.
        assert extents[5, 0] == pytest.approx(5.0, abs=1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            column_extents(np.array([]), 5)


class TestRasterize:
    def test_shape_and_dtype(self, rng):
        grid = rasterize(rng.normal(size=100), 50, 20)
        assert grid.shape == (20, 50)
        assert grid.dtype == bool

    def test_every_column_lit(self, rng):
        grid = rasterize(rng.normal(size=500), 80, 30)
        assert np.all(grid.any(axis=0))

    def test_flat_line_single_row(self):
        grid = rasterize(np.full(100, 2.0), 20, 11)
        lit_rows = np.nonzero(grid.any(axis=1))[0]
        assert lit_rows.size == 1

    def test_column_connectivity(self):
        # A steep jump must not leave a vertical gap between columns.
        values = np.concatenate([np.zeros(50), np.ones(50)])
        grid = rasterize(values, 20, 40)
        for col in range(20):
            lit = np.nonzero(grid[:, col])[0]
            assert np.all(np.diff(lit) == 1), f"gap in column {col}"

    def test_value_range_pins_scale(self):
        grid_auto = rasterize(np.array([0.0, 0.5]), 2, 10)
        grid_pinned = rasterize(np.array([0.0, 0.5]), 2, 10, value_range=(0.0, 1.0))
        assert not np.array_equal(grid_auto, grid_pinned)

    def test_ascending_line_descends_in_rows(self):
        # Row 0 is the top: an increasing series lights higher rows later.
        grid = rasterize(np.arange(100.0), 10, 10)
        first_col_row = np.nonzero(grid[:, 0])[0].max()
        last_col_row = np.nonzero(grid[:, 9])[0].min()
        assert first_col_row > last_col_row

    def test_validation(self):
        with pytest.raises(ValueError):
            rasterize(np.array([]), 5, 5)
        with pytest.raises(ValueError):
            rasterize(np.ones(5), 5, 0)
