"""Bit-identity of the vectorized vis kernels vs their scalar references.

The per-column Python loops of the raster/reduction path (column extents,
polyline bridging, M4 selection) were replaced by segmented reductions and
shifted comparisons; these tests pin each one against a straight port of the
original loop, over structured and fuzzed inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vis.m4 import m4_aggregate
from repro.vis.paa import paa, paa2d
from repro.vis.rasterize import _normalize, column_extents, pixel_columns, rasterize


def column_extents_reference(values, width, positions=None, x_range=None):
    """The original per-column loop, kept verbatim as the oracle."""
    arr = np.asarray(values, dtype=np.float64)
    cols = pixel_columns(arr.size, width, positions=positions, x_range=x_range)
    extents = np.full((width, 2), np.nan)
    for col in range(width):
        mask = cols == col
        if np.any(mask):
            segment = arr[mask]
            extents[col, 0] = segment.min()
            extents[col, 1] = segment.max()
    populated = ~np.isnan(extents[:, 0])
    if not np.all(populated):
        idx = np.arange(width)
        for axis in (0, 1):
            extents[~populated, axis] = np.interp(
                idx[~populated], idx[populated], extents[populated, axis]
            )
    return extents


def rasterize_reference(values, width, height, value_range=None, positions=None, x_range=None):
    """The original sequential bridging loop, kept verbatim as the oracle."""
    arr = np.asarray(values, dtype=np.float64)
    extents = column_extents(arr, width, positions=positions, x_range=x_range)
    if value_range is None:
        lo, hi = float(extents[:, 0].min()), float(extents[:, 1].max())
    else:
        lo, hi = value_range
    norm_lo = _normalize(extents[:, 0], lo, hi)
    norm_hi = _normalize(extents[:, 1], lo, hi)
    row_hi = np.clip(((1.0 - norm_lo) * (height - 1)).round().astype(int), 0, height - 1)
    row_lo = np.clip(((1.0 - norm_hi) * (height - 1)).round().astype(int), 0, height - 1)
    grid = np.zeros((height, width), dtype=bool)
    prev_lo = prev_hi = None
    for col in range(width):
        lo_px, hi_px = int(row_lo[col]), int(row_hi[col])
        if prev_hi is not None and lo_px > prev_hi:
            lo_px = prev_hi + 1
        elif prev_lo is not None and hi_px < prev_lo:
            hi_px = prev_lo - 1
        grid[lo_px : hi_px + 1, col] = True
        prev_lo, prev_hi = int(row_lo[col]), int(row_hi[col])
    return grid


def m4_reference(values, width):
    """The original per-column argmin/argmax loop, kept verbatim."""
    arr = np.asarray(values, dtype=np.float64)
    cols = pixel_columns(arr.size, width)
    boundaries = np.searchsorted(cols, np.arange(width + 1))
    keep_indices: list[int] = []
    for col in range(width):
        lo, hi = int(boundaries[col]), int(boundaries[col + 1])
        if lo == hi:
            continue
        segment = arr[lo:hi]
        chosen = {lo, lo + int(np.argmin(segment)), lo + int(np.argmax(segment)), hi - 1}
        keep_indices.extend(sorted(chosen))
    index_array = np.asarray(keep_indices, dtype=np.int64)
    return index_array, arr[index_array]


def scenarios():
    rng = np.random.default_rng(271828)
    for trial in range(25):
        n = int(rng.integers(1, 2500))
        width = int(rng.integers(1, 350))
        height = int(rng.integers(1, 90))
        values = rng.normal(size=n)
        if trial % 5 == 0:
            values = np.round(values)  # ties exercise first-occurrence rules
        if trial % 7 == 0:
            values[:] = 1.0  # constant series
        positions = x_range = None
        if trial % 3 == 0:
            positions = np.sort(rng.uniform(0.0, 1000.0, size=n))
            x_range = (0.0, 1000.0)
        yield trial, n, width, height, values, positions, x_range


@pytest.mark.parametrize(
    "trial, n, width, height, values, positions, x_range",
    list(scenarios()),
    ids=lambda v: None,
)
class TestBitIdentity:
    def test_column_extents(self, trial, n, width, height, values, positions, x_range):
        fast = column_extents(values, width, positions=positions, x_range=x_range)
        reference = column_extents_reference(
            values, width, positions=positions, x_range=x_range
        )
        assert np.array_equal(fast, reference, equal_nan=True)

    def test_rasterize(self, trial, n, width, height, values, positions, x_range):
        fast = rasterize(values, width, height, positions=positions, x_range=x_range)
        reference = rasterize_reference(
            values, width, height, positions=positions, x_range=x_range
        )
        assert np.array_equal(fast, reference)

    def test_m4(self, trial, n, width, height, values, positions, x_range):
        fast_idx, fast_vals = m4_aggregate(values, width)
        ref_idx, ref_vals = m4_reference(values, width)
        assert np.array_equal(fast_idx, ref_idx)
        assert np.array_equal(fast_vals, ref_vals)


class TestM4NaN:
    def test_nan_segments_match_argmin_convention(self, rng):
        # np.argmin/argmax return the first NaN's index; the segmented
        # reduction must reproduce that rather than crash.
        values = rng.normal(size=64)
        values[[5, 6, 40]] = np.nan
        fast_idx, fast_vals = m4_aggregate(values, 8)
        ref_idx, ref_vals = m4_reference(values, 8)
        assert np.array_equal(fast_idx, ref_idx)
        assert np.array_equal(fast_vals, ref_vals, equal_nan=True)


class TestPaa2d:
    def test_rows_bit_identical_to_scalar_paa(self, rng):
        rows = rng.normal(size=(7, 1234))
        for segments in (1, 5, 100, 800, 1234, 2000):
            expected = np.vstack([paa(row, segments) for row in rows])
            assert np.array_equal(paa2d(rows, segments), expected)

    def test_row_independence(self, rng):
        rows = rng.normal(size=(4, 600))
        whole = paa2d(rows, 37)
        alone = paa2d(rows[2:3], 37)
        assert np.array_equal(whole[2], alone[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            paa2d(np.ones(10), 2)
        with pytest.raises(ValueError):
            paa2d(np.ones((2, 5)), 0)
        with pytest.raises(ValueError):
            paa2d(np.empty((2, 0)), 3)
