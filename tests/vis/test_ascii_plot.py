"""Tests for terminal plotting."""

from __future__ import annotations

import numpy as np

from repro.vis.ascii_plot import ascii_chart, side_by_side, sparkline


class TestSparkline:
    def test_length_capped_at_width(self, rng):
        assert len(sparkline(rng.normal(size=500), width=40)) == 40

    def test_short_series_one_char_each(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline(np.arange(8.0), width=8)
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([2.0, 2.0], width=10) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiChart:
    def test_contains_title_and_axis(self, rng):
        chart = ascii_chart(rng.normal(size=200), width=30, height=8, title="demo")
        assert chart.startswith("demo")
        assert "└" in chart
        assert len(chart.splitlines()) == 10  # title + 8 rows + axis

    def test_without_normalization(self):
        chart = ascii_chart([0.0, 1.0, 0.0], width=9, height=5, normalize=False)
        assert "█" in chart


class TestSideBySide:
    def test_labels_aligned(self, rng):
        text = side_by_side(
            [("raw", rng.normal(size=50)), ("smoothed", np.ones(50))], width=20
        )
        lines = text.splitlines()
        assert len(lines) == 2
        # Labels are right-aligned to a shared width, so both sparklines
        # start at the same column.
        pad = len("smoothed") - len("raw")
        assert lines[0].startswith(" " * pad + "raw ")
        assert lines[1].startswith("smoothed ")

    def test_empty(self):
        assert side_by_side([]) == ""
