"""Tests for M4, PAA, line simplification, devices, and pixel error."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries import TimeSeries
from repro.vis.devices import DEVICES, device, reduction_factor
from repro.vis.m4 import m4_aggregate, m4_series
from repro.vis.paa import paa, paa_series
from repro.vis.pixel_error import pixel_error, raster_difference
from repro.vis.simplify import (
    douglas_peucker,
    douglas_peucker_series,
    visvalingam_whyatt,
    visvalingam_whyatt_series,
)


class TestM4:
    def test_preserves_column_extremes(self, rng):
        values = rng.normal(size=1000)
        indices, reduced = m4_aggregate(values, 50)
        from repro.vis.rasterize import pixel_columns

        cols = pixel_columns(values.size, 50)
        for col in range(50):
            mask = cols == col
            segment = values[mask]
            kept = reduced[cols[indices] == col]
            assert segment.min() in kept
            assert segment.max() in kept

    def test_at_most_four_per_column(self, rng):
        indices, reduced = m4_aggregate(rng.normal(size=5000), 100)
        assert reduced.size <= 400
        assert np.all(np.diff(indices) > 0)  # strictly time-ordered

    def test_keeps_first_and_last(self, rng):
        values = rng.normal(size=777)
        indices, _ = m4_aggregate(values, 33)
        assert indices[0] == 0
        assert indices[-1] == values.size - 1

    def test_m4_raster_nearly_exact(self, rng):
        # The defining property of M4: the reduced series re-renders the
        # original raster (Jugel et al.).
        values = np.cumsum(rng.normal(size=4000))
        indices, reduced = m4_aggregate(values, 200)
        error = pixel_error(values, reduced, width=200, height=100,
                            transformed_positions=indices.astype(float))
        assert error < 0.06

    def test_series_wrapper(self, rng):
        series = TimeSeries(rng.normal(size=100), name="x")
        reduced = m4_series(series, 10)
        assert "m4" in reduced.name
        assert len(reduced) <= 40

    def test_validation(self):
        with pytest.raises(ValueError):
            m4_aggregate(np.array([]), 10)


class TestPAA:
    def test_exact_segment_means(self):
        values = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.array_equal(paa(values, 2), [2.0, 6.0])

    def test_uneven_segments(self):
        values = np.arange(10.0)
        out = paa(values, 3)
        assert out.size == 3
        assert out[0] == pytest.approx(np.mean(values[0:3]))

    def test_identity_when_segments_exceed_length(self):
        values = np.array([1.0, 2.0])
        assert np.array_equal(paa(values, 5), values)

    def test_global_mean_preserved(self, rng):
        values = rng.normal(size=1000)
        out = paa(values, 10)  # segments divide evenly
        assert out.mean() == pytest.approx(values.mean())

    def test_series_wrapper_midpoint_timestamps(self):
        series = TimeSeries(np.arange(10.0))
        reduced = paa_series(series, 2)
        assert np.array_equal(reduced.timestamps, [2.0, 7.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            paa(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            paa(np.array([]), 2)


class TestVisvalingamWhyatt:
    def test_keeps_endpoints(self, rng):
        y = rng.normal(size=100)
        kept = visvalingam_whyatt(np.arange(100.0), y, 10)
        assert 0 in kept and 99 in kept

    def test_target_count_reached(self, rng):
        y = rng.normal(size=200)
        kept = visvalingam_whyatt(np.arange(200.0), y, 50)
        assert kept.size == 50

    def test_collinear_points_removed_first(self):
        x = np.arange(10.0)
        y = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 100.0])
        kept = visvalingam_whyatt(x, y, 3)
        assert 8 in kept  # the corner before the spike survives

    def test_no_op_when_target_exceeds_length(self):
        kept = visvalingam_whyatt(np.arange(5.0), np.ones(5), 10)
        assert kept.size == 5

    def test_series_wrapper(self, rng):
        series = TimeSeries(rng.normal(size=60))
        out = visvalingam_whyatt_series(series, 20)
        assert len(out) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            visvalingam_whyatt(np.arange(5.0), np.ones(5), 1)
        with pytest.raises(ValueError):
            visvalingam_whyatt(np.arange(5.0), np.ones(4), 3)


class TestDouglasPeucker:
    def test_straight_line_collapses_to_endpoints(self):
        kept = douglas_peucker(np.arange(50.0), np.arange(50.0) * 2.0, tolerance=0.01)
        assert np.array_equal(kept, [0, 49])

    def test_corner_preserved(self):
        x = np.arange(21.0)
        y = np.concatenate([np.zeros(10), [5.0], np.zeros(10)])
        kept = douglas_peucker(x, y, tolerance=1.0)
        assert 10 in kept

    def test_monotone_in_tolerance(self, rng):
        x = np.arange(300.0)
        y = np.cumsum(rng.normal(size=300))
        loose = douglas_peucker(x, y, tolerance=5.0)
        tight = douglas_peucker(x, y, tolerance=0.5)
        assert loose.size <= tight.size

    def test_series_wrapper(self, rng):
        series = TimeSeries(np.cumsum(rng.normal(size=100)))
        out = douglas_peucker_series(series, tolerance=2.0)
        assert len(out) <= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            douglas_peucker(np.arange(5.0), np.ones(5), -1.0)


class TestDevices:
    def test_table1_registry(self):
        assert len(DEVICES) == 5
        assert device("38mm Apple Watch").horizontal == 272

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            device("CRT")

    def test_paper_reductions(self):
        # Table 1's reduction column (paper rounds 290.7 up for the Dell).
        assert reduction_factor(1_000_000, 272) == 3676
        assert reduction_factor(1_000_000, 1440) == 694
        assert reduction_factor(1_000_000, 2304) == 434
        assert reduction_factor(1_000_000, 5120) == 195

    def test_validation(self):
        with pytest.raises(ValueError):
            reduction_factor(0, 100)
        with pytest.raises(ValueError):
            reduction_factor(100, 0)


class TestPixelError:
    def test_identity_is_zero(self, rng):
        values = rng.normal(size=500)
        assert pixel_error(values, values, width=100, height=50) == 0.0

    def test_oversmoothing_is_large(self, rng):
        from repro.spectral.convolution import sma

        values = rng.normal(size=2000)
        smoothed = sma(values, 500)
        assert pixel_error(values, smoothed, width=200, height=100) > 0.5

    def test_raster_difference_counts_xor(self):
        a = np.zeros((2, 2), dtype=bool)
        b = np.array([[True, False], [False, False]])
        assert raster_difference(a, b) == 1

    def test_raster_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            raster_difference(np.zeros((2, 2), dtype=bool), np.zeros((3, 2), dtype=bool))
