"""Tests for the stream operator plumbing."""

from __future__ import annotations

import pytest

from repro.stream.operators import (
    FilterOperator,
    MapOperator,
    Pipeline,
    StreamOperator,
    run_stream,
)
from repro.stream.sources import ChunkedReplaySource, ReplaySource, StreamPoint
from repro.timeseries import TimeSeries


class Batcher(StreamOperator):
    """Test helper: buffers items into pairs, flushing the remainder."""

    def __init__(self):
        self._held = []

    def push(self, item):
        self._held.append(item)
        if len(self._held) == 2:
            out = tuple(self._held)
            self._held = []
            return (out,)
        return ()

    def flush(self):
        if self._held:
            out = tuple(self._held)
            self._held = []
            return (out,)
        return ()


class TestBasicOperators:
    def test_map(self):
        op = MapOperator(lambda x: x * 2)
        assert list(op.push(3)) == [6]

    def test_filter(self):
        op = FilterOperator(lambda x: x > 0)
        assert list(op.push(1)) == [1]
        assert list(op.push(-1)) == []

    def test_base_push_is_abstract(self):
        with pytest.raises(NotImplementedError):
            StreamOperator().push(1)


class TestPipeline:
    def test_stages_compose(self):
        pipeline = Pipeline([MapOperator(lambda x: x + 1), FilterOperator(lambda x: x % 2 == 0)])
        assert list(pipeline.push(1)) == [2]
        assert list(pipeline.push(2)) == []

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_flush_cascades_through_later_stages(self):
        pipeline = Pipeline([Batcher(), MapOperator(lambda pair: sum(pair))])
        outputs = []
        for item in (1, 2, 3):
            outputs.extend(pipeline.push(item))
        outputs.extend(pipeline.flush())
        assert outputs == [3, 3]

    def test_run_stream_drains(self):
        results = list(run_stream(Batcher(), [1, 2, 3]))
        assert results == [(1, 2), (3,)]


class TestSources:
    def test_replay_source(self):
        series = TimeSeries([5.0, 6.0], timestamps=[1.0, 2.0])
        points = list(ReplaySource(series))
        assert points == [StreamPoint(1.0, 5.0), StreamPoint(2.0, 6.0)]
        assert len(ReplaySource(series)) == 2

    def test_chunked_replay(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        chunks = list(ChunkedReplaySource(series, chunk_size=2))
        assert [len(c) for c in chunks] == [2, 1]

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ChunkedReplaySource(TimeSeries([1.0]), chunk_size=0)
