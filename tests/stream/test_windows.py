"""Tests for sliding-window semantics and the slide policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.windows import WindowSpec, iter_windows, slide_for_resolution, window_starts


class TestWindowSpec:
    def test_pane_size_is_gcd(self):
        assert WindowSpec(window=12, slide=8).pane_size == 4
        assert WindowSpec(window=7, slide=3).pane_size == 1
        assert WindowSpec(window=10, slide=10).pane_size == 10

    def test_panes_per_window(self):
        assert WindowSpec(window=12, slide=8).panes_per_window == 3

    def test_output_length(self):
        spec = WindowSpec(window=4, slide=2)
        assert spec.output_length(10) == 4
        assert spec.output_length(4) == 1
        assert spec.output_length(3) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(window=0)
        with pytest.raises(ValueError):
            WindowSpec(window=1, slide=0)


class TestWindowIteration:
    def test_starts(self):
        starts = window_starts(10, WindowSpec(window=4, slide=3))
        assert np.array_equal(starts, [0, 3, 6])

    def test_iter_windows_contents(self):
        values = np.arange(6.0)
        windows = list(iter_windows(values, WindowSpec(window=3, slide=2)))
        assert len(windows) == 2
        assert np.array_equal(windows[0], [0.0, 1.0, 2.0])
        assert np.array_equal(windows[1], [2.0, 3.0, 4.0])

    def test_iter_windows_short_series(self):
        assert list(iter_windows(np.ones(2), WindowSpec(window=5))) == []


class TestSlidePolicy:
    def test_matches_point_to_pixel_ratio(self):
        # Section 3.3: slide = #original points / #desired points.
        assert slide_for_resolution(604_800, 2304) == 262

    def test_floor_of_one(self):
        assert slide_for_resolution(10, 100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            slide_for_resolution(-1, 100)
        with pytest.raises(ValueError):
            slide_for_resolution(100, 0)
