"""Tests for incremental aggregates, especially the MomentSketch merge."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.aggregates import MinMaxAggregate, MomentSketch, SumAggregate
from repro.timeseries.stats import kurtosis, variance


class TestSumAggregate:
    def test_update_and_mean(self):
        agg = SumAggregate()
        for v in (1.0, 2.0, 3.0):
            agg.update(v)
        assert agg.mean == pytest.approx(2.0)

    def test_merge(self):
        a, b = SumAggregate(), SumAggregate()
        a.update(1.0)
        b.update(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            SumAggregate().mean


class TestMinMaxAggregate:
    def test_tracks_extremes(self):
        agg = MinMaxAggregate()
        for v in (3.0, -1.0, 2.0):
            agg.update(v)
        assert agg.minimum == -1.0
        assert agg.maximum == 3.0

    def test_merge_with_empty(self):
        a = MinMaxAggregate()
        a.update(1.0)
        a.merge(MinMaxAggregate())
        assert a.count == 1
        assert a.minimum == 1.0


class TestMomentSketchUpdate:
    def test_matches_batch_statistics(self, rng):
        values = rng.normal(2.0, 3.0, size=500)
        sketch = MomentSketch()
        for v in values:
            sketch.update(float(v))
        assert sketch.count == 500
        assert sketch.mean == pytest.approx(values.mean())
        assert sketch.variance == pytest.approx(variance(values), rel=1e-9)
        assert sketch.kurtosis == pytest.approx(kurtosis(values), rel=1e-7)

    def test_of_batch_constructor(self, rng):
        values = rng.normal(size=100)
        sketch = MomentSketch.of(values)
        assert sketch.variance == pytest.approx(variance(values), rel=1e-10)
        assert sketch.kurtosis == pytest.approx(kurtosis(values), rel=1e-10)

    def test_degenerate_kurtosis_is_zero(self):
        sketch = MomentSketch.of([4.0, 4.0, 4.0])
        assert sketch.kurtosis == 0.0

    def test_empty_statistics_rejected(self):
        with pytest.raises(ValueError):
            MomentSketch().variance
        with pytest.raises(ValueError):
            MomentSketch().kurtosis

    def test_copy_is_independent(self):
        sketch = MomentSketch.of([1.0, 2.0])
        clone = sketch.copy()
        clone.update(100.0)
        assert sketch.count == 2


class TestMomentSketchMerge:
    def test_merge_two_batches(self, rng):
        a_values = rng.normal(0.0, 1.0, size=300)
        b_values = rng.normal(5.0, 2.0, size=200)
        merged = MomentSketch.of(a_values)
        merged.merge(MomentSketch.of(b_values))
        combined = np.concatenate([a_values, b_values])
        assert merged.count == 500
        assert merged.mean == pytest.approx(combined.mean())
        assert merged.variance == pytest.approx(variance(combined), rel=1e-9)
        assert merged.kurtosis == pytest.approx(kurtosis(combined), rel=1e-7)

    def test_merge_into_empty(self, rng):
        values = rng.normal(size=50)
        sketch = MomentSketch()
        sketch.merge(MomentSketch.of(values))
        assert sketch.variance == pytest.approx(variance(values), rel=1e-10)

    def test_merge_empty_is_noop(self, rng):
        values = rng.normal(size=50)
        sketch = MomentSketch.of(values)
        before = sketch.copy()
        sketch.merge(MomentSketch())
        assert sketch == before

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=60),
        st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=60),
    )
    def test_merge_equals_concatenation(self, a_values, b_values):
        # Pébay's formulas: merging sketches must equal sketching the union.
        merged = MomentSketch.of(a_values)
        merged.merge(MomentSketch.of(b_values))
        direct = MomentSketch.of(np.concatenate([a_values, b_values]))
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-8, abs=1e-8)
        assert merged.m2 == pytest.approx(direct.m2, rel=1e-6, abs=1e-5)
        assert merged.m4 == pytest.approx(direct.m4, rel=1e-5, abs=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=90),
        st.integers(min_value=1, max_value=8),
    )
    def test_many_way_merge_associativity(self, values, n_chunks):
        # Pane-based windows merge many sketches; order must not matter.
        arr = np.asarray(values)
        chunks = np.array_split(arr, min(n_chunks, arr.size))
        merged = MomentSketch()
        for chunk in chunks:
            merged.merge(MomentSketch.of(chunk))
        direct = MomentSketch.of(arr)
        assert merged.mean == pytest.approx(direct.mean, rel=1e-8, abs=1e-8)
        assert merged.m2 == pytest.approx(direct.m2, rel=1e-6, abs=1e-5)
