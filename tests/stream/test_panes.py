"""Tests for pane-based subaggregation (Section 4.5 state management)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.panes import PaneBuffer
from repro.timeseries.stats import kurtosis


class TestPaneCompletion:
    def test_pane_completes_after_pane_size_points(self):
        buffer = PaneBuffer(pane_size=3, capacity=10)
        assert buffer.push(0.0, 1.0) is None
        assert buffer.push(1.0, 2.0) is None
        pane = buffer.push(2.0, 3.0)
        assert pane is not None
        assert pane.mean == pytest.approx(2.0)
        assert pane.start_time == 0.0

    def test_aggregated_values_are_bucket_means(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        buffer.extend(range(6), [1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
        assert np.array_equal(buffer.aggregated_values(), [2.0, 6.0, 10.0])

    def test_incomplete_pane_not_visible(self):
        buffer = PaneBuffer(pane_size=4, capacity=10)
        buffer.extend(range(6), np.ones(6))
        assert len(buffer) == 1  # only one complete pane of 4
        assert buffer.total_points == 6

    def test_extend_returns_completed_count(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        assert buffer.extend(range(5), np.ones(5)) == 2

    def test_pane_size_one(self):
        buffer = PaneBuffer(pane_size=1, capacity=5)
        buffer.push(0.0, 42.0)
        assert np.array_equal(buffer.aggregated_values(), [42.0])


class TestEviction:
    def test_capacity_bounds_panes(self):
        buffer = PaneBuffer(pane_size=1, capacity=3)
        buffer.extend(range(5), [1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(buffer) == 3
        assert np.array_equal(buffer.aggregated_values(), [3.0, 4.0, 5.0])
        assert buffer.evicted_panes == 2

    def test_timestamps_follow_eviction(self):
        buffer = PaneBuffer(pane_size=2, capacity=2)
        buffer.extend(range(8), np.arange(8.0))
        assert np.array_equal(buffer.aggregated_timestamps(), [4.0, 6.0])

    def test_clear(self):
        buffer = PaneBuffer(pane_size=1, capacity=3)
        buffer.extend(range(3), np.ones(3))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.total_points == 0
        assert buffer.evicted_panes == 0


class TestWindowSketch:
    def test_sketch_merges_panes(self, rng):
        values = rng.normal(size=60)
        buffer = PaneBuffer(pane_size=5, capacity=100)
        buffer.extend(range(60), values)
        sketch = buffer.window_sketch()
        assert sketch.count == 60
        assert sketch.mean == pytest.approx(values.mean())
        assert sketch.kurtosis == pytest.approx(kurtosis(values), rel=1e-7)

    def test_sketch_excludes_open_pane(self, rng):
        values = rng.normal(size=7)
        buffer = PaneBuffer(pane_size=5, capacity=100)
        buffer.extend(range(7), values)
        assert buffer.window_sketch().count == 5


class TestVectorizedExtend:
    def test_extend_bit_identical_to_pushes(self, rng):
        # The batch path must be indistinguishable from per-point pushes:
        # same means, timestamps, eviction counts, and pane sketch state.
        for trial in range(25):
            pane_size = int(rng.integers(1, 7))
            capacity = int(rng.integers(1, 9))
            n = int(rng.integers(0, 80))
            ts = np.cumsum(rng.random(n))
            vs = rng.normal(size=n) * 10.0 ** float(rng.integers(-2, 3))
            pointwise = PaneBuffer(pane_size, capacity)
            batched = PaneBuffer(pane_size, capacity)
            completed_pointwise = sum(
                pointwise.push(float(t), float(v)) is not None for t, v in zip(ts, vs)
            )
            completed_batched = 0
            i = 0
            while i < n:
                step = int(rng.integers(1, 16))
                completed_batched += batched.extend(ts[i : i + step], vs[i : i + step])
                i += step
            assert completed_pointwise == completed_batched
            assert np.array_equal(pointwise.aggregated_values(), batched.aggregated_values())
            assert np.array_equal(
                pointwise.aggregated_timestamps(), batched.aggregated_timestamps()
            )
            assert pointwise.evicted_panes == batched.evicted_panes
            assert pointwise.open_pane_points == batched.open_pane_points
            a, b = pointwise.window_sketch(), batched.window_sketch()
            assert (a.count, a.mean, a.m2, a.m3, a.m4) == (b.count, b.mean, b.m2, b.m3, b.m4)

    def test_giant_backfill_matches_pushes_and_stays_bounded(self):
        # A backfill much larger than the window must leave exactly the state
        # per-point pushes would — same retained panes, counts, journal —
        # without pinning O(batch) memory in the rolling arrays.
        n = 20_000
        rng = np.random.default_rng(8)
        ts = np.arange(n, dtype=np.float64)
        vs = rng.normal(size=n)
        for pane_size, capacity in ((1, 50), (3, 40), (7, 8)):
            pointwise = PaneBuffer(pane_size, capacity, journal=True)
            for t, v in zip(ts, vs):
                pointwise.push(float(t), float(v))
            batched = PaneBuffer(pane_size, capacity, journal=True)
            completed = batched.extend(ts, vs)
            assert completed == n // pane_size
            assert np.array_equal(pointwise.aggregated_values(), batched.aggregated_values())
            assert np.array_equal(
                pointwise.aggregated_timestamps(), batched.aggregated_timestamps()
            )
            assert pointwise.evicted_panes == batched.evicted_panes
            assert pointwise.total_points == batched.total_points
            assert np.array_equal(
                pointwise.drain_completed_means(), batched.drain_completed_means()
            )
            a, b = pointwise.window_sketch(), batched.window_sketch()
            assert (a.count, a.mean, a.m2, a.m3, a.m4) == (b.count, b.mean, b.m2, b.m3, b.m4)
            # Rolling storage stayed O(capacity), not O(batch).
            assert batched._means._buf.size <= 2 * (capacity + 1)

    def test_extend_rejects_mismatched_lengths(self):
        buffer = PaneBuffer(pane_size=2, capacity=4)
        with pytest.raises(ValueError, match="equal lengths"):
            buffer.extend([0.0, 1.0, 2.0], [1.0, 2.0])

    def test_extend_rejects_non_1d(self):
        buffer = PaneBuffer(pane_size=2, capacity=4)
        with pytest.raises(ValueError):
            buffer.extend(np.zeros((2, 2)), np.zeros((2, 2)))


class TestResetSemantics:
    def test_reset_reports_dropped_partial_pane(self):
        # A trailing partial pane never reached the aggregated views; reset
        # must say so instead of silently discarding its points/timestamps.
        buffer = PaneBuffer(pane_size=4, capacity=10)
        buffer.extend(np.arange(6.0) + 100.0, np.ones(6))
        discarded = buffer.reset()
        assert discarded.dropped_partial_pane
        assert discarded.open_pane_points == 2
        assert discarded.open_pane_start == 104.0
        assert discarded.completed_panes == 1
        assert discarded.total_points == 6
        assert len(buffer) == 0
        assert buffer.total_points == 0
        assert buffer.open_pane_points == 0

    def test_reset_on_boundary_reports_no_partial(self):
        buffer = PaneBuffer(pane_size=3, capacity=10)
        buffer.extend(range(6), np.ones(6))
        discarded = buffer.reset()
        assert not discarded.dropped_partial_pane
        assert discarded.open_pane_start is None
        assert discarded.completed_panes == 2

    def test_reuse_after_reset_is_clean(self):
        buffer = PaneBuffer(pane_size=2, capacity=3)
        buffer.extend(range(7), np.arange(7.0))
        buffer.reset()
        buffer.extend(range(4), [10.0, 20.0, 30.0, 40.0])
        assert np.array_equal(buffer.aggregated_values(), [15.0, 35.0])
        assert buffer.evicted_panes == 0

    def test_open_pane_properties(self):
        buffer = PaneBuffer(pane_size=3, capacity=5)
        assert buffer.open_pane_points == 0
        assert buffer.open_pane_start is None
        buffer.push(7.5, 1.0)
        assert buffer.open_pane_points == 1
        assert buffer.open_pane_start == 7.5


class TestJournal:
    def test_journal_drains_completed_means(self):
        buffer = PaneBuffer(pane_size=2, capacity=10, journal=True)
        buffer.extend(range(6), [1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
        assert np.array_equal(buffer.drain_completed_means(), [2.0, 6.0, 10.0])
        assert buffer.drain_completed_means().size == 0
        buffer.push(6.0, 2.0)
        buffer.push(7.0, 4.0)
        assert np.array_equal(buffer.drain_completed_means(), [3.0])

    def test_journal_includes_evicted_appends(self):
        # Consumers replay appends against the same capacity, so the journal
        # must record every completion — even panes evicted immediately.
        buffer = PaneBuffer(pane_size=1, capacity=2, journal=True)
        buffer.extend(range(4), [1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(buffer.drain_completed_means(), [1.0, 2.0, 3.0, 4.0])

    def test_drain_requires_journal(self):
        buffer = PaneBuffer(pane_size=1, capacity=2)
        with pytest.raises(ValueError, match="journal"):
            buffer.drain_completed_means()

    def test_reset_clears_journal(self):
        buffer = PaneBuffer(pane_size=1, capacity=4, journal=True)
        buffer.extend(range(3), np.ones(3))
        buffer.reset()
        assert buffer.drain_completed_means().size == 0


class TestValidation:
    def test_rejects_bad_pane_size(self):
        with pytest.raises(ValueError):
            PaneBuffer(pane_size=0, capacity=1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PaneBuffer(pane_size=1, capacity=0)

    def test_empty_pane_mean_rejected(self):
        from repro.stream.panes import Pane

        with pytest.raises(ValueError):
            Pane(start_time=0.0).mean


class TestTimestampEdgeCases:
    """Messy-timestamp behavior, pinned.

    The buffer buckets by **arrival order**: pane membership is "the next
    ``pane_size`` arrivals", never inferred from timestamp spacing.  Callers
    that need temporal ordering put a :class:`~repro.quality.ReorderBuffer`
    in front (the operator's ``watermark`` knob); the buffer itself must
    neither reorder nor silently mis-bucket.
    """

    def test_duplicate_timestamps_share_a_pane(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        pane = buffer.push(5.0, 1.0) or buffer.push(5.0, 3.0)
        assert pane is not None
        assert pane.start_time == 5.0
        assert pane.mean == pytest.approx(2.0)

    def test_zero_duration_pane_from_repeated_stamp(self):
        # All arrivals at one instant: a legal pane with zero time extent.
        buffer = PaneBuffer(pane_size=3, capacity=10)
        buffer.extend([7.0, 7.0, 7.0], [1.0, 2.0, 3.0])
        assert np.array_equal(buffer.aggregated_timestamps(), [7.0])
        assert np.array_equal(buffer.aggregated_values(), [2.0])

    def test_single_point_per_pane_keeps_exact_stamp(self):
        buffer = PaneBuffer(pane_size=1, capacity=10)
        stamps = [0.0, 0.5, 0.5, 2.75]
        buffer.extend(stamps, np.arange(4.0))
        assert buffer.aggregated_timestamps().tolist() == stamps
        assert buffer.aggregated_values().tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_non_monotonic_extend_buckets_by_arrival_order(self):
        # Out-of-order arrivals land in arrival-order panes — documented
        # behavior, identical between extend and per-point pushes.
        stamps = [3.0, 1.0, 2.0, 0.0]
        values = [30.0, 10.0, 20.0, 0.0]
        bulk = PaneBuffer(pane_size=2, capacity=10)
        bulk.extend(stamps, values)
        loop = PaneBuffer(pane_size=2, capacity=10)
        for t, v in zip(stamps, values):
            loop.push(t, v)
        for buffer in (bulk, loop):
            assert buffer.aggregated_values().tolist() == [20.0, 10.0]
            assert buffer.aggregated_timestamps().tolist() == [3.0, 2.0]


class TestQualityTracking:
    def test_off_by_default_reports_clean(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        buffer.extend(range(4), np.ones(4))
        assert buffer.window_synthetic_points == 0
        assert buffer.window_completeness == 1.0

    def test_synthetic_points_counted_per_window(self):
        buffer = PaneBuffer(pane_size=2, capacity=10, track_quality=True)
        buffer.extend(range(4), np.ones(4), synthetic=np.array([False, True, True, False]))
        assert buffer.window_synthetic_points == 2
        assert buffer.window_completeness == pytest.approx(0.5)

    def test_completeness_follows_eviction(self):
        buffer = PaneBuffer(pane_size=1, capacity=2, track_quality=True)
        buffer.extend(range(3), np.ones(3), synthetic=np.array([True, False, False]))
        # The synthetic point was evicted with its pane.
        assert buffer.window_synthetic_points == 0
        assert buffer.window_completeness == 1.0

    def test_extend_matches_pushes(self):
        mask = np.array([False, True, False, True, True, False, False])
        bulk = PaneBuffer(pane_size=2, capacity=10, track_quality=True)
        bulk.extend(range(7), np.ones(7), synthetic=mask)
        loop = PaneBuffer(pane_size=2, capacity=10, track_quality=True)
        for i, syn in enumerate(mask):
            loop.push(float(i), 1.0, synthetic=bool(syn))
        assert bulk.window_synthetic_points == loop.window_synthetic_points == 3
        assert bulk.window_completeness == loop.window_completeness

    def test_state_round_trip_preserves_tracking(self):
        buffer = PaneBuffer(pane_size=2, capacity=10, track_quality=True)
        buffer.extend(range(5), np.ones(5), synthetic=np.array([True, False, True, False, True]))
        restored = PaneBuffer.from_state(buffer.state_dict())
        assert restored.window_synthetic_points == buffer.window_synthetic_points
        restored.push(5.0, 1.0)
        buffer.push(5.0, 1.0)
        assert restored.window_synthetic_points == buffer.window_synthetic_points

    def test_mismatched_mask_rejected(self):
        buffer = PaneBuffer(pane_size=2, capacity=10, track_quality=True)
        with pytest.raises(ValueError, match="synthetic"):
            buffer.extend(range(4), np.ones(4), synthetic=np.array([True]))
