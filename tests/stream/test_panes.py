"""Tests for pane-based subaggregation (Section 4.5 state management)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.panes import PaneBuffer
from repro.timeseries.stats import kurtosis


class TestPaneCompletion:
    def test_pane_completes_after_pane_size_points(self):
        buffer = PaneBuffer(pane_size=3, capacity=10)
        assert buffer.push(0.0, 1.0) is None
        assert buffer.push(1.0, 2.0) is None
        pane = buffer.push(2.0, 3.0)
        assert pane is not None
        assert pane.mean == pytest.approx(2.0)
        assert pane.start_time == 0.0

    def test_aggregated_values_are_bucket_means(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        buffer.extend(range(6), [1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
        assert np.array_equal(buffer.aggregated_values(), [2.0, 6.0, 10.0])

    def test_incomplete_pane_not_visible(self):
        buffer = PaneBuffer(pane_size=4, capacity=10)
        buffer.extend(range(6), np.ones(6))
        assert len(buffer) == 1  # only one complete pane of 4
        assert buffer.total_points == 6

    def test_extend_returns_completed_count(self):
        buffer = PaneBuffer(pane_size=2, capacity=10)
        assert buffer.extend(range(5), np.ones(5)) == 2

    def test_pane_size_one(self):
        buffer = PaneBuffer(pane_size=1, capacity=5)
        buffer.push(0.0, 42.0)
        assert np.array_equal(buffer.aggregated_values(), [42.0])


class TestEviction:
    def test_capacity_bounds_panes(self):
        buffer = PaneBuffer(pane_size=1, capacity=3)
        buffer.extend(range(5), [1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(buffer) == 3
        assert np.array_equal(buffer.aggregated_values(), [3.0, 4.0, 5.0])
        assert buffer.evicted_panes == 2

    def test_timestamps_follow_eviction(self):
        buffer = PaneBuffer(pane_size=2, capacity=2)
        buffer.extend(range(8), np.arange(8.0))
        assert np.array_equal(buffer.aggregated_timestamps(), [4.0, 6.0])

    def test_clear(self):
        buffer = PaneBuffer(pane_size=1, capacity=3)
        buffer.extend(range(3), np.ones(3))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.total_points == 0
        assert buffer.evicted_panes == 0


class TestWindowSketch:
    def test_sketch_merges_panes(self, rng):
        values = rng.normal(size=60)
        buffer = PaneBuffer(pane_size=5, capacity=100)
        buffer.extend(range(60), values)
        sketch = buffer.window_sketch()
        assert sketch.count == 60
        assert sketch.mean == pytest.approx(values.mean())
        assert sketch.kurtosis == pytest.approx(kurtosis(values), rel=1e-7)

    def test_sketch_excludes_open_pane(self, rng):
        values = rng.normal(size=7)
        buffer = PaneBuffer(pane_size=5, capacity=100)
        buffer.extend(range(7), values)
        assert buffer.window_sketch().count == 5


class TestValidation:
    def test_rejects_bad_pane_size(self):
        with pytest.raises(ValueError):
            PaneBuffer(pane_size=0, capacity=1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PaneBuffer(pane_size=1, capacity=0)

    def test_empty_pane_mean_rejected(self):
        from repro.stream.panes import Pane

        with pytest.raises(ValueError):
            Pane(start_time=0.0).mean
