"""Public-API snapshot: accidental surface breaks fail CI.

``tests/public_api_snapshot.json`` is the checked-in record of the package's
export list and the signatures of the unified-API entry points.  Renaming a
field, dropping an export, or reordering parameters shows up here as a diff
against the snapshot, so surface changes are always deliberate.

To accept an intentional change, regenerate the snapshot::

    PYTHONPATH=src python tests/test_public_api.py --update

and commit the result (the diff *is* the review artifact).
"""

import inspect
import json
import sys
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).parent / "public_api_snapshot.json"


def current_surface() -> dict:
    import repro
    from repro import AsapSpec, Client, StreamHandle, connect

    def sig(obj) -> str:
        return str(inspect.signature(obj))

    return {
        "all": sorted(repro.__all__),
        "signatures": {
            "AsapSpec": sig(AsapSpec),
            "connect": sig(connect),
            "Client.smooth": sig(Client.smooth),
            "Client.smooth_many": sig(Client.smooth_many),
            "Client.stream": sig(Client.stream),
            "Client.ingest": sig(Client.ingest),
            "Client.tick": sig(Client.tick),
            "Client.snapshot": sig(Client.snapshot),
            "Client.close_stream": sig(Client.close_stream),
            "Client.checkpoint": sig(Client.checkpoint),
            "StreamHandle.ingest": sig(StreamHandle.ingest),
            "StreamHandle.tick": sig(StreamHandle.tick),
            "StreamHandle.snapshot": sig(StreamHandle.snapshot),
            "StreamHandle.close": sig(StreamHandle.close),
            "smooth": sig(repro.smooth),
            "find_window": sig(repro.find_window),
            "smooth_many": sig(repro.smooth_many),
        },
    }


def test_exports_match_snapshot():
    snapshot = json.loads(SNAPSHOT_PATH.read_text())
    assert current_surface()["all"] == snapshot["all"], (
        "repro.__all__ changed; if intentional, regenerate the snapshot "
        "(see this module's docstring)"
    )


def test_signatures_match_snapshot():
    snapshot = json.loads(SNAPSHOT_PATH.read_text())
    surface = current_surface()
    for name, expected in snapshot["signatures"].items():
        assert surface["signatures"][name] == expected, (
            f"signature of {name} changed; if intentional, regenerate the "
            f"snapshot (see this module's docstring)"
        )
    assert set(surface["signatures"]) == set(snapshot["signatures"])


def test_every_export_resolves():
    import repro

    for name in json.loads(SNAPSHOT_PATH.read_text())["all"]:
        assert hasattr(repro, name), name


if __name__ == "__main__":
    if "--update" in sys.argv:
        SNAPSHOT_PATH.write_text(json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(json.dumps(current_surface(), indent=2, sort_keys=True))
