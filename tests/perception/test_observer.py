"""Tests for the simulated-observer model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.observer import Observer, extract_percept, region_saliency


def series_with_dip(n=4000, dip_region=3, regions=5, noise=0.0, seed=0):
    """Flat series with a sustained dip centered in one region."""
    rng = np.random.default_rng(seed)
    values = np.zeros(n) + noise * rng.normal(size=n)
    width = n // regions
    start = dip_region * width + width // 4
    values[start : start + width // 2] -= 3.0
    return values


class TestPercept:
    def test_shapes(self, rng):
        percept = extract_percept(rng.normal(size=500), width=100, height=40)
        assert percept.centroid.shape == (100,)
        assert percept.extent.shape == (100,)
        assert percept.width == 100

    def test_centroid_in_unit_range(self, rng):
        percept = extract_percept(rng.normal(size=500), width=60, height=30)
        assert np.all(percept.centroid >= 0.0)
        assert np.all(percept.centroid <= 1.0)

    def test_flat_series_mid_centroid_zero_extent(self):
        percept = extract_percept(np.full(100, 5.0), width=20, height=21)
        assert np.allclose(percept.extent, 0.0)
        assert np.allclose(percept.centroid, 0.5, atol=0.05)


class TestSaliency:
    def test_dip_region_most_salient(self):
        saliency = region_saliency(series_with_dip(), regions=5)
        assert int(np.argmax(saliency)) == 3

    def test_noise_hides_the_dip(self):
        # The core perceptual claim: adding high-frequency noise reduces the
        # dip's contrast-to-noise margin.
        clean = region_saliency(series_with_dip(noise=0.0))
        noisy = region_saliency(series_with_dip(noise=2.0))

        def margin(s):
            others = np.delete(s, 3)
            return s[3] - others.max()

        assert margin(clean) > margin(noisy)

    def test_positions_shift_region_attribution(self):
        values = series_with_dip()
        # Shifting all positions right by one region moves the saliency peak.
        n = values.size
        positions = np.arange(n) + n / 5.0
        shifted = region_saliency(values, positions=positions, x_range=(0.0, float(n - 1)))
        assert int(np.argmax(shifted)) == 4

    def test_needs_two_regions(self):
        with pytest.raises(ValueError):
            region_saliency(np.ones(10), regions=1)


class TestObserverChoice:
    def test_accurate_on_clear_signal(self):
        observer = Observer(seed=1)
        values = series_with_dip()
        correct = sum(observer.identify(values, 3).correct for _ in range(40))
        assert correct >= 30

    def test_near_chance_on_pure_noise(self, rng):
        observer = Observer(seed=2)
        values = rng.normal(size=4000)
        correct = sum(observer.identify(values, 3).correct for _ in range(60))
        assert correct <= 30  # chance is 12/60

    def test_response_time_faster_with_clear_signal(self, rng):
        observer_clear = Observer(seed=3)
        observer_noisy = Observer(seed=3)
        clear_rt = np.mean(
            [observer_clear.identify(series_with_dip(), 3).response_time for _ in range(20)]
        )
        noisy_rt = np.mean(
            [observer_noisy.identify(rng.normal(size=4000), 3).response_time for _ in range(20)]
        )
        assert clear_rt < noisy_rt

    def test_deterministic_given_seed(self):
        values = series_with_dip(noise=1.0)
        a = [Observer(seed=9).identify(values, 3).chosen_region for _ in range(1)]
        b = [Observer(seed=9).identify(values, 3).chosen_region for _ in range(1)]
        assert a == b

    def test_full_lapse_is_uniform(self):
        observer = Observer(lapse_rate=0.999, seed=4)
        values = series_with_dip()
        chosen = {observer.identify(values, 3).chosen_region for _ in range(100)}
        assert len(chosen) >= 4  # guessing spreads across regions

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Observer(temperature=0.0)
        with pytest.raises(ValueError):
            Observer(lapse_rate=1.0)


class TestPreference:
    def test_prefers_plot_with_visible_anomaly(self):
        clear = series_with_dip(noise=0.0)
        hidden = series_with_dip(noise=3.0, seed=1)
        observer = Observer(seed=5)
        votes = [
            observer.prefer([(hidden, None), (clear, None)], true_region=3)
            for _ in range(30)
        ]
        assert sum(v == 1 for v in votes) >= 24
