"""Tests for the user-study harnesses (small cohorts for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.study import (
    PREFERENCE_VISUALIZATIONS,
    StudyConfig,
    VISUALIZATIONS,
    anomaly_identification_study,
    preference_study,
    render_visualization,
)
from repro.timeseries import load


class TestRenderVisualization:
    @pytest.mark.parametrize("name", VISUALIZATIONS)
    def test_every_technique_renders(self, name):
        values = load("sine").series.values
        plot = render_visualization(name, values)
        assert plot.values.size > 0
        assert plot.positions.shape == plot.values.shape
        assert np.all(np.isfinite(plot.values))

    def test_original_is_identity(self):
        values = load("sine").series.values
        plot = render_visualization("Original", values)
        assert np.array_equal(plot.values, values)

    def test_paa100_has_100_points(self):
        values = load("taxi", scale=0.5).series.values
        assert render_visualization("PAA100", values).values.size == 100

    def test_asap_positions_centered(self):
        values = load("sine").series.values
        plot = render_visualization("ASAP", values)
        # Window centering: first display position is (w-1)/2 >= 0.
        assert plot.positions[0] >= 0.0
        assert plot.positions[-1] <= values.size

    def test_unknown_technique(self):
        with pytest.raises(KeyError):
            render_visualization("Hologram", np.ones(100))


class TestStudyI:
    @pytest.fixture(scope="class")
    def results(self):
        config = StudyConfig(trials_per_cell=12, seed=3)
        return anomaly_identification_study(
            dataset_names=("taxi", "sine"),
            visualizations=("ASAP", "Original", "Oversmooth"),
            config=config,
        )

    def test_grid_is_complete(self, results):
        assert len(results) == 6
        keys = {(c.dataset, c.visualization) for c in results}
        assert ("taxi", "ASAP") in keys

    def test_metrics_in_range(self, results):
        for cell in results:
            assert 0.0 <= cell.accuracy <= 1.0
            assert cell.mean_response_time > 0.0
            assert cell.trials == 12

    def test_asap_beats_original(self, results):
        by_key = {(c.dataset, c.visualization): c for c in results}
        asap_mean = np.mean([by_key[(d, "ASAP")].accuracy for d in ("taxi", "sine")])
        orig_mean = np.mean([by_key[(d, "Original")].accuracy for d in ("taxi", "sine")])
        assert asap_mean > orig_mean

    def test_performance_only_dataset_rejected(self):
        with pytest.raises(ValueError, match="no ground-truth anomaly"):
            anomaly_identification_study(
                dataset_names=("traffic_data",),
                visualizations=("ASAP",),
                config=StudyConfig(trials_per_cell=1),
            )


class TestStudyII:
    def test_shares_sum_to_one(self):
        shares = preference_study(
            dataset_names=("sine",), n_participants=10, config=StudyConfig(seed=5)
        )
        assert set(shares) == {"sine"}
        assert sum(shares["sine"].values()) == pytest.approx(1.0)
        assert set(shares["sine"]) == set(PREFERENCE_VISUALIZATIONS)

    def test_asap_preferred_on_sine(self):
        shares = preference_study(
            dataset_names=("sine",), n_participants=16, config=StudyConfig(seed=5)
        )
        assert shares["sine"]["ASAP"] == max(shares["sine"].values())
