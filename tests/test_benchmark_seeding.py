"""Every benchmark must seed its randomness explicitly.

The perf ratchet compares speedups across CI runs; an unseeded benchmark
would measure a different workload every run and turn the trajectory into
noise.  This pins the audited state: no bare ``default_rng()``, no legacy
``np.random.*`` global-state calls, no stdlib ``random`` module, and every
CLI benchmark (the argparse-driven ones feeding ``BENCH_*.json``) exposes
``--seed`` with a fixed default.  The ``bench_fig*``/``bench_table*``
paper-reproduction benchmarks run under pytest-benchmark on fixed datasets,
so the flag requirement does not apply to them — but the no-unseeded-RNG
rules still do.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

BENCHMARKS = sorted((Path(__file__).parent.parent / "benchmarks").glob("bench_*.py"))
CLI_BENCHMARKS = [path for path in BENCHMARKS if "import argparse" in path.read_text()]

UNSEEDED_PATTERNS = [
    # A Generator with no seed derives one from OS entropy — different
    # workload every run.
    (r"default_rng\(\s*\)", "unseeded np.random.default_rng()"),
    # Legacy global-state API: seedable in principle, but the seed is
    # process-wide and any import-order change silently reshuffles it.
    (
        r"np\.random\.(seed|rand|randn|randint|random|normal|uniform|choice|"
        r"shuffle|permutation)\b",
        "legacy np.random global-state call",
    ),
    (r"^\s*(import random\b|from random import)", "stdlib random module"),
]


def test_benchmarks_exist():
    assert len(BENCHMARKS) >= 5
    assert len(CLI_BENCHMARKS) >= 5


def test_cli_benchmarks_cover_every_tier():
    # The explicit audit roster: adding a tier benchmark means adding it
    # here (and to baselines.json if it ratchets), not just to the glob.
    expected = {
        "bench_batch_engine.py",
        "bench_streamhub.py",
        "bench_pyramid.py",
        "bench_cluster.py",
        "bench_kernels.py",
        "bench_messy.py",
        "bench_backfill.py",
        "bench_net.py",
    }
    names = {path.name for path in CLI_BENCHMARKS}
    assert expected <= names, f"missing CLI benchmarks: {sorted(expected - names)}"


@pytest.mark.parametrize("path", BENCHMARKS, ids=lambda p: p.name)
def test_benchmark_randomness_is_seeded(path):
    source = path.read_text()
    violations = []
    for pattern, label in UNSEEDED_PATTERNS:
        for match in re.finditer(pattern, source, flags=re.MULTILINE):
            line = source.count("\n", 0, match.start()) + 1
            violations.append(f"{path.name}:{line}: {label} ({match.group(0)!r})")
    assert not violations, "\n".join(violations)


@pytest.mark.parametrize("path", CLI_BENCHMARKS, ids=lambda p: p.name)
def test_benchmark_exposes_seed_flag(path):
    # Each CLI benchmark's workload must be reproducible from the command line.
    source = path.read_text()
    assert '"--seed"' in source, f"{path.name} has no --seed argument"
