"""Cross-module integration tests: the full pipelines a user would run."""

from __future__ import annotations

import numpy as np

from repro import ASAP, StreamingASAP, smooth
from repro.perception.observer import Observer, region_saliency
from repro.perception.study import render_visualization
from repro.stream.operators import run_stream
from repro.stream.sources import ReplaySource
from repro.timeseries import load, read_csv, write_csv
from repro.vis.ascii_plot import ascii_chart
from repro.vis.pixel_error import pixel_error


class TestBatchPipeline:
    def test_load_smooth_render(self):
        """The quickstart path: dataset -> smooth -> terminal chart."""
        dataset = load("taxi", scale=0.5)
        result = smooth(dataset.series, resolution=400)
        chart = ascii_chart(result.series.values, width=40, height=8, title="taxi")
        assert result.smoothed
        assert chart.startswith("taxi")

    def test_smoothing_makes_anomaly_more_salient(self):
        """The paper's end-to-end claim, as one assertion: the smoothed plot
        separates the anomalous region better than the raw plot."""
        dataset = load("taxi")
        n = len(dataset.series)
        true_region = dataset.anomalies[0].region_index(n, 5)
        x_range = (0.0, float(n - 1))

        def margin(vis):
            plot = render_visualization(vis, dataset.series.values)
            s = region_saliency(plot.values, positions=plot.positions, x_range=x_range)
            others = np.delete(s, true_region)
            return float(s[true_region] - others.max())

        assert margin("ASAP") > margin("Original")

    def test_csv_round_trip_through_smoothing(self, tmp_path):
        dataset = load("sine")
        raw_path = tmp_path / "raw.csv"
        out_path = tmp_path / "smoothed.csv"
        write_csv(dataset.series, raw_path)
        loaded = read_csv(raw_path)
        result = smooth(loaded, resolution=400)
        write_csv(result.series, out_path)
        reloaded = read_csv(out_path)
        np.testing.assert_allclose(reloaded.values, result.series.values)

    def test_operator_reuse_across_datasets(self):
        operator = ASAP(resolution=600)
        for name in ("sine", "taxi"):
            result = operator.smooth(load(name, scale=0.5).series)
            assert result.window >= 1


class TestStreamingPipeline:
    def test_stream_converges_to_batch_window(self):
        """Streaming over a stationary series should settle on the window a
        batch search would pick for the same aggregated data."""
        dataset = load("sine")
        operator = StreamingASAP(pane_size=1, resolution=800, refresh_interval=80)
        frames = list(run_stream(operator, ReplaySource(dataset.series)))
        batch = smooth(dataset.series, resolution=800)
        assert frames[-1].window == batch.window

    def test_observer_sees_anomaly_in_streamed_frame(self):
        dataset = load("taxi")
        n = len(dataset.series)
        pane = max(n // 800, 1)
        operator = StreamingASAP(pane_size=pane, resolution=800, refresh_interval=100)
        frames = list(run_stream(operator, ReplaySource(dataset.series)))
        final = frames[-1]
        observer = Observer(seed=0)
        # The dip lives in the final frame's window; the observer finds it
        # far above chance.
        true_region = dataset.anomalies[0].region_index(n, 5)
        raw_window = final.window * pane
        # Pane timestamps carry the true raw offsets (the buffer may have
        # evicted early panes); center-align by half the raw window.
        positions = final.series.timestamps + (raw_window - 1) / 2.0
        hits = sum(
            observer.identify(
                final.series.values,
                true_region,
                positions=positions,
                x_range=(0.0, float(n - 1)),
            ).correct
            for _ in range(20)
        )
        assert hits >= 14


class TestFidelityTradeoff:
    def test_asap_trades_pixels_for_salience(self):
        """Table 4 x Figure 6 in one test: ASAP has much higher pixel error
        than M4 yet higher anomaly salience."""
        dataset = load("taxi")
        values = dataset.series.values
        n = len(values)
        true_region = dataset.anomalies[0].region_index(n, 5)
        x_range = (0.0, float(n - 1))

        asap_plot = render_visualization("ASAP", values)
        m4_plot = render_visualization("M4", values)

        asap_pixel = pixel_error(values, asap_plot.values,
                                 transformed_positions=asap_plot.positions)
        m4_pixel = pixel_error(values, m4_plot.values,
                               transformed_positions=m4_plot.positions)
        assert asap_pixel > 5 * m4_pixel

        def margin(plot):
            s = region_saliency(plot.values, positions=plot.positions, x_range=x_range)
            others = np.delete(s, true_region)
            return float(s[true_region] - others.max())

        assert margin(asap_plot) > margin(m4_plot)


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.9.0"

    def test_docstring_example_runs(self):
        result = smooth([1.0, 2.0, 1.0, 2.0] * 50, resolution=100)
        assert result.window >= 1
