"""The consolidated error surface: repro.errors is the canonical home, the
historical per-tier spellings remain the same objects, and core's bad
resolution/strategy/kernel configuration raises SpecError (a ValueError)."""

import numpy as np
import pytest

from repro import errors
from repro.errors import SpecError


class TestOneSurface:
    def test_legacy_spellings_are_the_same_objects(self):
        from repro.cluster.shard import (
            ClusterError,
            RemoteShardError,
            ShardDownError,
            ShardProtocolError,
        )
        from repro.core.streaming import IncrementalDriftError
        from repro.persist.codec import CheckpointError
        from repro.service.hub import HubAtCapacityError, HubError, UnknownStreamError

        assert HubError is errors.HubError
        assert HubAtCapacityError is errors.HubAtCapacityError
        assert UnknownStreamError is errors.UnknownStreamError
        assert ClusterError is errors.ClusterError
        assert ShardDownError is errors.ShardDownError
        assert ShardProtocolError is errors.ShardProtocolError
        assert RemoteShardError is errors.RemoteShardError
        assert CheckpointError is errors.CheckpointError
        assert IncrementalDriftError is errors.IncrementalDriftError

    def test_hierarchy(self):
        assert issubclass(SpecError, ValueError)
        assert issubclass(errors.HubAtCapacityError, errors.HubError)
        assert issubclass(errors.UnknownStreamError, KeyError)
        assert issubclass(errors.ShardDownError, errors.ClusterError)


class TestCoreRaisesSpecError:
    def test_bad_resolution(self):
        from repro import ASAP, smooth
        from repro.core.preaggregation import preaggregate
        from repro.engine import BatchEngine

        values = np.sin(np.arange(100.0))
        for raiser in (
            lambda: smooth(values, resolution=0),
            lambda: ASAP(resolution=0),
            lambda: BatchEngine(resolution=0),
            lambda: preaggregate(values, resolution=0),
        ):
            with pytest.raises(SpecError, match="resolution"):
                raiser()

    def test_bad_strategy(self):
        from repro import smooth

        with pytest.raises(SpecError, match="strategy"):
            smooth(np.sin(np.arange(100.0)), strategy="annealing")

    def test_bad_kernel(self):
        from repro import smooth
        from repro.core.smoothing import EvaluationCache

        with pytest.raises(SpecError, match="kernel"):
            smooth(np.sin(np.arange(100.0)), kernel="cuda")
        with pytest.raises(SpecError, match="kernel"):
            EvaluationCache(np.sin(np.arange(100.0)), kernel="cuda")

    def test_run_strategy_keeps_key_error(self):
        # The registry lookup predates the spec and stays a KeyError.
        from repro.core.search import run_strategy

        with pytest.raises(KeyError, match="unknown strategy"):
            run_strategy("annealing", np.ones(100))
