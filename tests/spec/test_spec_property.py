"""Property tests: random AsapSpecs survive the wire exactly.

The laws the serving stack depends on:

* ``to_dict -> json -> from_dict`` is the identity (a spec that crossed a
  checkpoint file or the cluster's IPC boundary drives the exact same run);
* unknown fields are rejected with the field name in the message (schema
  mismatches fail loudly, never silently default);
* ``merge(**overrides)`` equals constructing fresh with the merged fields.
"""

import dataclasses
import json

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.errors import SpecError
from repro.spec import AsapSpec

_FIELD_STRATEGIES = {
    "resolution": st.integers(min_value=1, max_value=100_000),
    "max_window": st.none() | st.integers(min_value=2, max_value=100_000),
    "strategy": st.sampled_from(("asap", "exhaustive", "grid2", "grid10", "binary")),
    "use_preaggregation": st.booleans(),
    "kernel": st.sampled_from(("grid", "scalar", "numba")),
    "pane_size": st.integers(min_value=1, max_value=10_000),
    "refresh_interval": st.integers(min_value=1, max_value=10_000),
    "seed_from_previous": st.booleans(),
    "incremental": st.booleans(),
    "recompute_every": st.integers(min_value=1, max_value=10_000),
    "verify_incremental": st.booleans(),
    "keep_pane_sketches": st.booleans(),
    "pyramid": st.booleans(),
    "warm_start": st.booleans(),
    "normalize": st.booleans(),
    "cadence": st.none()
    | st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    "gap_policy": st.sampled_from(("interpolate", "ffill", "split", "reject")),
    "watermark": st.integers(min_value=0, max_value=10_000),
    "backfill": st.sampled_from(("auto", "replay", "stream")),
    "max_connections": st.integers(min_value=1, max_value=10_000),
    "subscribe_queue": st.integers(min_value=1, max_value=10_000),
}

# Every field must have a strategy, or the properties silently narrow.
assert set(_FIELD_STRATEGIES) == {f.name for f in dataclasses.fields(AsapSpec)}

specs = st.builds(AsapSpec, **_FIELD_STRATEGIES)

# Random subsets of fields, as overrides.
overrides = st.dictionaries(
    st.sampled_from(sorted(_FIELD_STRATEGIES)), st.none(), max_size=5
).flatmap(
    lambda keys: st.fixed_dictionaries({k: _FIELD_STRATEGIES[k] for k in keys})
)


@given(spec=specs)
def test_json_round_trip_is_identity(spec):
    wired = AsapSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert wired == spec
    assert wired.to_dict() == spec.to_dict()


@given(spec=specs, junk=st.text(min_size=1).filter(lambda s: s not in _FIELD_STRATEGIES))
def test_unknown_field_rejected_with_its_name(spec, junk):
    data = spec.to_dict()
    data[junk] = 1
    with pytest.raises(SpecError) as excinfo:
        AsapSpec.from_dict(data)
    assert junk in str(excinfo.value)


@given(spec=specs, patch=overrides)
def test_merge_equals_fresh_construction(spec, patch):
    merged = spec.merge(**patch)
    fresh = AsapSpec(**{**spec.to_dict(), **patch})
    assert merged == fresh
    # And the original is untouched (frozen value semantics).
    assert spec == AsapSpec(**spec.to_dict())
