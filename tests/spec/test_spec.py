"""AsapSpec: validation, serialization, composition, and tier builders."""

import dataclasses
import json

import numpy as np
import pytest

import repro
from repro import AsapSpec, SpecError
from repro.core.streaming import StreamingASAP
from repro.service import StreamConfig
from repro.spec import DEFAULT_RESOLUTION, resolve_spec


class TestValidation:
    def test_defaults_are_valid(self):
        spec = AsapSpec()
        assert spec.resolution == DEFAULT_RESOLUTION
        assert spec.strategy == "asap"
        assert spec.validate() is spec

    @pytest.mark.parametrize(
        "field, value",
        [
            ("resolution", 0),
            ("resolution", "wide"),
            ("resolution", True),
            ("max_window", 1),
            ("max_window", 2.5),
            ("strategy", "annealing"),
            ("kernel", "cuda"),
            ("pane_size", 0),
            ("refresh_interval", 0),
            ("recompute_every", 0),
            ("use_preaggregation", 1),
            ("incremental", "yes"),
            ("pyramid", None),
        ],
    )
    def test_bad_field_named_in_error(self, field, value):
        with pytest.raises(SpecError, match=field):
            AsapSpec(**{field: value})

    def test_spec_error_is_value_error(self):
        # Back-compat: `except ValueError` call sites keep working.
        assert issubclass(SpecError, ValueError)
        with pytest.raises(ValueError):
            AsapSpec(resolution=-5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            AsapSpec().resolution = 100

    def test_hashable(self):
        assert AsapSpec(resolution=400) in {AsapSpec(resolution=400)}


class TestGroups:
    def test_groups_partition_every_field(self):
        grouped = (
            set(AsapSpec.OPERATOR_FIELDS)
            | set(AsapSpec.STREAMING_FIELDS)
            | set(AsapSpec.SERVING_FIELDS)
            | set(AsapSpec.QUALITY_FIELDS)
        )
        names = {f.name for f in dataclasses.fields(AsapSpec)}
        assert grouped == names
        total = (
            len(AsapSpec.OPERATOR_FIELDS)
            + len(AsapSpec.STREAMING_FIELDS)
            + len(AsapSpec.SERVING_FIELDS)
            + len(AsapSpec.QUALITY_FIELDS)
        )
        assert total == len(names)  # disjoint


class TestSerialization:
    def test_round_trip_through_json(self):
        spec = AsapSpec(resolution=256, strategy="grid2", max_window=40, pane_size=3)
        assert AsapSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert AsapSpec.from_json(spec.to_json()) == spec

    def test_missing_fields_default(self):
        # Configs written by older releases (fewer fields) load unchanged.
        spec = AsapSpec.from_dict({"resolution": 128, "pane_size": 2})
        assert spec == AsapSpec(resolution=128, pane_size=2)

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(SpecError, match="window_size"):
            AsapSpec.from_dict({"resolution": 100, "window_size": 5})

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="mapping"):
            AsapSpec.from_dict([("resolution", 100)])

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            AsapSpec.from_json("{not json")

    def test_schema_version_aligned_with_persist(self):
        from repro.persist import SCHEMA_VERSION

        assert AsapSpec.SCHEMA_VERSION == SCHEMA_VERSION


class TestMerge:
    def test_merge_equals_fresh_construction(self):
        base = AsapSpec(resolution=300, strategy="binary")
        merged = base.merge(strategy="asap", pane_size=4)
        assert merged == AsapSpec(resolution=300, strategy="asap", pane_size=4)
        assert base.strategy == "binary"  # immutable

    def test_merge_without_overrides_returns_self(self):
        spec = AsapSpec()
        assert spec.merge() is spec

    def test_merge_revalidates(self):
        with pytest.raises(SpecError, match="resolution"):
            AsapSpec().merge(resolution=0)

    def test_merge_unknown_field_named(self):
        with pytest.raises(SpecError, match="resolutoin"):
            AsapSpec().merge(resolutoin=100)

    def test_resolve_spec_funnel(self):
        assert resolve_spec(None, resolution=200) == AsapSpec(resolution=200)
        base = AsapSpec(strategy="grid10")
        assert resolve_spec(base, resolution=200) == base.merge(resolution=200)
        # None means "not provided", so the base value survives.
        assert resolve_spec(base, strategy=None) == base
        with pytest.raises(SpecError, match="AsapSpec"):
            resolve_spec({"resolution": 100})


class TestBuilders:
    def test_strategy_validation_tracks_the_search_registry(self):
        # The spec validates against the live registry, so a strategy added
        # to core.search.STRATEGIES is immediately constructible here.
        from repro.core.search import STRATEGIES

        for name in STRATEGIES:
            assert AsapSpec(strategy=name).strategy == name

    def test_stream_config_is_the_spec(self):
        # The service tier's config *is* the unified spec: one class, one
        # set of defaults, no hand-copied constructor to drift.
        assert StreamConfig is AsapSpec

    def test_build_operator_matches_legacy_constructor(self):
        spec = AsapSpec(pane_size=2, resolution=120, refresh_interval=6, max_window=30)
        built = spec.build_operator()
        legacy = StreamingASAP(
            pane_size=2,
            resolution=120,
            refresh_interval=6,
            strategy="asap",
            max_window=30,
            seed_from_previous=True,
            incremental=True,
            recompute_every=64,
            verify_incremental=False,
            keep_pane_sketches=False,
            pyramid=True,
        )
        rng = np.random.default_rng(7)
        ts = np.arange(3000.0)
        vs = np.sin(ts / 15.0) + rng.normal(0, 0.2, ts.size)
        frames_built = built.push_many(ts, vs)
        frames_legacy = legacy.push_many(ts, vs)
        assert len(frames_built) == len(frames_legacy) > 0
        for ours, theirs in zip(frames_built, frames_legacy):
            assert ours == theirs

    def test_spec_smooth_matches_function(self):
        rng = np.random.default_rng(11)
        values = np.sin(np.arange(4000.0) / 20.0) + rng.normal(0, 0.3, 4000)
        spec = AsapSpec(resolution=400)
        assert spec.smooth(values) == repro.smooth(values, resolution=400)
        search, ratio = spec.find_window(values)
        legacy_search, legacy_ratio = repro.find_window(values, resolution=400)
        assert (search, ratio) == (legacy_search, legacy_ratio)
