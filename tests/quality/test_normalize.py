"""Batch normalization: cadence inference, regridding, and the gap policies."""

import numpy as np
import pytest

from repro.errors import DataQualityError
from repro.quality import infer_cadence, normalize_series, regrid
from repro.quality.normalize import MAX_FILL_PER_GAP


class TestInferCadence:
    def test_regular_grid(self):
        assert infer_cadence(np.arange(10.0) * 2.5) == 2.5

    def test_median_ignores_gaps(self):
        # One oversized spacing must not skew the inferred cadence.
        ts = np.array([0.0, 1.0, 2.0, 3.0, 50.0, 51.0, 52.0])
        assert infer_cadence(ts) == 1.0

    def test_duplicates_excluded(self):
        ts = np.array([0.0, 0.0, 1.0, 1.0, 2.0])
        assert infer_cadence(ts) == 1.0

    def test_unsorted_input(self):
        assert infer_cadence(np.array([3.0, 0.0, 1.0, 2.0])) == 1.0

    def test_no_positive_spacing_raises(self):
        with pytest.raises(DataQualityError, match="cadence"):
            infer_cadence(np.array([5.0, 5.0, 5.0]))

    def test_not_1d_raises(self):
        with pytest.raises(DataQualityError, match="1-D"):
            infer_cadence(np.zeros((2, 2)))


class TestRegrid:
    def test_regular_input_is_untouched(self):
        # The no-op guarantee: the caller's arrays come back, not copies.
        vs = np.array([1.0, 2.0, 3.0])
        ts = np.array([0.0, 1.0, 2.0])
        out_vs, out_ts, slots = regrid(vs, ts)
        assert out_vs is vs
        assert out_ts is ts
        assert slots.tolist() == [0, 1, 2]

    def test_jittered_input_keeps_exact_stamps(self):
        ts = np.array([0.0, 1.1, 1.9, 3.05])
        vs = np.array([1.0, 2.0, 3.0, 4.0])
        out_vs, out_ts, slots = regrid(vs, ts, cadence=1.0)
        assert out_vs is vs
        assert out_ts is ts  # one-per-slot: jitter preserved, nothing merged
        assert slots.tolist() == [0, 1, 2, 3]

    def test_colliding_samples_merge_time_weighted(self):
        # Two samples in slot 1: dead-center weight 1.0, quarter-off 0.75.
        ts = np.array([0.0, 1.0, 1.25, 2.0])
        vs = np.array([0.0, 4.0, 8.0, 0.0])
        out_vs, out_ts, slots = regrid(vs, ts, cadence=1.0)
        assert slots.tolist() == [0, 1, 2]
        assert out_ts.tolist() == [0.0, 1.0, 2.0]
        expected = (1.0 * 4.0 + 0.75 * 8.0) / 1.75
        assert out_vs[1] == pytest.approx(expected)

    def test_unsorted_input_is_sorted(self):
        ts = np.array([2.0, 0.0, 1.0])
        vs = np.array([30.0, 10.0, 20.0])
        out_vs, out_ts, _ = regrid(vs, ts, cadence=1.0)
        assert out_ts.tolist() == [0.0, 1.0, 2.0]
        assert out_vs.tolist() == [10.0, 20.0, 30.0]

    def test_empty(self):
        out_vs, out_ts, slots = regrid([], [], cadence=1.0)
        assert out_vs.size == out_ts.size == slots.size == 0

    def test_bad_cadence_raises(self):
        with pytest.raises(DataQualityError, match="cadence"):
            regrid([1.0, 2.0], [0.0, 1.0], cadence=0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataQualityError, match="equal-length"):
            regrid([1.0, 2.0], [0.0])


class TestNormalizeSeries:
    def test_dense_input_is_untouched(self):
        vs = np.sin(np.arange(100.0))
        ts = np.arange(100.0)
        norm = normalize_series(vs, ts)
        assert norm.values is vs
        assert norm.timestamps is ts
        assert norm.completeness == 1.0
        assert norm.gaps_filled == 0
        assert norm.nan_dropped == 0
        assert not norm.synthetic.any()
        assert norm.segments == ((0, 100),)

    def test_values_only_dense_is_untouched(self):
        vs = np.arange(50.0)
        norm = normalize_series(vs)
        assert norm.values is vs
        assert norm.cadence == 1.0

    def test_nan_values_dropped_and_filled(self):
        vs = np.arange(10.0)
        vs[4] = np.nan
        norm = normalize_series(vs)
        assert norm.nan_dropped == 1
        assert norm.gaps_filled == 1
        assert bool(norm.synthetic[4])
        assert norm.values[4] == 4.0  # linear fill lands on the line

    def test_interpolate_fills_on_the_grid(self):
        ts = np.array([0.0, 1.0, 4.0, 5.0])
        vs = np.array([0.0, 1.0, 4.0, 5.0])
        norm = normalize_series(vs, ts, cadence=1.0)
        assert norm.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert norm.synthetic.tolist() == [False, False, True, True, False, False]
        assert norm.gaps_filled == 2
        assert norm.completeness == pytest.approx(4 / 6)
        # Observed samples are bit-exact, not re-interpolated.
        assert norm.values[1] == vs[1]

    def test_ffill_repeats_last_observed(self):
        ts = np.array([0.0, 3.0])
        vs = np.array([7.0, 9.0])
        norm = normalize_series(vs, ts, cadence=1.0, gap_policy="ffill")
        assert norm.values.tolist() == [7.0, 7.0, 7.0, 9.0]

    def test_split_reports_segments_without_filling(self):
        ts = np.array([0.0, 1.0, 5.0, 6.0, 7.0])
        vs = np.arange(5.0)
        norm = normalize_series(vs, ts, cadence=1.0, gap_policy="split")
        assert norm.values is not None and norm.values.size == 5  # unfilled
        assert norm.gaps_filled == 0
        assert norm.segments == ((0, 2), (2, 5))
        assert norm.completeness == pytest.approx(5 / 8)

    def test_reject_raises_on_first_gap(self):
        with pytest.raises(DataQualityError, match="reject"):
            normalize_series(np.arange(3.0), np.array([0.0, 1.0, 9.0]), gap_policy="reject")

    def test_unknown_policy_raises(self):
        with pytest.raises(DataQualityError, match="gap_policy"):
            normalize_series(np.arange(3.0), gap_policy="zero")

    def test_oversize_gap_refused(self):
        ts = np.array([0.0, 1.0, 1.0 + (MAX_FILL_PER_GAP + 2)])
        with pytest.raises(DataQualityError, match="MAX_FILL_PER_GAP"):
            normalize_series(np.arange(3.0), ts, cadence=1.0)

    def test_observed_timestamps_survive_filling(self):
        # Jittered observed stamps are preserved; only fills land on the grid.
        ts = np.array([0.0, 1.05, 4.0])
        vs = np.array([0.0, 1.0, 4.0])
        norm = normalize_series(vs, ts, cadence=1.0)
        assert norm.timestamps[1] == 1.05
        assert norm.timestamps[2] == 2.0  # synthetic slot: exact grid point

    def test_single_point(self):
        norm = normalize_series(np.array([5.0]), np.array([3.0]))
        assert norm.values.tolist() == [5.0]
        assert norm.completeness == 1.0

    def test_all_nan(self):
        norm = normalize_series(np.array([np.nan, np.nan]))
        assert norm.values.size == 0
        assert norm.nan_dropped == 2
