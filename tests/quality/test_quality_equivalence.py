"""The tentpole equivalence bar, pinned tier by tier.

Two guarantees:

* **dense no-op** — finite, ordered, exactly-regular input produces
  bit-identical frames with the quality stage on or off, at every tier
  (operator, serving hub, multi-resolution pyramid view, sharded cluster);
* **messy streams keep their ledger** — gap fills, NaN drops, and late
  arrivals are counted, surface in snapshots/stats, and survive a
  checkpoint/restore round trip (schema 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ShardedHub
from repro.core.streaming import FrameQuality, StreamingASAP
from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub

LENGTH = 4000
BATCH = 137

BASE = dict(pane_size=2, resolution=200, refresh_interval=10)
QUALITY = dict(normalize=True, cadence=1.0, watermark=16)


def dense_arrivals(seed=20170501):
    rng = np.random.default_rng(seed)
    ts = np.arange(LENGTH, dtype=np.float64)
    vs = np.sin(2 * np.pi * ts / 96) + 0.3 * rng.normal(size=LENGTH)
    return ts, vs


def drive_operator(operator, ts, vs, batch=BATCH):
    frames = []
    for start in range(0, ts.size, batch):
        frames.extend(operator.push_many(ts[start : start + batch], vs[start : start + batch]))
    frames.extend(operator.flush())
    return frames


def assert_frames_bit_identical(ours, theirs):
    assert len(ours) == len(theirs) > 0
    for a, b in zip(ours, theirs):
        assert a.window == b.window
        assert a.series.values.tobytes() == b.series.values.tobytes()
        assert a.series.timestamps.tobytes() == b.series.timestamps.tobytes()


class TestDenseNoOp:
    @pytest.mark.parametrize(
        "knobs",
        [
            dict(normalize=True, cadence=1.0),
            dict(watermark=16),
            QUALITY,
        ],
        ids=["normalize", "watermark", "both"],
    )
    def test_operator_frames_bit_identical(self, knobs):
        ts, vs = dense_arrivals()
        base = drive_operator(StreamingASAP(**BASE), ts, vs)
        quality = drive_operator(StreamingASAP(**BASE, **knobs), ts, vs)
        assert_frames_bit_identical(quality, base)
        for frame in quality:
            assert frame.quality == FrameQuality()  # all-clean report

    def test_operator_batch_granularity_irrelevant(self):
        # Releasing through the watermark in different batch sizes cannot
        # change the frames: the released sequence is prefix-deterministic.
        ts, vs = dense_arrivals()
        a = drive_operator(StreamingASAP(**BASE, **QUALITY), ts, vs, batch=137)
        b = drive_operator(StreamingASAP(**BASE, **QUALITY), ts, vs, batch=1000)
        assert_frames_bit_identical(a, b)

    def test_hub_frames_and_snapshot(self):
        ts, vs = dense_arrivals()
        frames = {}
        for on in (False, True):
            config = StreamConfig(**BASE, **(QUALITY if on else {}))
            hub = StreamHub(default_config=config)
            sid = hub.create_stream()
            frames[on] = []
            for start in range(0, ts.size, BATCH):
                frames[on].extend(
                    hub.ingest(sid, ts[start : start + BATCH], vs[start : start + BATCH])
                )
        assert_frames_bit_identical(frames[True], frames[False])
        snapshot = hub.snapshot(sid)
        assert snapshot.completeness == 1.0
        assert snapshot.gaps_filled == 0
        assert snapshot.late_accepted == 0
        stats = hub.stats
        assert (stats.gaps_filled, stats.nan_dropped, stats.late_dropped) == (0, 0, 0)

    def test_pyramid_view_unchanged(self):
        # Normalize only: a snapshot reads the *current* window, and a
        # watermark legitimately holds the newest points back (bounded
        # latency), so the view tier's no-op is pinned for the normalizer.
        ts, vs = dense_arrivals()
        views = {}
        for on in (False, True):
            config = StreamConfig(**BASE, **(dict(normalize=True, cadence=1.0) if on else {}))
            hub = StreamHub(default_config=config)
            sid = hub.create_stream()
            hub.ingest(sid, ts, vs)
            views[on] = hub.snapshot(sid, resolution=100)
        assert views[True].series.values.tobytes() == views[False].series.values.tobytes()
        assert views[True].window == views[False].window

    def test_sharded_cluster_frames(self):
        ts, vs = dense_arrivals()
        frames = {}
        for on in (False, True):
            config = StreamConfig(**BASE, **(QUALITY if on else {}))
            hub = ShardedHub(shards=3, default_config=config)
            for i in range(4):
                hub.create_stream(f"s{i}")
            frames[on] = {f"s{i}": [] for i in range(4)}
            for start in range(0, ts.size, BATCH):
                for sid in frames[on]:
                    frames[on][sid].extend(
                        hub.ingest(sid, ts[start : start + BATCH], vs[start : start + BATCH])
                    )
                for sid, emitted in hub.tick().items():
                    frames[on][sid].extend(emitted)
            if on:
                stats = hub.stats
                assert (stats.gaps_filled, stats.late_dropped) == (0, 0)
            for sid in list(frames[on]):
                # Drain the watermark's held-back tail so both runs end at
                # the same boundary.
                frames[on][sid].extend(hub.close(sid, flush=True))
        for sid in frames[True]:
            assert_frames_bit_identical(frames[True][sid], frames[False][sid])


class TestMessyLedger:
    def messy_arrivals(self):
        ts, vs = dense_arrivals()
        vs = vs.copy()
        vs[500:510] = np.nan  # 10 NaN holes -> dropped, then filled as a gap
        keep = np.ones(LENGTH, dtype=bool)
        keep[2000:2040] = False  # a 40-point outage
        return ts[keep], vs[keep]

    def test_operator_counters_and_frame_quality(self):
        ts, vs = self.messy_arrivals()
        operator = StreamingASAP(**BASE, **QUALITY)
        frames = drive_operator(operator, ts, vs)
        assert operator.nan_dropped == 10
        assert operator.gaps_filled == 50  # 40 outage + 10 NaN slots refilled
        last = frames[-1].quality
        assert last.nan_dropped == 10
        assert last.gaps_filled == 50
        assert 0.0 < last.completeness <= 1.0

    def test_hub_snapshot_aggregates(self):
        ts, vs = self.messy_arrivals()
        hub = StreamHub(default_config=StreamConfig(**BASE, **QUALITY))
        sid = hub.create_stream()
        hub.ingest(sid, ts, vs)
        snapshot = hub.snapshot(sid)
        assert snapshot.nan_dropped == 10
        assert snapshot.gaps_filled == 50
        assert hub.stats.gaps_filled == 50

    def test_counters_survive_checkpoint_round_trip(self):
        ts, vs = self.messy_arrivals()
        hub = StreamHub(default_config=StreamConfig(**BASE, **QUALITY))
        sid = hub.create_stream()
        half = ts.size // 2
        before = list(hub.ingest(sid, ts[:half], vs[:half]))
        revived = restore(checkpoint(hub))
        resumed = list(revived.ingest(sid, ts[half:], vs[half:]))
        straight = list(hub.ingest(sid, ts[half:], vs[half:]))
        assert_frames_bit_identical(before + resumed, before + straight)
        assert revived.snapshot(sid).gaps_filled == hub.snapshot(sid).gaps_filled
        assert revived.snapshot(sid).nan_dropped == hub.snapshot(sid).nan_dropped

    def test_shuffled_counters_survive_sharded_checkpoint(self):
        ts, vs = dense_arrivals()
        rng = np.random.default_rng(3)
        order = np.arange(ts.size)
        for start in range(0, ts.size, 16):
            order[start : start + 16] = start + rng.permutation(min(16, ts.size - start))
        hub = ShardedHub(shards=2, default_config=StreamConfig(**BASE, **QUALITY))
        hub.create_stream("s0")
        hub.ingest("s0", ts[order][:2000], vs[order][:2000])
        assert hub.stats.late_accepted > 0
        revived = restore(checkpoint(hub))
        assert revived.stats.late_accepted == hub.stats.late_accepted
        assert revived.stats.late_dropped == hub.stats.late_dropped == 0
