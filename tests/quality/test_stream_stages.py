"""The streaming quality stages: ReorderBuffer and StreamNormalizer units."""

import numpy as np
import pytest

from repro.errors import DataQualityError
from repro.quality import ReorderBuffer, StreamNormalizer
from repro.quality.stream import CADENCE_INFER_SAMPLES


class TestReorderBuffer:
    def test_watermark_validation(self):
        with pytest.raises(ValueError, match="watermark"):
            ReorderBuffer(0)

    def test_in_order_fast_path_returns_untouched_slices(self):
        buffer = ReorderBuffer(watermark=4)
        ts = np.arange(10.0)
        vs = ts * 2
        out_ts, out_vs = buffer.push_many(ts, vs)
        # 10 in, 4 held back: the first 6 release, in order.
        assert out_ts.tolist() == list(range(6))
        assert out_vs.tolist() == [2.0 * t for t in range(6)]
        assert len(buffer) == 4
        assert buffer.late_accepted == 0

    def test_under_watermark_releases_nothing(self):
        buffer = ReorderBuffer(watermark=8)
        out_ts, out_vs = buffer.push_many([0.0, 1.0], [10.0, 11.0])
        assert out_ts.size == 0 and out_vs.size == 0
        assert len(buffer) == 2

    def test_out_of_order_within_watermark_is_sorted(self):
        buffer = ReorderBuffer(watermark=4)
        out_ts, _ = buffer.push_many([2.0, 0.0, 1.0, 3.0, 4.0, 5.0], np.zeros(6))
        drained_ts, _ = buffer.drain()
        released = out_ts.tolist() + drained_ts.tolist()
        assert released == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert buffer.late_accepted == 2  # 0.0 and 1.0 arrived behind 2.0
        assert buffer.late_dropped == 0

    def test_beyond_watermark_is_counted_and_dropped(self):
        buffer = ReorderBuffer(watermark=2)
        buffer.push_many([0.0, 1.0, 2.0, 3.0, 4.0], np.zeros(5))  # releases up to 2.0
        out_ts, _ = buffer.push_many([0.5], [9.0])  # older than last released
        assert out_ts.size == 0
        assert buffer.late_dropped == 1
        drained_ts, drained_vs = buffer.drain()
        assert 9.0 not in drained_vs.tolist()
        assert drained_ts.tolist() == [3.0, 4.0]

    def test_sorted_stream_equivalence_under_block_shuffle(self):
        # The invariant: displacement <= watermark => released == sorted.
        rng = np.random.default_rng(5)
        ts = np.arange(200.0)
        vs = rng.normal(size=200)
        order = np.arange(200)
        for start in range(0, 200, 8):
            order[start : start + 8] = start + rng.permutation(min(8, 200 - start))
        buffer = ReorderBuffer(watermark=8)
        rel_ts, rel_vs = buffer.push_many(ts[order], vs[order])
        drain_ts, drain_vs = buffer.drain()
        assert np.concatenate((rel_ts, drain_ts)).tolist() == ts.tolist()
        assert np.concatenate((rel_vs, drain_vs)).tolist() == vs.tolist()
        assert buffer.late_dropped == 0

    def test_drain_then_reuse(self):
        buffer = ReorderBuffer(watermark=4)
        buffer.push_many([0.0, 1.0], [0.0, 0.0])
        buffer.drain()
        out_ts, _ = buffer.push_many([0.5], [0.0])  # before last drained release
        assert out_ts.size == 0
        assert buffer.late_dropped == 1

    def test_state_round_trip(self):
        buffer = ReorderBuffer(watermark=4)
        buffer.push_many([3.0, 1.0, 2.0, 4.0, 5.0, 6.0], np.arange(6.0))
        restored = ReorderBuffer.from_state(buffer.state_dict())
        assert restored.late_accepted == buffer.late_accepted
        assert restored.late_dropped == buffer.late_dropped
        a_ts, a_vs = buffer.drain()
        b_ts, b_vs = restored.drain()
        assert a_ts.tolist() == b_ts.tolist()
        assert a_vs.tolist() == b_vs.tolist()


class TestStreamNormalizer:
    def test_policy_and_cadence_validation(self):
        with pytest.raises(DataQualityError, match="gap_policy"):
            StreamNormalizer(gap_policy="zero")
        with pytest.raises(DataQualityError, match="cadence"):
            StreamNormalizer(cadence=-1.0)

    def test_dense_fast_path_returns_untouched(self):
        normalizer = StreamNormalizer(cadence=1.0)
        ts = np.arange(20.0)
        vs = np.sin(ts)
        out_ts, out_vs, synth = normalizer.process(ts, vs)
        assert out_ts is ts and out_vs is vs and synth is None
        assert normalizer.gaps_filled == 0

    def test_nan_dropped_and_counted(self):
        normalizer = StreamNormalizer(cadence=1.0, gap_policy="split")
        vs = np.array([1.0, np.nan, 3.0])
        out_ts, out_vs, _ = normalizer.process(np.arange(3.0), vs)
        assert out_vs.tolist() == [1.0, 3.0]
        assert normalizer.nan_dropped == 1

    def test_gap_interpolated_across_batches(self):
        normalizer = StreamNormalizer(cadence=1.0)
        normalizer.process([0.0, 1.0], [0.0, 1.0])
        out_ts, out_vs, synth = normalizer.process([4.0], [4.0])
        assert out_ts.tolist() == [2.0, 3.0, 4.0]
        assert out_vs.tolist() == [2.0, 3.0, 4.0]
        assert synth.tolist() == [True, True, False]
        assert normalizer.gaps_filled == 2

    def test_ffill_policy(self):
        normalizer = StreamNormalizer(cadence=1.0, gap_policy="ffill")
        normalizer.process([0.0], [7.0])
        _, out_vs, _ = normalizer.process([3.0], [9.0])
        assert out_vs.tolist() == [7.0, 7.0, 9.0]

    def test_split_counts_without_filling(self):
        normalizer = StreamNormalizer(cadence=1.0, gap_policy="split")
        normalizer.process([0.0], [0.0])
        out_ts, _, synth = normalizer.process([5.0], [5.0])
        assert out_ts.tolist() == [5.0]
        assert normalizer.gaps_split == 1
        assert normalizer.gaps_filled == 0
        assert not synth[0]

    def test_reject_raises(self):
        normalizer = StreamNormalizer(cadence=1.0, gap_policy="reject")
        normalizer.process([0.0], [0.0])
        with pytest.raises(DataQualityError, match="reject"):
            normalizer.process([5.0], [5.0])

    def test_cadence_inferred_from_first_spacings(self):
        normalizer = StreamNormalizer()  # undeclared
        n = CADENCE_INFER_SAMPLES + 1
        ts = np.arange(n, dtype=np.float64) * 2.0
        normalizer.process(ts, np.zeros(n))
        assert normalizer.cadence == 2.0
        # Now a 3-cadence jump is a gap on the inferred grid.
        _, out_vs, synth = normalizer.process([ts[-1] + 6.0], [3.0])
        assert synth is not None and synth.tolist() == [True, True, False]

    def test_state_round_trip_mid_inference(self):
        normalizer = StreamNormalizer()
        normalizer.process([0.0, 1.0, 2.0], np.zeros(3))  # 2 spacing samples
        restored = StreamNormalizer.from_state(normalizer.state_dict())
        assert restored.cadence is None
        n = CADENCE_INFER_SAMPLES
        ts = 3.0 + np.arange(n, dtype=np.float64)
        restored.process(ts, np.zeros(n))
        assert restored.cadence == 1.0

    def test_clear_restores_declared_cadence(self):
        normalizer = StreamNormalizer(cadence=2.0)
        normalizer.process([0.0, 2.0], [0.0, 0.0])
        normalizer.clear()
        assert normalizer.cadence == 2.0
        assert normalizer.gaps_filled == 0


class TestVectorizedPathsMatchScalarReference:
    """Pin the bulk-sliced stage paths to the per-point semantics.

    Both stages now move maximal clean runs with array slicing and fall back
    to scalar handling only at actual reorders/gaps; these fuzz rounds pin
    the released points, the synthesized fills, every counter, and the
    carried state bit-identically to a per-point reference walk.
    """

    @staticmethod
    def _reference_reorder(buffer, ts, vs):
        """Per-point ReorderBuffer semantics on copied state."""
        from bisect import bisect_right

        times = list(buffer._times)
        values = list(buffer._values)
        last_released = buffer._last_released
        accepted = dropped = 0
        out_ts, out_vs = [], []
        for t, v in zip(ts.tolist(), vs.tolist()):
            if t < last_released:
                dropped += 1
                continue
            if times and t < times[-1]:
                accepted += 1
                at = bisect_right(times, t)
                times.insert(at, t)
                values.insert(at, v)
            else:
                times.append(t)
                values.append(v)
            if len(times) > buffer.watermark:
                last_released = times.pop(0)
                out_ts.append(last_released)
                out_vs.append(values.pop(0))
        return out_ts, out_vs, times, values, last_released, accepted, dropped

    def test_reorder_fuzz_bit_identical(self):
        rng = np.random.default_rng(42)
        for _trial in range(60):
            buffer = ReorderBuffer(int(rng.integers(1, 16)))
            for batch_index in range(4):
                n = int(rng.integers(0, 40))
                ts = np.cumsum(rng.integers(0, 3, n)).astype(np.float64) + batch_index * 30
                if n > 4 and rng.random() < 0.6:
                    for _swap in range(int(rng.integers(1, 4))):
                        i, j = rng.integers(0, n, 2)
                        ts[i], ts[j] = ts[j], ts[i]
                vs = rng.standard_normal(n)
                expected = self._reference_reorder(buffer, ts, vs)
                base_accepted, base_dropped = buffer.late_accepted, buffer.late_dropped
                out_ts, out_vs = buffer.push_many(ts, vs)
                exp_ts, exp_vs, times, values, last, accepted, dropped = expected
                assert out_ts.tolist() == exp_ts
                assert out_vs.tolist() == exp_vs
                assert buffer._times == times
                assert buffer._values == values
                assert buffer._last_released == last
                assert buffer.late_accepted == base_accepted + accepted
                assert buffer.late_dropped == base_dropped + dropped

    def test_normalizer_fuzz_matches_per_point_walk(self):
        rng = np.random.default_rng(43)
        for _trial in range(60):
            policy = ("interpolate", "ffill", "split")[int(rng.integers(0, 3))]
            normalizer = StreamNormalizer(cadence=1.0, gap_policy=policy)
            reference = StreamNormalizer(cadence=1.0, gap_policy=policy)
            for batch_index in range(4):
                n = int(rng.integers(0, 40))
                steps = rng.choice([1.0, 1.0, 1.0, 0.5, 4.0, 11.0], n)
                ts = np.cumsum(steps) + batch_index * 500
                vs = rng.standard_normal(n)
                if n and rng.random() < 0.3:
                    vs[rng.integers(0, n, max(1, n // 6))] = np.nan
                out = normalizer.process(ts, vs)
                # Per-point reference walk: one point per process() call can
                # never take a bulk slice, so it pins the scalar semantics.
                ref_ts, ref_vs, ref_syn = [], [], []
                for t, v in zip(ts.tolist(), vs.tolist()):
                    part = reference.process([t], [v])
                    ref_ts.extend(part[0].tolist())
                    ref_vs.extend(part[1].tolist())
                    syn = part[2]
                    ref_syn.extend(
                        [False] * part[0].size if syn is None else syn.tolist()
                    )
                assert out[0].tolist() == ref_ts
                assert out[1].tolist() == ref_vs
                out_syn = (
                    [False] * out[0].size if out[2] is None else out[2].tolist()
                )
                assert out_syn == ref_syn
                assert normalizer.nan_dropped == reference.nan_dropped
                assert normalizer.gaps_filled == reference.gaps_filled
                assert normalizer.gaps_split == reference.gaps_split
                assert normalizer._last_t == reference._last_t
                assert normalizer._last_v == reference._last_v
