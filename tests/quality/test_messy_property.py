"""Property tests: messy streams against the quality stage's guarantees.

The generator produces arbitrary monitoring-shaped streams — random lengths,
batch splits, NaN holes, outages, and block shuffles bounded by the
watermark — and the properties pin the tentpole laws:

* shuffled-within-watermark delivery is **bit-identical** to in-order
  delivery, and nothing is dropped;
* points displaced beyond the watermark are counted and dropped, never
  silently mis-bucketed (the emitted frame count can only shrink);
* the quality ledger (gap fills, NaN drops, late counters) survives a
  schema-4 checkpoint/restore round trip mid-stream.

These run under the ``ci`` profile on every PR (derandomized, blob-printing)
and under ``nightly`` with 10x examples; see ``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import StreamingASAP
from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub


def make_operator(watermark, normalize=True):
    return StreamingASAP(
        pane_size=2,
        resolution=60,
        refresh_interval=5,
        incremental=True,
        normalize=normalize,
        cadence=1.0 if normalize else None,
        watermark=watermark,
    )


def drive(operator, ts, vs, cuts):
    frames = []
    for lo, hi in zip([0, *cuts], [*cuts, ts.size]):
        frames.extend(operator.push_many(ts[lo:hi], vs[lo:hi]))
    frames.extend(operator.flush())
    return frames


def assert_bit_identical(ours, theirs):
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.window == b.window
        assert a.series.values.tobytes() == b.series.values.tobytes()


@st.composite
def messy_streams(draw):
    """(ts, vs, shuffled order, watermark, batch cut points)."""
    length = draw(st.integers(min_value=50, max_value=600))
    watermark = draw(st.integers(min_value=2, max_value=32))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    ts = np.arange(length, dtype=np.float64)
    vs = rng.normal(size=length)
    if draw(st.booleans()):  # NaN holes
        at = draw(st.integers(min_value=0, max_value=length - 5))
        vs[at : at + draw(st.integers(min_value=1, max_value=4))] = np.nan
    # Block shuffle with block <= watermark: displacement stays inside it.
    block = draw(st.integers(min_value=1, max_value=watermark))
    order = np.arange(length)
    for start in range(0, length, block):
        stop = min(start + block, length)
        order[start:stop] = start + rng.permutation(stop - start)
    n_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=length - 1),
                min_size=n_cuts,
                max_size=n_cuts,
            )
        )
    )
    return ts, vs, order, watermark, cuts


@given(stream=messy_streams())
def test_shuffle_within_watermark_is_bit_identical(stream):
    ts, vs, order, watermark, cuts = stream
    in_order = drive(make_operator(watermark), ts, vs, cuts)
    shuffled_op = make_operator(watermark)
    shuffled = drive(shuffled_op, ts[order], vs[order], cuts)
    assert_bit_identical(shuffled, in_order)
    assert shuffled_op.late_dropped == 0


@given(stream=messy_streams(), displace=st.integers(min_value=1, max_value=50))
@settings(max_examples=25)
def test_beyond_watermark_counted_and_dropped(stream, displace):
    ts, vs, _, watermark, cuts = stream
    # Move one early point to the very end: it arrives `displace` past the
    # watermark once enough newer points have released.
    finite = np.flatnonzero(np.isfinite(vs[: ts.size - watermark - displace - 2]))
    if finite.size == 0:
        return
    victim = int(finite[0])
    order = np.concatenate((np.arange(0, victim), np.arange(victim + 1, ts.size), [victim]))
    operator = make_operator(watermark)
    drive(operator, ts[order], vs[order], cuts)
    assert operator.late_dropped == 1
    # The drop never mis-buckets: total points ingested is everything else.
    clean = make_operator(watermark)
    drive(clean, np.delete(ts, victim), np.delete(vs, victim), [])
    assert operator.points_ingested == clean.points_ingested


@given(stream=messy_streams(), split=st.floats(min_value=0.2, max_value=0.8))
@settings(max_examples=25)
def test_ledger_survives_checkpoint_round_trip(stream, split):
    ts, vs, order, watermark, _ = stream
    hub = StreamHub(
        default_config=StreamConfig(
            pane_size=2,
            resolution=60,
            refresh_interval=5,
            normalize=True,
            cadence=1.0,
            watermark=watermark,
        )
    )
    sid = hub.create_stream()
    half = int(ts.size * split)
    before = list(hub.ingest(sid, ts[order][:half], vs[order][:half]))
    revived = restore(checkpoint(hub))
    resumed = list(revived.ingest(sid, ts[order][half:], vs[order][half:]))
    straight = list(hub.ingest(sid, ts[order][half:], vs[order][half:]))
    assert_bit_identical(before + resumed, before + straight)
    for field in ("gaps_filled", "nan_dropped", "late_accepted", "late_dropped"):
        assert getattr(revived.snapshot(sid), field) == getattr(hub.snapshot(sid), field)
