"""Property-based tests: pyramid contents == direct preaggregation, always.

Random series / chunking / ratio / level combinations, driven by hypothesis
(falling back to its seeded database-less mode in CI): every rollup level's
retained buckets must equal the direct ``bucket_means`` of the same base
span bit for bit, every view must match direct bucketing of its covered span
to the repo's 1e-9 discipline (bit for bit when no residual re-bucket is
involved), and ``window_in_original_units`` must round-trip.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preaggregation import bucket_means
from repro.pyramid import Pyramid, ViewSpec

# Level ratio menus the strategy can pick from (always augmented with 1).
_RATIO_MENUS = [(1, 4, 16, 64), (1, 2, 8, 32), (1, 3, 9, 27), (1, 5, 25), (1, 7)]


@st.composite
def pyramid_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n = draw(st.integers(min_value=1, max_value=4000))
    capacity = draw(st.integers(min_value=8, max_value=1024))
    menu = draw(st.sampled_from(_RATIO_MENUS))
    resolution = draw(st.integers(min_value=1, max_value=600))
    include_partial = draw(st.booleans())
    offset = draw(st.sampled_from([0.0, 1.0, 1e6]))
    return seed, n, capacity, menu, resolution, include_partial, offset


@settings(max_examples=60, deadline=None)
@given(pyramid_scenarios())
def test_pyramid_matches_direct_preaggregation(scenario):
    seed, n, capacity, menu, resolution, include_partial, offset = scenario
    rng = np.random.default_rng(seed)
    values = offset + rng.normal(size=n)
    full_history = values.copy()

    pyramid = Pyramid(capacity=capacity, level_ratios=menu)
    i = 0
    while i < n:
        step = int(rng.integers(1, 1 + min(257, n - i + 1)))
        pyramid.extend(values[i : i + step])
        i += step

    # 1. The base level mirrors the trailing window exactly.
    window = full_history[max(n - capacity, 0) :]
    assert np.array_equal(pyramid.base_values(), window)

    # 2. Every level's retained buckets equal direct bucketing of the
    #    matching global span, bit for bit.
    for ratio in pyramid.level_ratios:
        if ratio == 1:
            continue
        level = pyramid.level(ratio)
        if len(level) == 0:
            continue
        first = level.first_retained
        expected = bucket_means(full_history[first * ratio :], ratio)[: len(level)]
        assert np.array_equal(level.values(), expected)

    # 3. The internal drift guard agrees.
    pyramid.verify_levels()

    # 4. Views match direct bucketing of the span they claim to cover.
    if pyramid.window_length == 0:
        return
    view = pyramid.view(ViewSpec(resolution, include_partial=include_partial))
    span = full_history[view.base_start : view.base_end]
    direct = bucket_means(span, view.ratio, include_partial=include_partial)
    assert view.values.size == direct.size
    scale = max(1.0, float(np.abs(direct).max()) if direct.size else 1.0)
    assert np.abs(view.values - direct).max() <= 1e-9 * scale
    if view.residual == 1 or view.level_ratio == 1:
        assert np.array_equal(view.values, direct)

    # 5. window_in_original_units round-trips for every expressible window.
    for window_size in (1, 2, max(view.values.size // 10, 1)):
        original = view.window_in_original_units(window_size)
        assert original == window_size * view.ratio
        assert original // view.ratio == window_size
