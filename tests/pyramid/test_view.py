"""Tests for view resolution: ViewSpec -> level + residual re-bucket."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import MIN_OVERSAMPLING, bucket_means, preaggregate
from repro.pyramid import Pyramid, ViewSpec


def direct_span(pyramid: Pyramid, view) -> np.ndarray:
    """The base values the view claims to cover."""
    base = pyramid.base_values()
    start = view.base_start - pyramid.window_start
    return base[start : view.base_end - pyramid.window_start]


@pytest.fixture(scope="module")
def pyramid():
    rng = np.random.default_rng(42)
    pyramid = Pyramid(capacity=2000)
    values = np.sin(np.arange(7000) / 30.0) + 0.2 * rng.normal(size=7000)
    i = 0
    while i < values.size:
        step = int(rng.integers(1, 140))
        pyramid.extend(values[i : i + step])
        i += step
    return pyramid


class TestViewSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ViewSpec(resolution=0)

    def test_int_shorthand(self, pyramid):
        assert np.array_equal(pyramid.view(100).values, pyramid.view(ViewSpec(100)).values)


class TestResolveLevel:
    def test_exact_level_hit(self, pyramid):
        assert pyramid.resolve_level(16) == (16, 1)
        assert pyramid.resolve_level(64) == (64, 1)

    def test_residual_rebucket(self, pyramid):
        assert pyramid.resolve_level(32) == (16, 2)
        assert pyramid.resolve_level(12) == (4, 3)

    def test_falls_back_to_base_when_nothing_divides(self, pyramid):
        assert pyramid.resolve_level(10) == (1, 10)
        assert pyramid.resolve_level(7) == (1, 7)

    def test_ratio_matches_direct_pipeline_rule(self, pyramid):
        n = pyramid.window_length
        for resolution in (10, 100, 999, n // 2, n, 2 * n):
            expected = preaggregate(np.zeros(n), resolution).ratio
            assert pyramid.view_ratio(resolution) == expected


class TestViewEquivalence:
    @pytest.mark.parametrize("resolution", [25, 31, 50, 100, 125, 333, 500, 999])
    def test_values_match_direct_bucketing(self, pyramid, resolution):
        view = pyramid.view(resolution)
        direct = bucket_means(direct_span(pyramid, view), view.ratio)
        assert view.values.size == direct.size
        scale = max(1.0, float(np.abs(direct).max()))
        assert np.abs(view.values - direct).max() <= 1e-9 * scale
        if view.level_ratio == 1 or view.residual == 1:
            assert np.array_equal(view.values, direct)

    @pytest.mark.parametrize("resolution", [25, 100, 333])
    def test_include_partial_matches_direct(self, pyramid, resolution):
        view = pyramid.view(ViewSpec(resolution, include_partial=True))
        direct = bucket_means(
            direct_span(pyramid, view), view.ratio, include_partial=True
        )
        assert view.values.size == direct.size
        assert np.allclose(view.values, direct, rtol=0, atol=1e-9)
        if view.partial_points:
            # The partial bucket is always recomputed from raw base values.
            assert view.values[-1] == direct[-1]

    def test_below_oversampling_serves_raw_window(self, pyramid):
        n = pyramid.window_length
        view = pyramid.view(n)  # window < 2 * resolution
        assert view.ratio == 1 and not view.applied
        assert np.array_equal(view.values, pyramid.base_values())

    def test_bucket_count_matches_preaggregate_up_to_alignment(self, pyramid):
        # The pyramid may trim < level_ratio head values for bucket alignment,
        # so its bucket count is within one of the direct path's.
        for resolution in (50, 100, 250):
            view = pyramid.view(resolution)
            direct = preaggregate(pyramid.base_values(), resolution)
            assert direct.ratio == view.ratio
            assert abs(int(direct.values.size) - int(view.values.size)) <= 1

    def test_view_metadata(self, pyramid):
        view = pyramid.view(100)
        assert view.base_length == view.values.size * view.ratio
        assert view.base_start % view.level_ratio == 0
        assert view.timestamps.size == view.values.size
        # timestamps are the first base timestamp of each bucket
        base_ts = pyramid.base_timestamps()
        start = view.base_start - pyramid.window_start
        assert view.timestamps[0] == base_ts[start]

    def test_window_round_trip(self, pyramid):
        view = pyramid.view(100)
        for window in (1, 2, 5, view.values.size // 10):
            original = view.window_in_original_units(window)
            assert original == window * view.ratio
            assert original // view.ratio == window

    def test_oversampling_threshold_matches_direct(self):
        # Exactly at the threshold the ratio engages, below it it does not —
        # the same MIN_OVERSAMPLING rule as preaggregate.
        pyramid = Pyramid(capacity=160)
        pyramid.extend(np.arange(160.0))
        assert pyramid.view(80).ratio == MIN_OVERSAMPLING
        pyramid_small = Pyramid(capacity=159)
        pyramid_small.extend(np.arange(159.0))
        assert pyramid_small.view(80).ratio == 1
