"""Tests for the multi-resolution rollup store (repro.pyramid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import bucket_means
from repro.pyramid import (
    DEFAULT_LEVEL_RATIOS,
    Pyramid,
    PyramidDriftError,
    PyramidError,
    PyramidLevel,
    ViewSpec,
)


def feed_chunked(pyramid: Pyramid, values, seed: int = 0, max_chunk: int = 97) -> None:
    """Feed values in randomized chunk sizes (the incremental path)."""
    rng = np.random.default_rng(seed)
    i = 0
    while i < len(values):
        step = int(rng.integers(1, max_chunk))
        pyramid.extend(values[i : i + step])
        i += step


class TestLevelMaintenance:
    def test_level_means_match_direct_bucketing_bit_for_bit(self, rng):
        values = rng.normal(size=4096)
        pyramid = Pyramid(capacity=4096)
        feed_chunked(pyramid, values, seed=1)
        for ratio in DEFAULT_LEVEL_RATIOS[1:]:
            level = pyramid.level(ratio)
            expected = bucket_means(values, ratio)
            stored = level.values()
            assert np.array_equal(stored, expected[len(expected) - len(stored) :])

    def test_carry_over_across_chunk_boundaries(self, rng):
        # Chunks of 1 force every bucket to straddle extend calls.
        values = rng.normal(size=300)
        pyramid = Pyramid(capacity=300, level_ratios=(1, 7))
        for value in values:
            pyramid.append(value)
        assert np.array_equal(pyramid.level(7).values(), bucket_means(values, 7))
        assert pyramid.level(7).partial_values == 300 % 7

    def test_base_level_mirrors_window(self, rng):
        values = rng.normal(size=1000)
        pyramid = Pyramid(capacity=256)
        feed_chunked(pyramid, values, seed=2)
        assert np.array_equal(pyramid.base_values(), values[-256:])
        assert pyramid.window_start == 1000 - 256
        assert pyramid.total_appended == 1000

    def test_eviction_keeps_alignment(self, rng):
        values = rng.normal(size=10_000)
        pyramid = Pyramid(capacity=512)
        feed_chunked(pyramid, values, seed=3)
        for ratio in (4, 16, 64):
            level = pyramid.level(ratio)
            # Retained bucket b covers values[b*ratio : (b+1)*ratio] globally.
            first = level.first_retained
            expected = bucket_means(values[first * ratio :], ratio)[: len(level)]
            assert np.array_equal(level.values(), expected)

    def test_default_timestamps_are_global_indices(self):
        pyramid = Pyramid(capacity=64, level_ratios=(1, 4))
        pyramid.extend(np.ones(10))
        pyramid.extend(np.ones(10))
        assert np.array_equal(pyramid.base_timestamps(), np.arange(20.0))
        assert np.array_equal(pyramid.level(4).timestamps(), [0.0, 4.0, 8.0, 12.0, 16.0])

    def test_explicit_timestamps(self):
        pyramid = Pyramid(capacity=64, level_ratios=(1, 3))
        pyramid.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
        assert np.array_equal(pyramid.level(3).timestamps(), [10.0, 40.0])
        assert np.array_equal(pyramid.level(3).values(), [2.0, 5.0])

    def test_clear(self, rng):
        pyramid = Pyramid(capacity=64)
        pyramid.extend(rng.normal(size=100))
        pyramid.clear()
        assert pyramid.total_appended == 0
        assert pyramid.window_length == 0
        assert all(stat.retained == 0 for stat in pyramid.stats.levels)

    def test_stats(self, rng):
        pyramid = Pyramid(capacity=100, level_ratios=(1, 10))
        pyramid.extend(rng.normal(size=205))
        stats = pyramid.stats
        assert stats.total_appended == 205
        by_ratio = {level.ratio: level for level in stats.levels}
        assert by_ratio[1].retained == 100
        assert by_ratio[1].evicted == 105
        assert by_ratio[10].completed == 20
        assert by_ratio[10].partial_values == 5
        assert stats.retained_values > 0


class TestValidation:
    def test_capacity_and_ratio_validation(self):
        with pytest.raises(ValueError):
            Pyramid(capacity=0)
        with pytest.raises(ValueError):
            Pyramid(capacity=10, level_ratios=(0, 4))
        with pytest.raises(ValueError):
            PyramidLevel(ratio=1, capacity=0)
        with pytest.raises(ValueError):
            PyramidLevel(ratio=0, capacity=4)

    def test_ratio_one_always_present(self):
        pyramid = Pyramid(capacity=16, level_ratios=(4, 16))
        assert pyramid.level_ratios[0] == 1

    def test_mismatched_timestamps_rejected(self):
        pyramid = Pyramid(capacity=16)
        with pytest.raises(ValueError, match="equal lengths"):
            pyramid.extend([1.0, 2.0], [0.0])

    def test_empty_view_rejected(self):
        with pytest.raises(PyramidError, match="empty"):
            Pyramid(capacity=16).view(4)


class TestDriftGuard:
    def test_verify_levels_passes_and_counts(self, rng):
        pyramid = Pyramid(capacity=500)
        feed_chunked(pyramid, rng.normal(size=3000), seed=4)
        assert pyramid.verify_levels() > 0

    def test_verify_levels_detects_injected_drift(self, rng):
        pyramid = Pyramid(capacity=500)
        feed_chunked(pyramid, rng.normal(size=3000), seed=5)
        level = pyramid.level(16)
        level._means.view()[-1] += 1e-6  # simulate a corrupted bucket
        with pytest.raises(PyramidDriftError, match="ratio 16"):
            pyramid.verify_levels()

    def test_rebuild_restores_exactness(self, rng):
        pyramid = Pyramid(capacity=500)
        feed_chunked(pyramid, rng.normal(size=3000), seed=6)
        pyramid.level(16)._means.view()[-1] += 1e-6
        pyramid.rebuild()
        assert pyramid.verify_levels() > 0

    def test_rebuild_is_idempotent_on_exact_state(self, rng):
        pyramid = Pyramid(capacity=400)
        feed_chunked(pyramid, rng.normal(size=2000), seed=7)
        before = {r: pyramid.level(r).values() for r in pyramid.level_ratios}
        views_before = {r: pyramid.view(ViewSpec(25)).values for r in (1,)}
        pyramid.rebuild()
        for ratio in pyramid.level_ratios:
            after = pyramid.level(ratio).values()
            expected = before[ratio][len(before[ratio]) - len(after) :]
            assert np.array_equal(after, expected)
        assert np.array_equal(pyramid.view(ViewSpec(25)).values, views_before[1])
