"""Property-based test: checkpoint/restore never changes a single frame.

Random series, random chunking, random configuration (incremental on/off,
pyramid on/off, pane size, refresh interval, strategy), an interruption at a
random position in the stream — mid-pane and mid-refresh-interval included —
and the restored hub must emit exactly the frames the uninterrupted hub
emits: same count, same windows, bit-identical smoothed values, identical
search moments.  This is the durability tier's contract stated as a law.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub


@st.composite
def checkpoint_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n = draw(st.integers(min_value=200, max_value=2500))
    pane_size = draw(st.integers(min_value=1, max_value=5))
    resolution = draw(st.integers(min_value=16, max_value=256))
    refresh_interval = draw(st.integers(min_value=1, max_value=12))
    incremental = draw(st.booleans())
    pyramid = draw(st.booleans())
    strategy = draw(st.sampled_from(["asap", "binary", "grid10"]))
    offset = draw(st.sampled_from([0.0, 5.0, 1e5]))
    chunk = draw(st.integers(min_value=1, max_value=300))
    split = draw(st.integers(min_value=0, max_value=n))
    return (
        seed, n, pane_size, resolution, refresh_interval,
        incremental, pyramid, strategy, offset, chunk, split,
    )


def drive(hub, ts, values, lo, hi, chunk):
    frames = []
    for start in range(lo, hi, chunk):
        stop = min(start + chunk, hi)
        frames.extend(hub.ingest("s", ts[start:stop], values[start:stop]))
        frames.extend(hub.tick().get("s", []))
    return frames


@settings(max_examples=40, deadline=None)
@given(checkpoint_scenarios())
def test_restored_hub_frames_bit_identical(scenario):
    (
        seed, n, pane_size, resolution, refresh_interval,
        incremental, pyramid, strategy, offset, chunk, split,
    ) = scenario
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = offset + np.sin(2 * np.pi * t / 75) + 0.3 * rng.normal(size=n)
    config = StreamConfig(
        pane_size=pane_size,
        resolution=resolution,
        refresh_interval=refresh_interval,
        incremental=incremental,
        pyramid=pyramid,
        strategy=strategy,
    )

    uninterrupted = StreamHub(default_config=config)
    uninterrupted.create_stream("s")
    reference = drive(uninterrupted, t, values, 0, n, chunk)

    hub = StreamHub(default_config=config)
    hub.create_stream("s")
    frames = drive(hub, t, values, 0, split, chunk)
    restored = restore(checkpoint(hub))
    del hub  # the original is gone; only the checkpoint survives
    frames += drive(restored, t, values, split, n, chunk)

    assert len(frames) == len(reference)
    for a, b in zip(reference, frames):
        assert a.window == b.window
        assert np.array_equal(a.series.values, b.series.values)
        assert np.array_equal(a.series.timestamps, b.series.timestamps)
        assert a.search.roughness == b.search.roughness
        assert a.search.kurtosis == b.search.kurtosis
        assert a.points_ingested == b.points_ingested
