"""Unit tests for the persist tier: codec, session export/import, checkpoint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import RollingWindowState, StreamingASAP
from repro.persist import SCHEMA_VERSION, CheckpointError, checkpoint, restore
from repro.persist import codec
from repro.pyramid import Pyramid
from repro.service import HubError, StreamConfig, StreamHub, UnknownStreamError
from repro.stream.panes import PaneBuffer


def make_wave(n, seed=0, offset=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    return offset + np.sin(2 * np.pi * t / 90) + 0.25 * rng.normal(size=n)


# -- codec ---------------------------------------------------------------------


def test_codec_round_trips_nested_state():
    state = {
        "ints": 7,
        "floats": 0.1 + 0.2,
        "negzero": -0.0,
        "nan": float("nan"),
        "inf": float("inf"),
        "none": None,
        "flag": True,
        "text": "naïve",
        "list": [1, [2.5, None], {"k": "v"}],
        "array": np.arange(5, dtype=np.float64),
        "ints64": np.arange(3, dtype=np.int64),
        "empty": np.empty(0, dtype=np.float64),
    }
    kind, loaded = codec.loads(codec.dumps("unit", state))
    assert kind == "unit"
    assert loaded["ints"] == 7
    assert loaded["floats"] == 0.1 + 0.2  # bit-exact through JSON shortest repr
    assert str(loaded["negzero"]) == "-0.0"
    assert np.isnan(loaded["nan"]) and loaded["inf"] == float("inf")
    assert loaded["none"] is None and loaded["flag"] is True
    assert loaded["text"] == "naïve"
    assert loaded["list"] == [1, [2.5, None], {"k": "v"}]
    assert np.array_equal(loaded["array"], state["array"])
    assert loaded["ints64"].dtype == np.int64
    assert loaded["empty"].size == 0


def test_codec_rejects_unserializable_state():
    with pytest.raises(CheckpointError, match="unserializable type"):
        codec.dumps("unit", {"bad": object()})


def test_codec_rejects_reserved_key():
    with pytest.raises(CheckpointError, match="reserved key"):
        codec.dumps("unit", {"__npz__": 1})


def test_codec_rejects_garbage_payload():
    with pytest.raises(CheckpointError, match="malformed"):
        codec.loads(b"not a checkpoint at all")


def test_codec_rejects_foreign_schema_version(monkeypatch):
    payload = codec.dumps("unit", {"x": 1})
    monkeypatch.setattr(codec, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
    with pytest.raises(CheckpointError, match="schema version"):
        codec.loads(payload)


def test_codec_dump_load_path(tmp_path):
    path = codec.dump("unit", {"a": np.ones(3)}, tmp_path / "state.npz")
    kind, state = codec.load(path)
    assert kind == "unit"
    assert np.array_equal(state["a"], np.ones(3))


# -- component state round trips ----------------------------------------------


@pytest.mark.parametrize("keep_sketches", [True, False])
def test_pane_buffer_state_round_trip(keep_sketches):
    buffer = PaneBuffer(pane_size=4, capacity=16, journal=True, keep_sketches=keep_sketches)
    values = make_wave(103)
    ts = np.arange(103, dtype=np.float64)
    buffer.extend(ts[:50], values[:50])
    buffer.drain_completed()  # leave a partially drained journal behind
    buffer.extend(ts[50:103], values[50:103])  # open pane: 103 % 4 = 3 points

    clone = PaneBuffer.from_state(buffer.state_dict())
    assert np.array_equal(clone.aggregated_values(), buffer.aggregated_values())
    assert np.array_equal(clone.aggregated_timestamps(), buffer.aggregated_timestamps())
    assert clone.total_points == buffer.total_points
    assert clone.evicted_panes == buffer.evicted_panes
    assert clone.open_pane_points == buffer.open_pane_points == 3
    if keep_sketches:
        a, b = buffer.window_sketch(), clone.window_sketch()
        assert (a.count, a.mean, a.m2, a.m3, a.m4) == (b.count, b.mean, b.m2, b.m3, b.m4)

    # Identical behavior from here on: same completions and journal entries.
    more = make_wave(37, seed=5)
    more_ts = ts[-1] + 1 + np.arange(37, dtype=np.float64)
    assert buffer.extend(more_ts, more) == clone.extend(more_ts, more)
    a_means, a_times = buffer.drain_completed()
    b_means, b_times = clone.drain_completed()
    assert np.array_equal(a_means, b_means) and np.array_equal(a_times, b_times)
    assert np.array_equal(clone.aggregated_values(), buffer.aggregated_values())


def test_rolling_window_state_round_trip():
    rolling = RollingWindowState(capacity=64, lag_budget=20)
    rolling.extend(make_wave(200, offset=3.0))
    clone = RollingWindowState.from_state(rolling.state_dict())
    assert np.array_equal(clone.values(), rolling.values())
    assert clone.kurtosis() == rolling.kurtosis()
    assert clone.roughness() == rolling.roughness()
    assert np.array_equal(clone.correlations(20), rolling.correlations(20))
    # The add/subtract chains continue from identical floats.
    extra = make_wave(90, seed=9, offset=3.0)
    rolling.extend(extra)
    clone.extend(extra)
    assert clone.kurtosis() == rolling.kurtosis()
    assert np.array_equal(clone.correlations(20), rolling.correlations(20))


def test_pyramid_state_round_trip():
    pyramid = Pyramid(capacity=128, level_ratios=(1, 4, 16))
    pyramid.extend(make_wave(500))
    clone = Pyramid.from_state(pyramid.state_dict())
    assert clone.total_appended == pyramid.total_appended
    for ratio in pyramid.level_ratios:
        assert np.array_equal(clone.level(ratio).values(), pyramid.level(ratio).values())
        assert clone.level(ratio).partial_values == pyramid.level(ratio).partial_values
    extra = make_wave(77, seed=3)
    pyramid.extend(extra)
    clone.extend(extra)
    clone.verify_levels()
    for ratio in pyramid.level_ratios:
        assert np.array_equal(clone.level(ratio).values(), pyramid.level(ratio).values())
    view_a, view_b = pyramid.view(40), clone.view(40)
    assert np.array_equal(view_a.values, view_b.values)


@pytest.mark.parametrize("incremental", [False, True])
@pytest.mark.parametrize("pyramid", [False, True])
def test_streaming_operator_resumes_bit_identically(incremental, pyramid):
    values = make_wave(3000, seed=11)
    ts = np.arange(3000, dtype=np.float64)

    def build():
        return StreamingASAP(
            pane_size=3,
            resolution=256,
            refresh_interval=7,
            incremental=incremental,
            pyramid=pyramid,
        )

    baseline = build()
    reference = list(baseline.push_many(ts, values))

    interrupted = build()
    split = 1357  # mid-pane, mid-refresh-interval
    frames = list(interrupted.push_many(ts[:split], values[:split]))
    clone = StreamingASAP.from_state(interrupted.state_dict())
    assert clone.points_ingested == interrupted.points_ingested
    frames += list(clone.push_many(ts[split:], values[split:]))

    assert len(frames) == len(reference)
    for a, b in zip(reference, frames):
        assert a.window == b.window
        assert np.array_equal(a.series.values, b.series.values)
        assert a.search.roughness == b.search.roughness
        assert a.search.kurtosis == b.search.kurtosis


# -- hub session export/import -------------------------------------------------


def hub_with_stream(**config_overrides):
    hub = StreamHub(default_config=StreamConfig(pane_size=2, resolution=64, refresh_interval=5))
    sid = hub.create_stream("s", **config_overrides)
    values = make_wave(600)
    hub.ingest(sid, np.arange(600, dtype=np.float64), values)
    hub.tick()
    return hub, sid


def test_export_import_moves_session_between_hubs():
    hub, sid = hub_with_stream()
    other = StreamHub()
    state = hub.export_session(sid, remove=True)
    assert sid not in hub
    assert hub.stats.sessions_exported == 1
    assert other.import_session(state) == sid
    assert other.stats.sessions_imported == 1
    # The moved session keeps serving: same window after the same new data.
    more = make_wave(120, seed=2)
    ts = 600 + np.arange(120, dtype=np.float64)
    other.ingest(sid, ts, more)
    frames = other.tick().get(sid, [])
    assert frames, "imported session should refresh on schedule"


def test_export_without_remove_keeps_serving():
    hub, sid = hub_with_stream()
    state = hub.export_session(sid)
    assert sid in hub
    assert hub.stats.sessions_exported == 0
    assert state["stream_id"] == sid


def test_import_rejects_duplicate_and_over_budget():
    hub, sid = hub_with_stream()
    state = hub.export_session(sid)
    with pytest.raises(HubError, match="already exists"):
        hub.import_session(state)
    tiny = StreamHub(max_panes_per_session=8)
    with pytest.raises(HubError, match="max_panes_per_session"):
        tiny.import_session(state)


def test_import_under_rename():
    hub, sid = hub_with_stream()
    state = hub.export_session(sid)
    assert hub.import_session(state, stream_id="renamed") == "renamed"
    assert "renamed" in hub


def test_export_unknown_stream():
    hub, _sid = hub_with_stream()
    with pytest.raises(UnknownStreamError):
        hub.export_session("ghost")
    with pytest.raises(UnknownStreamError):
        hub.export_session("ghost", remove=True)


# -- whole-hub checkpoint/restore ----------------------------------------------


def test_checkpoint_restore_round_trip_bytes_and_path(tmp_path):
    hub, sid = hub_with_stream()
    blob = checkpoint(hub)
    assert isinstance(blob, bytes)
    path = checkpoint(hub, tmp_path / "hub.npz")
    assert path.exists()

    for source in (blob, path):
        restored = restore(source)
        assert isinstance(restored, StreamHub)
        assert restored.stream_ids() == hub.stream_ids()
        assert restored.snapshot(sid).panes == hub.snapshot(sid).panes
        assert restored.stats.points_ingested == hub.stats.points_ingested


def test_restored_hub_emits_bit_identical_frames():
    values = make_wave(2000, seed=4)
    ts = np.arange(2000, dtype=np.float64)
    config = StreamConfig(pane_size=4, resolution=128, refresh_interval=6)

    def drive(hub, lo, hi):
        collected = []
        for start in range(lo, hi, 90):
            stop = min(start + 90, hi)
            collected.extend(hub.ingest("s", ts[start:stop], values[start:stop]))
            collected.extend(hub.tick().get("s", []))
        return collected

    uninterrupted = StreamHub(default_config=config)
    uninterrupted.create_stream("s")
    reference = drive(uninterrupted, 0, 2000)

    hub = StreamHub(default_config=config)
    hub.create_stream("s")
    frames = drive(hub, 0, 1170)
    restored = restore(checkpoint(hub))
    frames += drive(restored, 1170, 2000)

    assert len(frames) == len(reference)
    for a, b in zip(reference, frames):
        assert a.window == b.window
        assert np.array_equal(a.series.values, b.series.values)


def test_restored_hub_preserves_auto_id_sequence():
    hub = StreamHub()
    first = hub.create_stream()
    restored = restore(checkpoint(hub))
    second = restored.create_stream()
    assert second != first


def test_restored_hub_serves_pyramid_views():
    hub, sid = hub_with_stream()
    restored = restore(checkpoint(hub))
    original = hub.snapshot(sid, resolution=16)
    again = restored.snapshot(sid, resolution=16)
    assert original.window == again.window
    assert np.array_equal(original.series.values, again.series.values)


def test_checkpoint_requires_protocol():
    with pytest.raises(CheckpointError, match="not checkpointable"):
        checkpoint(object())


def test_restore_rejects_unknown_kind():
    payload = codec.dumps("mystery", {"x": 1})
    with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
        restore(payload)


def test_restore_streamhub_rejects_options():
    hub, _sid = hub_with_stream()
    with pytest.raises(CheckpointError, match="no restore options"):
        restore(checkpoint(hub), backend="inprocess")
