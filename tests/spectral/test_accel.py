"""Tests for the optional compiled kernel backend (``repro.spectral.accel``).

These tests run in BOTH worlds:

* without numba installed, ``@njit`` is a no-op and the kernels execute as
  plain Python — slow, so sizes here are small, but numerically identical in
  structure (same sequential accumulation order);
* with numba installed (CI's dedicated leg runs this module under
  ``ASAP_KERNEL=numba``), the same functions run compiled.

Either way the contract is the same: agreement with the numpy kernels to the
repo's 1e-9 discipline, identical window selection, and graceful fallback of
the ``EvaluationCache`` backend when numba is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.smoothing import EvaluationCache
from repro.errors import SpecError
from repro.spectral import accel
from repro.spectral.convolution import (
    cross_product_sums,
    sma_grid_moments,
    sma_window_moments,
)

RTOL = 1e-9


def relerr(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.max(np.abs(a - b) / np.maximum(1.0, np.abs(b)))


class TestMomentKernels:
    def test_single_window_agrees_with_numpy(self, rng):
        values = rng.normal(size=200)
        for window in (1, 2, 17, 199, 200):
            rough_a, kurt_a = accel.sma_window_moments_numba(values, window)
            rough_n, kurt_n = sma_window_moments(values, window)
            assert relerr(rough_a, rough_n) < RTOL
            assert relerr(kurt_a, kurt_n) < RTOL

    def test_grid_agrees_with_numpy_1d(self, rng):
        values = rng.normal(size=150)
        windows = [1, 2, 5, 12, 60, 150]
        rough_a, kurt_a = accel.sma_grid_moments_numba(values, windows)
        rough_n, kurt_n = sma_grid_moments(values, windows)
        assert rough_a.shape == rough_n.shape == (len(windows),)
        assert relerr(rough_a, rough_n) < RTOL
        assert relerr(kurt_a, kurt_n) < RTOL

    def test_grid_agrees_with_numpy_2d(self, rng):
        batch = rng.normal(size=(4, 90))
        windows = [2, 9, 30]
        rough_a, kurt_a = accel.sma_grid_moments_numba(batch, windows)
        rough_n, kurt_n = sma_grid_moments(batch, windows)
        assert rough_a.shape == (4, 3)
        assert relerr(rough_a, rough_n) < RTOL
        assert relerr(kurt_a, kurt_n) < RTOL

    def test_single_routes_through_grid_kernel(self, rng):
        # The single-window wrapper must share one code path with the stacked
        # grid call bit for bit — the warm-started search depends on it.
        values = rng.normal(size=80)
        for window in (1, 3, 41, 80):
            rough_s, kurt_s = accel.sma_window_moments_numba(values, window)
            rough_g, kurt_g = accel.sma_grid_moments_numba(values, [window])
            assert rough_s == rough_g[0] and kurt_s == kurt_g[0]

    def test_cross_product_sums_agree(self, rng):
        values = rng.normal(size=128)
        out_a = accel.cross_product_sums_numba(values, 32)
        out_n = cross_product_sums(values, 32)
        assert relerr(out_a, out_n) < RTOL

    def test_input_validation_matches_numpy_kernels(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            accel.sma_window_moments_numba(rng.normal(size=(2, 5)), 2)
        with pytest.raises(ValueError, match="1-D"):
            accel.cross_product_sums_numba(rng.normal(size=(2, 5)), 1)
        with pytest.raises(ValueError, match="max_lag"):
            accel.cross_product_sums_numba(rng.normal(size=10), 10)
        with pytest.raises(Exception):
            accel.sma_grid_moments_numba(rng.normal(size=10), [11])


class TestSelectionEquality:
    def test_numba_cache_selects_same_window(self, rng):
        # The decision that matters: a search over the numba backend must pick
        # the same window as the numpy grid backend.
        from repro.core.search import run_strategy

        t = np.arange(400, dtype=np.float64)
        values = np.sin(2 * np.pi * t / 40) + 0.3 * rng.normal(size=400)
        for strategy in ("asap", "binary", "grid10"):
            numba_result = run_strategy(
                strategy, values, None, cache=EvaluationCache(values, kernel="numba")
            )
            grid_result = run_strategy(
                strategy, values, None, cache=EvaluationCache(values, kernel="grid")
            )
            assert numba_result.window == grid_result.window, strategy


class TestBackendResolution:
    def test_cache_accepts_numba_kernel(self, rng):
        cache = EvaluationCache(rng.normal(size=50), kernel="numba")
        assert cache.kernel == "numba"
        # The effective backend depends on whether numba is importable.
        expected = "numba" if accel.HAVE_NUMBA else "grid"
        assert cache.backend == expected

    def test_cache_rejects_unknown_kernel(self, rng):
        with pytest.raises(SpecError, match="kernel"):
            EvaluationCache(rng.normal(size=50), kernel="cuda")

    def test_env_variable_selects_default_kernel(self, rng, monkeypatch):
        from repro.spec import AsapSpec, default_kernel

        monkeypatch.setenv("ASAP_KERNEL", "numba")
        assert default_kernel() == "numba"
        assert AsapSpec().kernel == "numba"
        cache = EvaluationCache(rng.normal(size=30))
        assert cache.kernel == "numba"
        monkeypatch.delenv("ASAP_KERNEL")
        assert default_kernel() == "grid"
        assert AsapSpec().kernel == "grid"

    def test_njit_stub_when_numba_missing(self):
        # Whichever world we're in, the decorator must leave the kernels
        # callable as functions.
        assert callable(accel._grid_moments)
        assert callable(accel._window_moments_from_prefix)
        if not accel.HAVE_NUMBA:
            # The stub must support both bare and parametrized usage.
            @accel.njit
            def f(x):
                return x + 1

            @accel.njit(cache=True)
            def g(x):
                return x + 2

            assert f(1) == 2 and g(1) == 3
