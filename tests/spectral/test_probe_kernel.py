"""Tests for the warm-start probe kernel (``sma_probe_moments``).

The contract is stricter than the 1e-9 discipline used elsewhere: the stacked
probe kernel must be **bit-identical** to ``sma_window_moments`` applied one
window at a time, because the streaming operator's warm-started search seeds
its evaluation cache from prefetched probes and the search must make exactly
the decisions a cold search would make.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.convolution import sma_probe_moments, sma_window_moments


def bits(x) -> bytes:
    """Raw float64 bytes — an equality that distinguishes nothing less than
    bit patterns (and treats identical NaNs as equal, unlike ``==``)."""
    return np.asarray(x, dtype=np.float64).tobytes()


def assert_probe_matches_singles(values, windows):
    rough, kurt = sma_probe_moments(values, windows)
    assert rough.shape == kurt.shape == (len(windows),)
    for i, window in enumerate(windows):
        rough_s, kurt_s = sma_window_moments(values, window)
        assert bits(rough_s) == bits(rough[i]), f"roughness differs at window {window}"
        assert bits(kurt_s) == bits(kurt[i]), f"kurtosis differs at window {window}"


class TestBitIdentity:
    def test_random_series_full_window_sweep(self, rng):
        values = rng.normal(size=257)
        windows = list(range(1, 258))
        assert_probe_matches_singles(values, windows)

    def test_edge_windows(self, rng):
        values = rng.normal(size=64)
        assert_probe_matches_singles(values, [1, 2, 3, 62, 63, 64])

    def test_window_one_identity_bypass(self, rng):
        # Window 1 short-circuits the prefix arithmetic in the scalar kernel;
        # the stacked kernel must reproduce that bypass, not approximate it.
        values = rng.normal(size=50) * 1e6 + 3.7
        assert_probe_matches_singles(values, [1])

    def test_pathological_series(self):
        for values in (
            np.zeros(40),
            np.full(40, 123.456),
            np.arange(40, dtype=np.float64),
            np.array([1.0]),
            np.array([2.0, -2.0]),
        ):
            n = values.size
            windows = sorted({1, 2, n - 1, n} & set(range(1, n + 1)))
            assert_probe_matches_singles(values, windows)

    def test_workspace_reuse_is_invisible(self, rng):
        # A poisoned workspace must not leak into results: every cell the
        # reductions read is rewritten first.
        values = rng.normal(size=120)
        windows = [2, 7, 30, 119]
        fresh = sma_probe_moments(values, windows)
        poisoned = np.full((2, 8, 120), np.nan)
        reused = sma_probe_moments(values, windows, workspace=poisoned)
        assert bits(fresh[0]) == bits(reused[0])
        assert bits(fresh[1]) == bits(reused[1])
        # And back-to-back calls through the same workspace stay identical.
        again = sma_probe_moments(values, windows, workspace=poisoned)
        assert bits(fresh[0]) == bits(again[0])
        assert bits(fresh[1]) == bits(again[1])

    def test_undersized_workspace_falls_back(self, rng):
        values = rng.normal(size=60)
        windows = [2, 5, 9]
        small = np.empty((2, 1, 60))  # too few rows
        wrong_n = np.empty((2, 8, 61))  # wrong width
        for workspace in (small, wrong_n):
            rough, kurt = sma_probe_moments(values, windows, workspace=workspace)
            assert_probe_matches_singles(values, windows)
            fresh = sma_probe_moments(values, windows)
            assert bits(fresh[0]) == bits(rough)
            assert bits(fresh[1]) == bits(kurt)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(min_value=2, max_value=160),
        scale=st.sampled_from([1e-6, 1.0, 1e6]),
    )
    def test_property_random_probe_sets(self, seed, n, scale):
        probe_rng = np.random.default_rng(seed)
        values = probe_rng.normal(size=n) * scale
        count = int(probe_rng.integers(1, min(n, 12) + 1))
        windows = sorted(set(probe_rng.integers(1, n + 1, size=count).tolist()))
        assert_probe_matches_singles(values, windows)


class TestValidation:
    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            sma_probe_moments(rng.normal(size=(3, 10)), [2])

    def test_rejects_out_of_range_window(self, rng):
        values = rng.normal(size=10)
        with pytest.raises(Exception):
            sma_probe_moments(values, [11])
        with pytest.raises(Exception):
            sma_probe_moments(values, [0])
