"""Tests for the from-scratch FFT against numpy and a textbook DFT oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.fft import (
    dft_reference,
    fft,
    ifft,
    is_power_of_two,
    next_fast_len,
    rfft_autocorrelation_lengths,
)


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_next_fast_len(self):
        assert next_fast_len(1) == 1
        assert next_fast_len(5) == 8
        assert next_fast_len(16) == 16

    def test_autocorrelation_padding_at_least_2n(self):
        for n in (3, 8, 100):
            assert rfft_autocorrelation_lengths(n) >= 2 * n

    def test_autocorrelation_padding_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            rfft_autocorrelation_lengths(0)


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_power_of_two_real(self, n, rng):
        x = rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [3, 5, 7, 12, 100, 321])
    def test_bluestein_arbitrary_sizes(self, n, rng):
        x = rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-7)

    @pytest.mark.parametrize("n", [4, 9, 30])
    def test_complex_input(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-7)

    @pytest.mark.parametrize("n", [2, 6, 16, 51])
    def test_ifft_matches_numpy(self, n, rng):
        x = rng.normal(size=n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-9)

    def test_numpy_backend_passthrough(self, rng):
        x = rng.normal(size=33)
        np.testing.assert_allclose(fft(x, backend="numpy"), np.fft.fft(x))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            fft([1.0], backend="mystery")
        with pytest.raises(ValueError, match="backend"):
            ifft([1.0], backend="mystery")


class TestOracle:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_against_textbook_dft(self, n, rng):
        x = rng.normal(size=n)
        np.testing.assert_allclose(fft(x), dft_reference(x), atol=1e-9)


class TestProperties:
    def test_empty_input(self):
        assert fft([]).size == 0
        assert ifft([]).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            fft(np.ones((2, 2)))

    def test_dc_component_is_sum(self, rng):
        x = rng.normal(size=17)
        assert fft(x)[0] == pytest.approx(np.sum(x), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**31))
    def test_round_trip(self, n, seed):
        x = np.random.default_rng(seed).normal(size=n)
        np.testing.assert_allclose(np.real(ifft(fft(x))), x, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=48), st.integers(min_value=0, max_value=2**31))
    def test_parseval(self, n, seed):
        x = np.random.default_rng(seed).normal(size=n)
        spectrum = fft(x)
        assert np.sum(np.abs(spectrum) ** 2) / n == pytest.approx(
            np.sum(x * x), rel=1e-9
        )

    def test_linearity(self, rng):
        x = rng.normal(size=24)
        y = rng.normal(size=24)
        np.testing.assert_allclose(
            fft(2.0 * x + 3.0 * y), 2.0 * fft(x) + 3.0 * fft(y), atol=1e-8
        )
