"""Tests for the moving-window kernels (SMA, sliding min/max)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.convolution import (
    cross_product_sums,
    sliding_max,
    sliding_min,
    sma,
    sma_with_slide,
)


def naive_sma(values, window):
    return np.array(
        [np.mean(values[i : i + window]) for i in range(len(values) - window + 1)]
    )


class TestSMA:
    def test_matches_naive(self, rng):
        values = rng.normal(size=200)
        for window in (1, 2, 7, 50, 200):
            np.testing.assert_allclose(sma(values, window), naive_sma(values, window), atol=1e-9)

    def test_output_length(self):
        # Length n - w + 1: every complete window (see DESIGN.md on the
        # paper's off-by-one indexing).
        assert sma(np.arange(10.0), 4).size == 7

    def test_window_one_is_identity(self):
        values = np.array([3.0, 1.0, 2.0])
        out = sma(values, 1)
        assert np.array_equal(out, values)
        out[0] = 99.0  # returned array must be a copy
        assert values[0] == 3.0

    def test_full_window_is_mean(self):
        values = np.array([1.0, 2.0, 3.0])
        assert sma(values, 3) == pytest.approx([2.0])

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            sma([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            sma([1.0, 2.0], 3)
        with pytest.raises(ValueError):
            sma(np.ones((2, 2)), 1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=100),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_output_bounded_by_input_range(self, n, window, seed):
        window = min(window, n)
        values = np.random.default_rng(seed).normal(size=n)
        out = sma(values, window)
        assert np.all(out >= values.min() - 1e-9)
        assert np.all(out <= values.max() + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=8, max_value=120), st.integers(min_value=0, max_value=2**31))
    def test_smoothing_reduces_roughness_of_noise(self, n, seed):
        from repro.timeseries.stats import roughness

        values = np.random.default_rng(seed).normal(size=max(n, 8) * 4)
        window = max(n // 4, 2)
        assert roughness(sma(values, window)) <= roughness(values) + 1e-12


class TestSlide:
    def test_slide_subsamples(self, rng):
        values = rng.normal(size=30)
        dense = sma(values, 5)
        assert np.array_equal(sma_with_slide(values, 5, 3), dense[::3])

    def test_slide_equal_window_gives_disjoint_buckets(self):
        values = np.arange(8.0)
        out = sma_with_slide(values, 2, 2)
        assert np.array_equal(out, [0.5, 2.5, 4.5, 6.5])

    def test_rejects_bad_slide(self):
        with pytest.raises(ValueError):
            sma_with_slide([1.0, 2.0], 1, 0)


class TestSlidingExtrema:
    def naive_extreme(self, values, window, fn):
        return np.array(
            [fn(values[i : i + window]) for i in range(len(values) - window + 1)]
        )

    def test_min_matches_naive(self, rng):
        values = rng.normal(size=150)
        for window in (1, 3, 10, 150):
            np.testing.assert_array_equal(
                sliding_min(values, window), self.naive_extreme(values, window, np.min)
            )

    def test_max_matches_naive(self, rng):
        values = rng.normal(size=150)
        for window in (1, 4, 37):
            np.testing.assert_array_equal(
                sliding_max(values, window), self.naive_extreme(values, window, np.max)
            )

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            sliding_min([1.0], 2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=2**31))
    def test_min_below_max(self, n, seed):
        values = np.random.default_rng(seed).normal(size=n)
        window = max(n // 3, 1)
        assert np.all(sliding_min(values, window) <= sliding_max(values, window))


class TestCrossProductSums:
    def test_matches_direct_dot_products(self):
        rng = np.random.default_rng(17)
        values = rng.normal(size=50)
        sums = cross_product_sums(values, 12)
        assert sums.shape == (13,)
        for k in range(13):
            assert sums[k] == pytest.approx(float(np.dot(values[: 50 - k], values[k:])))

    def test_lag_zero_is_energy(self):
        values = np.array([1.0, -2.0, 3.0])
        assert cross_product_sums(values, 0)[0] == pytest.approx(14.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            cross_product_sums(np.zeros((2, 2)), 1)
        with pytest.raises(ValueError):
            cross_product_sums(np.zeros(4), 4)
        with pytest.raises(ValueError):
            cross_product_sums(np.zeros(4), -1)
