"""Tests for the alternative smoothing filters (Appendix B.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spectral.filters import (
    fft_dominant,
    fft_lowpass,
    filter_registry,
    minmax_filter,
    savitzky_golay,
    savitzky_golay_kernel,
)


class TestSavitzkyGolay:
    def test_kernel_sums_to_one(self):
        for window, degree in ((5, 1), (7, 2), (11, 4)):
            assert savitzky_golay_kernel(window, degree).sum() == pytest.approx(1.0)

    def test_degree_zero_is_uniform(self):
        kernel = savitzky_golay_kernel(5, 0)
        np.testing.assert_allclose(kernel, np.full(5, 0.2), atol=1e-12)

    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_reproduces_polynomials_exactly(self, degree):
        # The defining property: a degree-d SG filter passes degree-d
        # polynomials through unchanged.
        t = np.arange(50.0)
        poly = sum(c * t**k for k, c in enumerate(np.linspace(0.5, 1.5, degree + 1)))
        window = 2 * degree + 3
        smoothed = savitzky_golay(poly, window, degree)
        half = window // 2
        np.testing.assert_allclose(smoothed, poly[half : 50 - half], rtol=1e-8)

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            savitzky_golay_kernel(4, 1)  # even window
        with pytest.raises(ValueError):
            savitzky_golay_kernel(5, 5)  # degree >= window

    def test_output_length_matches_sma_convention(self, rng):
        values = rng.normal(size=40)
        assert savitzky_golay(values, 7, 2).size == 40 - 7 + 1

    def test_window_larger_than_series_rejected(self):
        with pytest.raises(ValueError):
            savitzky_golay(np.ones(5), 7, 1)

    def test_sg1_smooths_noise(self, rng):
        from repro.timeseries.stats import roughness

        values = rng.normal(size=400)
        assert roughness(savitzky_golay(values, 21, 1)) < roughness(values)


class TestFFTFilters:
    def test_lowpass_zero_components_is_mean(self, rng):
        values = rng.normal(size=64)
        out = fft_lowpass(values, 0)
        np.testing.assert_allclose(out, np.full(64, values.mean()), atol=1e-9)

    def test_lowpass_keeps_slow_sine(self):
        t = np.arange(128.0)
        slow = np.sin(2 * np.pi * t / 64)
        fast = 0.5 * np.sin(2 * np.pi * t / 4)
        out = fft_lowpass(slow + fast, 4)
        np.testing.assert_allclose(out, slow, atol=0.05)

    def test_lowpass_full_spectrum_is_identity(self, rng):
        values = rng.normal(size=32)
        np.testing.assert_allclose(fft_lowpass(values, 16), values, atol=1e-9)

    def test_dominant_keeps_strongest_component(self):
        t = np.arange(128.0)
        strong = 3.0 * np.sin(2 * np.pi * t / 8)  # high frequency, high power
        weak = 0.3 * np.sin(2 * np.pi * t / 64)
        out = fft_dominant(strong + weak, 1)
        np.testing.assert_allclose(out, strong + np.mean(strong + weak), atol=0.05)

    def test_dominant_preserves_mean(self, rng):
        values = rng.normal(size=50) + 7.0
        out = fft_dominant(values, 3)
        assert out.mean() == pytest.approx(values.mean(), abs=1e-9)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            fft_lowpass([1.0, 2.0], -1)
        with pytest.raises(ValueError):
            fft_dominant([1.0, 2.0], -1)

    def test_native_backend_agrees_with_numpy(self, rng):
        values = rng.normal(size=48)
        np.testing.assert_allclose(
            fft_lowpass(values, 5, backend="native"),
            fft_lowpass(values, 5, backend="numpy"),
            atol=1e-8,
        )


class TestMinMax:
    def test_output_contains_bucket_extremes(self):
        values = np.array([1.0, 5.0, 2.0, -3.0, 4.0, 0.0])
        out = minmax_filter(values, 3)
        # Buckets [1,5,2] and [-3,4,0] -> (1,5) then (-3,4), time-ordered.
        assert np.array_equal(out, [1.0, 5.0, -3.0, 4.0])

    def test_single_point_buckets(self):
        values = np.array([2.0, 1.0])
        assert np.array_equal(minmax_filter(values, 1), values)

    def test_constant_bucket_emits_once(self):
        out = minmax_filter(np.array([3.0, 3.0, 3.0]), 3)
        assert np.array_equal(out, [3.0])

    def test_is_rougher_than_sma(self, rng):
        from repro.spectral.convolution import sma
        from repro.timeseries.stats import roughness

        values = rng.normal(size=600)
        assert roughness(minmax_filter(values, 10)) > roughness(sma(values, 10))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            minmax_filter([1.0], 0)


class TestRegistry:
    def test_all_figure_b2_filters_present(self):
        registry = filter_registry()
        assert set(registry) == {"FFT-low", "FFT-dominant", "SG1", "SG4", "minmax"}

    def test_candidates_are_valid_parameters(self, rng):
        values = rng.normal(size=120)
        for name, smoother in filter_registry().items():
            candidates = list(smoother.candidates(values.size))
            assert candidates, name
            out = smoother.apply(values, candidates[0])
            assert out.size > 0, name
