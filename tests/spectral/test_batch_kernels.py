"""Tests for the batched/vectorized kernels (sma2d, grids, moment stacks).

The scalar kernels are the oracle: every batched kernel must agree with its
scalar counterpart applied row by row — bit for bit where the implementation
promises it (sma2d, grid rows), and to 1e-9 where it reduces through a
different summation order (grid moments vs the scalar stats).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral.convolution import (
    prefix_moment_stack,
    sma,
    sma2d,
    sma_grid,
    sma_grid_moments,
    windowed_moment_sums,
)
from repro.timeseries.stats import kurtosis, roughness


class TestSMA2D:
    def test_rows_match_scalar_sma_bitwise(self, rng):
        batch = rng.normal(size=(7, 120))
        for window in (1, 2, 11, 119, 120):
            out = sma2d(batch, window)
            assert out.shape == (7, 120 - window + 1)
            for i in range(batch.shape[0]):
                assert np.array_equal(out[i], sma(batch[i], window))

    def test_window_one_returns_copy(self, rng):
        batch = rng.normal(size=(3, 10))
        out = sma2d(batch, 1)
        out[0, 0] = 99.0
        assert batch[0, 0] != 99.0

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError, match="2-D"):
            sma2d(np.ones(5), 2)

    def test_error_message_includes_series_length(self):
        with pytest.raises(ValueError, match="series length 4"):
            sma2d(np.ones((2, 4)), 9)
        with pytest.raises(ValueError, match="series length 4"):
            sma2d(np.ones((2, 4)), 0)


class TestSMAGrid:
    def test_rows_match_scalar_sma_bitwise(self, rng):
        values = rng.normal(size=150)
        windows = [1, 2, 7, 75, 150]
        matrix, lengths = sma_grid(values, windows)
        assert matrix.shape == (len(windows), values.size)
        for j, window in enumerate(windows):
            expected = sma(values, window)
            assert lengths[j] == expected.size
            assert np.array_equal(matrix[j, : lengths[j]], expected)
            assert not matrix[j, lengths[j] :].any()

    def test_error_message_includes_series_length(self):
        with pytest.raises(ValueError, match="series length 6"):
            sma_grid(np.ones(6), [2, 9])


class TestPrefixMomentStack:
    def test_matches_naive_power_sums(self, rng):
        values = rng.normal(1.0, 2.0, size=90)
        stack = prefix_moment_stack(values, max_power=4)
        assert stack.shape == (4, 91)
        window = 13
        sums = windowed_moment_sums(stack, window)
        for power in range(1, 5):
            naive = np.array(
                [
                    np.sum(values[i : i + window] ** power)
                    for i in range(values.size - window + 1)
                ]
            )
            np.testing.assert_allclose(sums[power - 1], naive, rtol=1e-9, atol=1e-9)

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError, match="max_power"):
            prefix_moment_stack([1.0, 2.0], max_power=0)

    def test_window_sums_validate_window(self):
        stack = prefix_moment_stack(np.ones(5))
        with pytest.raises(ValueError, match="series length 5"):
            windowed_moment_sums(stack, 6)


class TestGridMoments:
    def test_matches_scalar_evaluation(self, rng):
        values = rng.normal(size=400)
        windows = np.arange(1, 41)
        rough, kurt = sma_grid_moments(values, windows)
        expected_rough = np.array([roughness(sma(values, w)) for w in windows])
        expected_kurt = np.array([kurtosis(sma(values, w)) for w in windows])
        np.testing.assert_allclose(rough, expected_rough, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(kurt, expected_kurt, rtol=1e-9, atol=1e-9)

    def test_full_window_edge(self, rng):
        values = rng.normal(size=64)
        rough, kurt = sma_grid_moments(values, [64])
        # A single smoothed point: perfectly smooth, zero-variance kurtosis.
        assert rough[0] == 0.0
        assert kurt[0] == 0.0

    def test_batch_rows_match_single_series_bitwise(self, rng):
        batch = rng.normal(size=(6, 200))
        windows = np.arange(2, 21)
        rough2d, kurt2d = sma_grid_moments(batch, windows)
        assert rough2d.shape == (6, windows.size)
        for i in range(batch.shape[0]):
            rough1d, kurt1d = sma_grid_moments(batch[i], windows)
            assert np.array_equal(rough2d[i], rough1d)
            assert np.array_equal(kurt2d[i], kurt1d)

    def test_window_value_independent_of_grid(self, rng):
        # A search that evaluates a candidate alone (binary/ASAP) must see the
        # same numbers as one that evaluates it inside a full grid
        # (exhaustive) — regardless of which fill branch the grid size picks.
        values = rng.normal(size=300)
        small_grid = np.arange(2, 31)
        large_grid = np.arange(2, 100)  # crosses the gather-branch threshold
        rough_small, kurt_small = sma_grid_moments(values, small_grid)
        rough_large, kurt_large = sma_grid_moments(values, large_grid)
        assert np.array_equal(rough_small, rough_large[: small_grid.size])
        assert np.array_equal(kurt_small, kurt_large[: small_grid.size])
        for j, window in enumerate(small_grid):
            rough_one, kurt_one = sma_grid_moments(values, [window])
            assert rough_one[0] == rough_small[j]
            assert kurt_one[0] == kurt_small[j]

    def test_error_message_includes_series_length(self):
        with pytest.raises(ValueError, match="series length 10"):
            sma_grid_moments(np.ones(10), [2, 11])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_agreement_with_scalar(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(rng.uniform(-3, 3), rng.uniform(0.5, 2.0), size=n)
        windows = [1, 2, max(n // 3, 1), n]
        rough, kurt = sma_grid_moments(values, windows)
        for j, window in enumerate(windows):
            smoothed = sma(values, window)
            assert rough[j] == pytest.approx(roughness(smoothed), rel=1e-9, abs=1e-9)
            assert kurt[j] == pytest.approx(kurtosis(smoothed), rel=1e-9, abs=1e-9)
