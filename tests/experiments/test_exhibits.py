"""Smoke and contract tests for every experiment regenerator.

Each exhibit must run at reduced scale, return structured rows, and format
into the table the paper reports.  Anchored assertions check the headline
findings survive even at test scale where meaningful.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXHIBITS,
    casestudies,
    fig6_user_study,
    fig7_preference,
    fig8_strategies,
    fig9_preagg,
    fig10_streaming,
    fig11_factor,
    figa1_estimate,
    figa3_linear_algos,
    figb1_sensitivity,
    figb2_filters,
    table1_devices,
    table2_datasets,
    table4_pixel_error,
)


class TestTable1:
    def test_exact_reductions(self):
        rows = table1_devices.run()
        measured = {row.device.name: row.reduction for row in rows}
        assert measured["38mm Apple Watch"] == 3676
        assert measured['27" iMac Retina'] == 195

    def test_format(self):
        text = table1_devices.format_result(table1_devices.run())
        assert "Table 1" in text
        assert "3676x" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_datasets.run(scale=0.3, dataset_names=("taxi", "temp", "twitter_aapl"))

    def test_rows_structured(self, rows):
        assert len(rows) == 3
        for row in rows:
            assert row.candidates_asap <= row.candidates_exhaustive

    def test_twitter_unsmoothed(self, rows):
        twitter = next(r for r in rows if r.info.name == "twitter_aapl")
        assert twitter.window_asap == 1

    def test_format(self, rows):
        text = table2_datasets.format_result(rows)
        assert "mean candidates" in text


class TestFig6And7:
    def test_fig6_runs_and_formats(self):
        cells = fig6_user_study.run(trials_per_cell=6)
        assert len(cells) == 5 * 7
        text = fig6_user_study.format_result(cells)
        assert "accuracy" in text.lower()
        summary = fig6_user_study.summarize(cells)
        assert set(summary) == set(
            ("ASAP", "Original", "M4", "simp", "PAA800", "PAA100", "Oversmooth")
        )

    def test_fig7_runs_and_formats(self):
        shares = fig7_preference.run(n_participants=6)
        text = fig7_preference.format_result(shares)
        assert "preference" in text.lower()
        for per_dataset in shares.values():
            assert sum(per_dataset.values()) == pytest.approx(1.0)


class TestFig8:
    def test_cells_and_format(self):
        cells = fig8_strategies.run(
            resolutions=(400,), dataset_names=("taxi", "sine"), scale=1.0, repeats=1
        )
        assert len(cells) == 4
        for cell in cells:
            assert cell.speedup > 0
            assert cell.roughness_ratio > 0
        text = fig8_strategies.format_result(cells)
        assert "speed-up" in text

    def test_asap_quality_near_exhaustive(self):
        cells = fig8_strategies.run(
            resolutions=(1200,), dataset_names=("taxi",), scale=1.0, repeats=1
        )
        asap = next(c for c in cells if c.strategy == "asap")
        assert asap.roughness_ratio == pytest.approx(1.0, abs=0.05)


class TestFig9:
    def test_configurations_ordered(self):
        cells = fig9_preagg.run(resolutions=(400,), dataset_names=("taxi",), scale=1.0)
        by_config = {c.configuration: c for c in cells}
        assert by_config["Exhaustive"].speedup == pytest.approx(1.0)
        assert by_config["ASAP"].speedup > by_config["Exhaustive"].speedup
        text = fig9_preagg.format_result(cells)
        assert "Figure 9" in text

    def test_dataset_rows(self):
        rows = fig9_preagg.run_datasets(dataset_names=("taxi",), resolution=400, scale=1.0)
        assert rows[0].throughput["ASAP"] > rows[0].throughput["Exhaustive"]
        assert "A.2" in fig9_preagg.format_datasets(rows)


class TestFig10:
    def test_throughput_increases_with_interval(self):
        cells = fig10_streaming.run(
            dataset_names=("machine_temp",),
            intervals=(1, 32),
            scale=0.15,
            time_budget=0.4,
        )
        by_interval = {c.refresh_interval: c for c in cells}
        assert by_interval[32].throughput > by_interval[1].throughput
        slope = fig10_streaming.fit_loglog_slope(cells, "machine_temp")
        assert slope > 0.3
        assert "Figure 10" in fig10_streaming.format_result(cells)


class TestFig11:
    def test_factor_and_lesion(self):
        cells = fig11_factor.run(
            resolutions=(500,), scale=0.15, time_budget=0.3
        )
        labels = {c.config.label for c in cells}
        assert {"Baseline", "+Pixel", "+AC", "+Lazy", "ASAP"} <= labels
        by_label = {c.config.label: c for c in cells}
        assert by_label["+Lazy"].throughput > by_label["Baseline"].throughput
        assert "factor analysis" in fig11_factor.format_result(cells)


class TestFigA1:
    def test_estimate_accuracy(self):
        points = figa1_estimate.run()
        # The paper's Figure A.1 claim: errors within ~1.2%.
        assert figa1_estimate.max_error_percent(points) < 3.0
        assert "A.1" in figa1_estimate.format_result(points)


class TestFigA3:
    def test_runtimes_positive(self):
        rows = figa3_linear_algos.run(
            dataset_names=("taxi", "sine"), scale=1.0, repeats=1
        )
        for row in rows:
            assert row.asap_ms > 0
            assert row.paa_ms > 0
            assert row.m4_ms > 0
        assert "A.3" in figa3_linear_algos.format_result(rows)


class TestTable4:
    def test_m4_preserves_asap_distorts(self):
        rows = table4_pixel_error.run(dataset_names=("sine", "taxi"))
        for row in rows:
            assert row.errors["M4"] < row.errors["ASAP"] or row.errors["ASAP"] == 0.0
        assert "Table 4" in table4_pixel_error.format_result(rows)


class TestFigB1:
    def test_variants_run(self):
        variants = (
            figb1_sensitivity.VARIANTS[0],  # ASAP
            figb1_sensitivity.VARIANTS[1],  # 8x roughness
            figb1_sensitivity.VARIANTS[5],  # k0.5
        )
        cells = figb1_sensitivity.run(
            dataset_names=("sine",), variants=variants, trials_per_cell=6
        )
        assert len(cells) == 3
        assert all(c.window >= 1 for c in cells)
        assert "B.1" in figb1_sensitivity.format_result(cells)


class TestFigB2:
    def test_minmax_rougher_than_sma(self):
        cells = figb2_filters.run(dataset_names=("sine",))
        by_filter = {c.filter_name: c for c in cells}
        assert by_filter["minmax"].ratio_vs_sma > 1.0
        assert by_filter["FFT-dominant"].ratio_vs_sma > 1.0
        assert "B.2" in figb2_filters.format_result(cells)


class TestCaseStudies:
    def test_render_all(self):
        text = casestudies.render_all(scale=0.1, width=32)
        assert "Figure 1" in text
        assert "Figure C.1" in text

    def test_twitter_left_unsmoothed(self):
        study = casestudies.figure_c1(scale=0.5)
        assert "unsmoothed" in study.plots[1][0]


class TestRegistry:
    def test_all_exhibits_registered(self):
        expected = {
            "table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "figa1", "figa2", "figa3", "table4", "figb1", "figb2",
            "casestudies",
        }
        assert expected == set(EXHIBITS)

    def test_cli_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
