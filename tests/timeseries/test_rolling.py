"""Tests for the rolling moment kernels (rolling_kurtosis, rolling_roughness).

The scalar kernels applied window by window are the oracle; the rolling
variants must agree to 1e-9 across random series, the window edge cases
(w=1, w=n), and degenerate (constant) content — where both must produce the
scalar kernels' exact zero-variance conventions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.stats import (
    kurtosis,
    rolling_kurtosis,
    rolling_roughness,
    roughness,
)


def scalar_rolling(values, window, fn):
    return np.array(
        [fn(values[i : i + window]) for i in range(len(values) - window + 1)]
    )


class TestRollingKurtosis:
    def test_matches_scalar_on_random_series(self, rng):
        values = rng.normal(2.0, 1.5, size=300)
        for window in (1, 2, 3, 50, 300):
            out = rolling_kurtosis(values, window)
            expected = scalar_rolling(values, window, kurtosis)
            assert out.shape == expected.shape
            np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_window_one_is_all_zero(self, rng):
        # Single-point windows have zero variance; kurtosis convention is 0.
        values = rng.normal(size=40)
        assert np.array_equal(rolling_kurtosis(values, 1), np.zeros(40))

    def test_window_n_matches_whole_series(self, rng):
        values = rng.standard_t(3, size=128)
        out = rolling_kurtosis(values, 128)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(kurtosis(values), rel=1e-9)

    def test_constant_series_is_all_zero(self):
        values = np.full(50, 2.5)
        assert np.array_equal(rolling_kurtosis(values, 10), np.zeros(41))

    def test_constant_window_inside_varying_series(self):
        values = np.concatenate([np.full(20, 1.0), np.arange(20.0)])
        out = rolling_kurtosis(values, 10)
        expected = scalar_rolling(values, 10, kurtosis)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)
        assert out[0] == 0.0  # fully inside the constant prefix

    def test_validates_window(self):
        with pytest.raises(ValueError, match="series length 5"):
            rolling_kurtosis(np.ones(5), 6)
        with pytest.raises(ValueError, match="series length 5"):
            rolling_kurtosis(np.ones(5), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=4, max_value=250),
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(["normal", "periodic", "near_linear", "heavy_tail"]),
    )
    def test_property_agreement(self, n, seed, kind):
        rng = np.random.default_rng(seed)
        if kind == "normal":
            values = rng.normal(rng.uniform(-5, 5), rng.uniform(0.1, 3.0), size=n)
        elif kind == "periodic":
            values = np.sin(np.arange(n) / rng.uniform(2, 20)) + 0.01 * rng.normal(size=n)
        elif kind == "near_linear":
            values = np.linspace(0.0, 1.0, n) + 1e-6 * rng.normal(size=n)
        else:
            values = rng.standard_t(3, size=n) * 100 + 1e4
        window = int(rng.integers(1, n + 1))
        out = rolling_kurtosis(values, window)
        expected = scalar_rolling(values, window, kurtosis)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


class TestRollingRoughness:
    def test_matches_scalar_on_random_series(self, rng):
        values = rng.normal(0.0, 2.0, size=300)
        for window in (1, 2, 3, 50, 300):
            out = rolling_roughness(values, window)
            expected = scalar_rolling(values, window, roughness)
            assert out.shape == expected.shape
            np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)

    def test_window_one_is_perfectly_smooth(self, rng):
        values = rng.normal(size=25)
        assert np.array_equal(rolling_roughness(values, 1), np.zeros(25))

    def test_window_n_matches_whole_series(self, rng):
        values = rng.normal(size=200)
        out = rolling_roughness(values, 200)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(roughness(values), rel=1e-9)

    def test_constant_series_is_all_zero(self):
        values = np.full(30, 7.25)
        assert np.array_equal(rolling_roughness(values, 5), np.zeros(26))

    def test_straight_line_is_all_zero_roughness(self):
        # Constant slope means constant differences: roughness exactly 0.
        values = np.arange(40.0) * 3.0
        out = rolling_roughness(values, 8)
        expected = scalar_rolling(values, 8, roughness)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_validates_window(self):
        with pytest.raises(ValueError, match="series length 4"):
            rolling_roughness(np.ones(4), 5)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=4, max_value=250),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_property_agreement(self, n, seed):
        rng = np.random.default_rng(seed)
        values = np.sin(np.arange(n) / rng.uniform(2, 25)) + rng.uniform(
            0.001, 1.0
        ) * rng.normal(size=n)
        window = int(rng.integers(1, n + 1))
        out = rolling_roughness(values, window)
        expected = scalar_rolling(values, window, roughness)
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)
