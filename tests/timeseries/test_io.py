"""Round-trip tests for CSV/JSONL series IO."""

from __future__ import annotations

import numpy as np

from repro.timeseries import TimeSeries, read_csv, read_jsonl, write_csv, write_jsonl


def test_csv_round_trip(tmp_path):
    series = TimeSeries([1.5, -2.25, 3.125], timestamps=[10.0, 11.0, 12.5], name="x")
    path = tmp_path / "series.csv"
    write_csv(series, path)
    loaded = read_csv(path, name="x")
    assert loaded == series


def test_csv_single_column(tmp_path):
    path = tmp_path / "vals.csv"
    path.write_text("value\n1.0\n2.0\n")
    loaded = read_csv(path)
    assert np.array_equal(loaded.values, [1.0, 2.0])
    assert np.array_equal(loaded.timestamps, [0.0, 1.0])


def test_csv_without_header(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("0,5.0\n1,6.0\n")
    loaded = read_csv(path, has_header=False)
    assert np.array_equal(loaded.values, [5.0, 6.0])


def test_csv_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.csv"
    path.write_text("t,v\n0,1.0\n\n1,2.0\n")
    assert len(read_csv(path)) == 2


def test_csv_default_name_is_stem(tmp_path):
    path = tmp_path / "mytrace.csv"
    write_csv(TimeSeries([1.0]), path)
    assert read_csv(path).name == "mytrace"


def test_jsonl_round_trip(tmp_path):
    series = TimeSeries([0.5, 0.25], timestamps=[0.0, 2.0], name="j")
    path = tmp_path / "series.jsonl"
    write_jsonl(series, path)
    loaded = read_jsonl(path, name="j")
    assert loaded == series


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"t": 0, "v": 1.0}\n\n{"t": 1, "v": 2.0}\n')
    assert len(read_jsonl(path)) == 2


def test_csv_precision_preserved(tmp_path):
    # repr() round-trips float64 exactly.
    value = 0.1 + 0.2
    series = TimeSeries([value])
    path = tmp_path / "precise.csv"
    write_csv(series, path)
    assert read_csv(path).values[0] == value
