"""Round-trip tests for CSV/JSONL series IO."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.timeseries import TimeSeries, read_csv, read_jsonl, write_csv, write_jsonl


def test_csv_round_trip(tmp_path):
    series = TimeSeries([1.5, -2.25, 3.125], timestamps=[10.0, 11.0, 12.5], name="x")
    path = tmp_path / "series.csv"
    write_csv(series, path)
    loaded = read_csv(path, name="x")
    assert loaded == series


def test_csv_single_column(tmp_path):
    path = tmp_path / "vals.csv"
    path.write_text("value\n1.0\n2.0\n")
    loaded = read_csv(path)
    assert np.array_equal(loaded.values, [1.0, 2.0])
    assert np.array_equal(loaded.timestamps, [0.0, 1.0])


def test_csv_without_header(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("0,5.0\n1,6.0\n")
    loaded = read_csv(path, has_header=False)
    assert np.array_equal(loaded.values, [5.0, 6.0])


def test_csv_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.csv"
    path.write_text("t,v\n0,1.0\n\n1,2.0\n")
    assert len(read_csv(path)) == 2


def test_csv_default_name_is_stem(tmp_path):
    path = tmp_path / "mytrace.csv"
    write_csv(TimeSeries([1.0]), path)
    assert read_csv(path).name == "mytrace"


def test_jsonl_round_trip(tmp_path):
    series = TimeSeries([0.5, 0.25], timestamps=[0.0, 2.0], name="j")
    path = tmp_path / "series.jsonl"
    write_jsonl(series, path)
    loaded = read_jsonl(path, name="j")
    assert loaded == series


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"t": 0, "v": 1.0}\n\n{"t": 1, "v": 2.0}\n')
    assert len(read_jsonl(path)) == 2


def test_csv_precision_preserved(tmp_path):
    # repr() round-trips float64 exactly.
    value = 0.1 + 0.2
    series = TimeSeries([value])
    path = tmp_path / "precise.csv"
    write_csv(series, path)
    assert read_csv(path).values[0] == value


# -- precision: the repr-write / float-read asymmetry round-trips exactly ------

#: Adjacent float64 epoch timestamps: the second is the first's successor, so
#: any precision loss in write or read collapses them and breaks the series'
#: strictly-increasing invariant.
_EPOCH = 1_690_000_000.123456
_EPOCH_TIMESTAMPS = [_EPOCH, np.nextafter(_EPOCH, np.inf), _EPOCH + 1e-3]

#: Values spanning the exponent range, including a subnormal and a value
#: whose shortest repr needs all 17 significant digits.
_EXTREME_VALUES = [5e-324, -1.7976931348623157e308, 0.1 + 0.2, 1.0, -2.5e-17]


def test_csv_float_precision_timestamps_round_trip(tmp_path):
    series = TimeSeries([1.0, 2.0, 3.0], timestamps=_EPOCH_TIMESTAMPS, name="t")
    path = tmp_path / "epoch.csv"
    write_csv(series, path)
    loaded = read_csv(path, name="t")
    assert np.array_equal(loaded.timestamps, series.timestamps)  # bit-exact
    assert loaded == series


def test_jsonl_float_precision_timestamps_round_trip(tmp_path):
    series = TimeSeries([1.0, 2.0, 3.0], timestamps=_EPOCH_TIMESTAMPS, name="t")
    path = tmp_path / "epoch.jsonl"
    write_jsonl(series, path)
    loaded = read_jsonl(path, name="t")
    assert np.array_equal(loaded.timestamps, series.timestamps)
    assert loaded == series


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_extreme_values_round_trip(tmp_path, fmt):
    series = TimeSeries(_EXTREME_VALUES, name="x")
    path = tmp_path / f"extreme.{fmt}"
    if fmt == "csv":
        write_csv(series, path)
        loaded = read_csv(path, name="x")
    else:
        write_jsonl(series, path)
        loaded = read_jsonl(path, name="x")
    assert np.array_equal(loaded.values, series.values)  # bit-exact


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_infinite_timestamp_round_trips(tmp_path, fmt):
    # +inf is a legal *final* timestamp (strictly increasing holds); both
    # writers emit it losslessly ('inf' via repr, 'Infinity' via json).
    series = TimeSeries([1.0, 2.0], timestamps=[0.0, math.inf])
    path = tmp_path / f"inf.{fmt}"
    if fmt == "csv":
        write_csv(series, path)
        loaded = read_csv(path)
    else:
        write_jsonl(series, path)
        loaded = read_jsonl(path)
    assert loaded.timestamps[-1] == math.inf
    assert np.array_equal(loaded.values, series.values)


@pytest.mark.parametrize(
    "text",
    [
        "nan,1.0\n0.0,nan\n",  # CSV parses NaN fine; the container rejects it
        "0.0,inf\n",
    ],
)
def test_csv_non_finite_values_rejected_by_container(tmp_path, text):
    path = tmp_path / "bad.csv"
    path.write_text("t,v\n" + text)
    with pytest.raises(ValueError, match="finite"):
        read_csv(path)


def test_jsonl_non_finite_values_rejected_by_container(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 0, "v": NaN}\n')
    with pytest.raises(ValueError, match="finite"):
        read_jsonl(path)


# -- malformed JSONL rows fail with the file and 1-based line number -----------


def test_jsonl_invalid_json_names_line(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"t": 0, "v": 1.0}\n\n{"t": 1, "v":\n')
    with pytest.raises(ValueError, match=r"broken\.jsonl:3: invalid JSON"):
        read_jsonl(path)


def test_jsonl_missing_field_names_line_and_field(tmp_path):
    path = tmp_path / "gappy.jsonl"
    path.write_text('{"t": 0, "v": 1.0}\n{"t": 1}\n')
    with pytest.raises(ValueError, match=r"gappy\.jsonl:2: .*'v' field"):
        read_jsonl(path)


def test_jsonl_non_object_row_names_line(tmp_path):
    path = tmp_path / "list.jsonl"
    path.write_text("[0, 1.0]\n")
    with pytest.raises(ValueError, match=r"list\.jsonl:1: expected an object"):
        read_jsonl(path)


def test_jsonl_non_numeric_field_names_line(tmp_path):
    path = tmp_path / "words.jsonl"
    path.write_text('{"t": 0, "v": 1.0}\n{"t": "noon", "v": 2.0}\n')
    with pytest.raises(ValueError, match=r"words\.jsonl:2: non-numeric"):
        read_jsonl(path)


def test_jsonl_null_field_names_line(tmp_path):
    path = tmp_path / "nulls.jsonl"
    path.write_text('{"t": 0, "v": null}\n')
    with pytest.raises(ValueError, match=r"nulls\.jsonl:1: non-numeric"):
        read_jsonl(path)


@pytest.mark.parametrize("row", ['{"t": true, "v": 1.0}', '{"t": 1, "v": "2.5"}'])
def test_jsonl_coercible_but_non_numeric_types_rejected(tmp_path, row):
    # float() would accept these (True -> 1.0, "2.5" -> 2.5); the reader
    # must not — they are producer type bugs, not numbers.
    path = tmp_path / "typed.jsonl"
    path.write_text(row + "\n")
    with pytest.raises(ValueError, match=r"typed\.jsonl:1: non-numeric"):
        read_jsonl(path)
