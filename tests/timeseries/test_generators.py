"""Tests for the synthetic signal generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries import generators as g


class TestNoise:
    def test_white_noise_moments(self):
        values = g.white_noise(20000, sigma=2.0, seed=1)
        assert np.std(values) == pytest.approx(2.0, rel=0.05)
        assert np.mean(values) == pytest.approx(0.0, abs=0.1)

    def test_determinism(self):
        assert np.array_equal(g.white_noise(100, seed=7), g.white_noise(100, seed=7))
        assert not np.array_equal(g.white_noise(100, seed=7), g.white_noise(100, seed=8))

    def test_laplace_heavier_tails_than_uniform(self):
        from repro.timeseries.stats import kurtosis

        lap = g.laplace_noise(20000, seed=2)
        uni = g.uniform_noise(20000, seed=2)
        assert kurtosis(lap) > 4.5 > kurtosis(uni)


class TestWaves:
    def test_sine_period(self):
        wave = g.sine_wave(64, period=32)
        assert wave[0] == pytest.approx(wave[32], abs=1e-9)
        assert np.max(wave) == pytest.approx(1.0, abs=1e-3)

    def test_sine_rejects_bad_period(self):
        with pytest.raises(ValueError):
            g.sine_wave(10, period=0)

    def test_sawtooth_range(self):
        wave = g.sawtooth_wave(100, period=10, amplitude=2.0)
        assert wave.min() >= -2.0
        assert wave.max() <= 2.0

    def test_square_wave_two_levels(self):
        wave = g.square_wave(64, period=16)
        assert set(np.round(np.unique(wave), 6)) <= {-1.0, 1.0}

    def test_linear_trend_roughness_zero(self):
        from repro.timeseries.stats import roughness

        assert roughness(g.linear_trend(100, slope=0.5, intercept=3.0)) == pytest.approx(0.0, abs=1e-12)

    def test_random_walk_is_cumulative(self):
        walk = g.random_walk(50, step_sigma=1.0, seed=3)
        steps = np.diff(walk)
        assert np.std(steps) == pytest.approx(1.0, rel=0.4)


class TestAnomalies:
    def test_anomaly_validation(self):
        with pytest.raises(ValueError):
            g.Anomaly(5, 5)
        with pytest.raises(ValueError):
            g.Anomaly(-1, 3)

    def test_region_index(self):
        anomaly = g.Anomaly(90, 110)
        assert anomaly.region_index(1000, regions=5) == 0
        assert g.Anomaly(900, 1000).region_index(1000, regions=5) == 4

    def test_region_index_clamps(self):
        assert g.Anomaly(990, 1100).region_index(1000, regions=5) == 4

    def test_level_shift(self):
        base = np.zeros(10)
        shifted = g.level_shift(base, 2, 5, -1.0)
        assert np.array_equal(shifted[2:5], [-1.0] * 3)
        assert shifted[5] == 0.0
        assert base[2] == 0.0  # input untouched

    def test_transient_spike_width(self):
        spiked = g.transient_spike(np.zeros(10), at=5, magnitude=3.0, width=2)
        assert np.count_nonzero(spiked) == 2

    def test_amplitude_change(self):
        scaled = g.amplitude_change(np.ones(10), 0, 5, 2.0)
        assert np.array_equal(scaled, [2.0] * 5 + [1.0] * 5)

    def test_frequency_change_period(self):
        wave = g.frequency_change(400, period=40, start=200, end=280, period_factor=0.5)
        # Outside the anomaly, zero crossings every half period (20 samples).
        crossings = np.nonzero(np.diff(np.signbit(wave[:200])))[0]
        spacing = np.diff(crossings)
        assert np.median(spacing) == pytest.approx(20, abs=1)
        # Inside, spacing halves.
        crossings_in = np.nonzero(np.diff(np.signbit(wave[200:280])))[0]
        assert np.median(np.diff(crossings_in)) == pytest.approx(10, abs=1)

    def test_frequency_change_validation(self):
        with pytest.raises(ValueError):
            g.frequency_change(100, period=0, start=0, end=10, period_factor=0.5)


class TestSignalSpec:
    def test_compose_sums_components(self):
        series = g.compose(
            50,
            lambda n: np.ones(n),
            lambda n: 2 * np.ones(n),
            name="sum",
        )
        assert np.array_equal(series.values, np.full(50, 3.0))
        assert series.name == "sum"

    def test_spec_applies_anomalies_in_order(self):
        anomaly = g.Anomaly(1, 3)
        spec = g.SignalSpec(
            n=5,
            components=[lambda n: np.zeros(n)],
            anomalies=[(lambda v: g.level_shift(v, 1, 3, 1.0), anomaly)],
        )
        series, marks = spec.build()
        assert np.array_equal(series.values, [0.0, 1.0, 1.0, 0.0, 0.0])
        assert marks == [anomaly]

    def test_spec_rejects_bad_component_shape(self):
        spec = g.SignalSpec(n=5, components=[lambda n: np.zeros(n + 1)])
        with pytest.raises(ValueError):
            spec.build()
