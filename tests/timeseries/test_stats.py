"""Unit and property tests for the statistics primitives (Section 3 metrics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries import stats

finite_series = arrays(
    np.float64,
    st.integers(min_value=2, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestBasicMoments:
    def test_mean_matches_numpy(self):
        values = [1.0, 2.0, 4.0, 8.0]
        assert stats.mean(values) == pytest.approx(np.mean(values))

    def test_variance_is_population(self):
        values = [1.0, 2.0, 3.0]
        assert stats.variance(values) == pytest.approx(np.var(values, ddof=0))

    def test_std_is_sqrt_variance(self):
        values = [1.0, 5.0, 9.0, 13.0]
        assert stats.std(values) == pytest.approx(np.sqrt(stats.variance(values)))

    def test_empty_series_rejected(self):
        for fn in (stats.mean, stats.variance, stats.std, stats.kurtosis):
            with pytest.raises(ValueError):
                fn([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            stats.mean(np.ones((2, 2)))


class TestKurtosis:
    def test_normal_noise_near_three(self, white_noise_series):
        # Section 3.2: the normal distribution has kurtosis 3.
        assert stats.kurtosis(white_noise_series) == pytest.approx(3.0, abs=0.35)

    def test_laplace_noise_near_six(self, rng):
        # Figure 5: the Laplace distribution has kurtosis 6.
        values = rng.laplace(0.0, 1.0, size=40000)
        assert stats.kurtosis(values) == pytest.approx(6.0, abs=0.6)

    def test_uniform_below_three(self, rng):
        values = rng.uniform(-1, 1, size=20000)
        assert stats.kurtosis(values) == pytest.approx(1.8, abs=0.15)

    def test_constant_series_is_zero(self):
        assert stats.kurtosis([5.0] * 10) == 0.0

    def test_single_outlier_dominates(self):
        values = np.zeros(1000)
        values[500] = 100.0
        assert stats.kurtosis(values) > 100.0

    @settings(max_examples=50, deadline=None)
    @given(finite_series, st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=-100.0, max_value=100.0))
    def test_affine_invariance(self, values, scale, shift):
        # Kurtosis is a standardized moment: invariant to affine maps.
        # Near-degenerate variance makes the ratio numerically meaningless,
        # so restrict to series with real spread.
        assume(float(np.std(values)) > 1e-3)
        base = stats.kurtosis(values)
        transformed = stats.kurtosis(values * scale + shift)
        assert transformed == pytest.approx(base, rel=1e-6, abs=1e-6)


class TestRoughness:
    def test_figure4_straight_line_is_zero(self):
        # Figure 4 series C: any constant slope has roughness exactly 0.
        line = np.linspace(-3.0, 3.0, 50)
        assert stats.roughness(line) == pytest.approx(0.0, abs=1e-12)

    def test_zero_roughness_implies_straight_line(self):
        # The paper's iff claim: roughness 0 <=> constant first differences.
        values = np.array([0.0, 1.0, 2.0, 3.5])
        assert stats.roughness(values) > 0.0

    def test_jagged_rougher_than_bent(self):
        # Figure 4 ordering: jagged (A) > bent (B) > straight (C).
        n = 40
        jagged = np.resize([1.0, -1.0], n)
        bent = np.concatenate([np.linspace(0, 1, n // 2), np.linspace(1, 0.5, n // 2)])
        straight = np.linspace(0, 1, n)
        assert stats.roughness(jagged) > stats.roughness(bent) > stats.roughness(straight)

    def test_short_series_is_smooth(self):
        assert stats.roughness([1.0]) == 0.0

    def test_matches_std_of_diff(self, white_noise_series):
        expected = np.std(np.diff(white_noise_series))
        assert stats.roughness(white_noise_series) == pytest.approx(expected)

    @settings(max_examples=50, deadline=None)
    @given(finite_series, st.floats(min_value=-1e3, max_value=1e3))
    def test_shift_invariance(self, values, shift):
        assert stats.roughness(values + shift) == pytest.approx(
            stats.roughness(values), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(finite_series, st.floats(min_value=0.1, max_value=50.0))
    def test_scale_equivariance(self, values, scale):
        assert stats.roughness(values * scale) == pytest.approx(
            scale * stats.roughness(values), rel=1e-6, abs=1e-6
        )


class TestZScore:
    def test_zero_mean_unit_variance(self, white_noise_series):
        z = stats.zscore(white_noise_series * 5 + 3)
        assert np.mean(z) == pytest.approx(0.0, abs=1e-12)
        assert np.std(z) == pytest.approx(1.0, abs=1e-12)

    def test_constant_maps_to_zeros(self):
        assert np.array_equal(stats.zscore([2.0, 2.0, 2.0]), np.zeros(3))

    def test_empty_passthrough(self):
        assert stats.zscore([]).size == 0


class TestFirstDifferences:
    def test_values(self):
        assert np.array_equal(
            stats.first_differences([1.0, 4.0, 2.0]), np.array([3.0, -2.0])
        )

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            stats.first_differences([1.0])


class TestMomentSummary:
    def test_matches_individual_functions(self, white_noise_series):
        summary = stats.moment_summary(white_noise_series)
        assert summary.count == white_noise_series.size
        assert summary.mean == pytest.approx(stats.mean(white_noise_series))
        assert summary.variance == pytest.approx(stats.variance(white_noise_series))
        assert summary.kurtosis == pytest.approx(stats.kurtosis(white_noise_series))
        assert summary.roughness == pytest.approx(stats.roughness(white_noise_series))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stats.moment_summary([])
