"""Tests for the TimeSeries container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries import TimeSeries, regular_timestamps


class TestConstruction:
    def test_implicit_timestamps(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        assert np.array_equal(series.timestamps, [0.0, 1.0, 2.0])

    def test_explicit_timestamps(self):
        series = TimeSeries([1.0, 2.0], timestamps=[10.0, 20.0])
        assert series[1] == (20.0, 2.0)

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TimeSeries([1.0, 2.0], timestamps=[2.0, 1.0])

    def test_rejects_duplicate_timestamps(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TimeSeries([1.0, 2.0], timestamps=[1.0, 1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            TimeSeries([1.0, float("nan")])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0, 2.0], timestamps=[1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            TimeSeries(np.ones((3, 2)))

    def test_values_are_read_only(self):
        series = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            series.values[0] = 99.0

    def test_source_array_not_aliased(self):
        source = np.array([1.0, 2.0])
        series = TimeSeries(source)
        source[0] = 99.0
        assert series.values[0] == 1.0


class TestProtocol:
    def test_len_iter(self):
        series = TimeSeries([5.0, 6.0])
        assert len(series) == 2
        assert list(series) == [(0.0, 5.0), (1.0, 6.0)]

    def test_slice_returns_series(self):
        series = TimeSeries([1.0, 2.0, 3.0, 4.0], name="x")
        sliced = series[1:3]
        assert isinstance(sliced, TimeSeries)
        assert np.array_equal(sliced.values, [2.0, 3.0])
        assert sliced.name == "x"

    def test_equality(self):
        assert TimeSeries([1.0, 2.0]) == TimeSeries([1.0, 2.0])
        assert TimeSeries([1.0, 2.0]) != TimeSeries([1.0, 3.0])

    def test_repr_contains_name_and_size(self):
        assert "taxi" in repr(TimeSeries([1.0], name="taxi"))


class TestStatisticsDelegation:
    def test_stats_match_module(self, white_noise_series):
        from repro.timeseries import stats

        series = TimeSeries(white_noise_series)
        assert series.mean() == pytest.approx(stats.mean(white_noise_series))
        assert series.kurtosis() == pytest.approx(stats.kurtosis(white_noise_series))
        assert series.roughness() == pytest.approx(stats.roughness(white_noise_series))


class TestTransformations:
    def test_zscore_preserves_timestamps(self):
        series = TimeSeries([1.0, 3.0], timestamps=[5.0, 6.0])
        z = series.zscore()
        assert np.array_equal(z.timestamps, series.timestamps)
        assert z.mean() == pytest.approx(0.0)

    def test_head_tail(self):
        series = TimeSeries(np.arange(10.0))
        assert len(series.head(3)) == 3
        assert len(series.tail(4)) == 4
        assert series.tail(4).values[0] == 6.0
        assert len(series.tail(0)) == 0

    def test_slice_time(self):
        series = TimeSeries([1.0, 2.0, 3.0], timestamps=[10.0, 20.0, 30.0])
        window = series.slice_time(15.0, 30.0)
        assert np.array_equal(window.values, [2.0])

    def test_slice_time_rejects_inverted_range(self):
        series = TimeSeries([1.0])
        with pytest.raises(ValueError):
            series.slice_time(5.0, 1.0)

    def test_concat(self):
        a = TimeSeries([1.0], timestamps=[0.0])
        b = TimeSeries([2.0], timestamps=[1.0])
        joined = TimeSeries.concat([a, b], name="joined")
        assert len(joined) == 2
        assert joined.name == "joined"

    def test_concat_empty(self):
        assert len(TimeSeries.concat([])) == 0

    def test_with_values(self):
        series = TimeSeries([1.0, 2.0], name="orig")
        replaced = series.with_values([3.0, 4.0])
        assert np.array_equal(replaced.values, [3.0, 4.0])
        assert np.array_equal(replaced.timestamps, series.timestamps)


class TestRegularTimestamps:
    def test_spacing(self):
        ts = regular_timestamps(3, start=1.0, step=0.5)
        assert np.array_equal(ts, [1.0, 1.5, 2.0])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            regular_timestamps(-1)
        with pytest.raises(ValueError):
            regular_timestamps(3, step=0.0)
