"""Tests for the Table 2 dataset reconstructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries import (
    PERFORMANCE_DATASETS,
    USER_STUDY_DATASETS,
    available,
    load,
    load_many,
)
from repro.timeseries.stats import kurtosis


class TestRegistry:
    def test_all_table2_datasets_present(self):
        names = set(available())
        expected = {
            "gas_sensor", "eeg", "power", "traffic_data", "machine_temp",
            "twitter_aapl", "ramp_traffic", "sim_daily", "taxi", "temp", "sine",
        }
        assert expected <= names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("nope")

    def test_user_study_subsets_are_registered(self):
        assert set(USER_STUDY_DATASETS) <= set(available())
        assert set(PERFORMANCE_DATASETS) <= set(available())

    def test_load_many(self):
        datasets = load_many(["taxi", "sine"], scale=0.25)
        assert [d.info.name for d in datasets] == ["taxi", "sine"]


class TestShapes:
    @pytest.mark.parametrize("name", ["taxi", "temp", "sine", "power"])
    def test_full_scale_length_matches_table2(self, name):
        dataset = load(name)
        assert len(dataset.series) == dataset.info.n_points

    def test_scale_shrinks_points(self):
        full = load("taxi")
        half = load("taxi", scale=0.5)
        assert len(half) == pytest.approx(len(full) / 2, abs=2)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            load("taxi", scale=0.0)

    def test_determinism(self):
        a = load("power", scale=0.1)
        b = load("power", scale=0.1)
        assert np.array_equal(a.series.values, b.series.values)

    def test_seed_override_changes_values(self):
        a = load("power", scale=0.1)
        b = load("power", scale=0.1, seed=999)
        assert not np.array_equal(a.series.values, b.series.values)


class TestStructure:
    def test_taxi_has_daily_periodicity(self):
        from repro.core.acf import analyze_acf

        dataset = load("taxi", scale=0.5)
        acf = analyze_acf(dataset.series.values, max_lag=400)
        # A peak at (or within 2 lags of) the daily period 48.
        assert any(abs(p - 48) <= 2 for p in acf.peaks)

    def test_twitter_aapl_kurtosis_is_extreme(self):
        # The reconstruction must keep kurtosis far above 3 so ASAP
        # (correctly) refuses to smooth it, as in Table 2.
        dataset = load("twitter_aapl", scale=0.5)
        assert kurtosis(dataset.series.values) > 50.0

    def test_user_study_datasets_have_anomalies(self):
        for name in USER_STUDY_DATASETS:
            dataset = load(name, scale=0.5)
            assert dataset.anomalies, name

    def test_anomaly_within_series(self):
        for name in USER_STUDY_DATASETS:
            dataset = load(name, scale=0.5)
            for anomaly in dataset.anomalies:
                assert 0 <= anomaly.start < anomaly.end <= len(dataset.series) + 1

    def test_taxi_dip_lowers_level(self):
        dataset = load("taxi", scale=0.5)
        anomaly = dataset.anomalies[0]
        values = dataset.series.values
        inside = values[anomaly.start : anomaly.end].mean()
        outside = np.concatenate([values[: anomaly.start], values[anomaly.end :]]).mean()
        assert inside < outside - 0.5

    def test_power_holiday_is_quiet(self):
        dataset = load("power", scale=0.5)
        anomaly = dataset.anomalies[0]
        values = dataset.series.values
        assert values[anomaly.start : anomaly.end].max() < values.max() * 0.7

    def test_info_carries_paper_numbers(self):
        info = load("taxi", scale=0.1).info
        assert info.paper_window == 112
        assert info.paper_candidates_exhaustive == 120
        assert info.paper_candidates_asap == 4
