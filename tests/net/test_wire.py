"""Wire-protocol unit tests: framing, envelope round trips, error mapping.

The properties the serving tier depends on:

* a message is ``ASNP`` + big-endian u32 length + one codec envelope, and
  every malformed variant (short header, wrong magic, hostile length,
  garbage payload, truncated NPZ) is rejected with a **named** error —
  never a hang, never a pickle load;
* the envelope round-trips every result object bit-exactly (frames carry
  float64 arrays; ``tobytes()`` equality is the law here as everywhere);
* exceptions cross the wire as their own types.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.core.search import SearchResult
from repro.core.streaming import BackfillResult, Frame
from repro.errors import (
    HubAtCapacityError,
    NetError,
    UnknownStreamError,
    WireProtocolError,
)
from repro.net import wire
from repro.persist import codec
from repro.quality import FrameQuality
from repro.timeseries.series import TimeSeries


def make_frame(n=8, seed=0, window=3, refresh_index=1):
    rng = np.random.default_rng(seed)
    return Frame(
        series=TimeSeries(rng.normal(size=n), np.arange(n, dtype=float), name="s"),
        window=window,
        search=SearchResult(
            window=window,
            roughness=0.5,
            kurtosis=3.0,
            candidates_evaluated=4,
            strategy="asap",
            max_window=20,
        ),
        refresh_index=refresh_index,
        points_ingested=n * 4,
        quality=FrameQuality(),
    )


class TestFraming:
    def test_message_round_trip(self):
        payload = {"msg": "request", "id": 1, "op": "ping", "args": {}}
        data = wire.encode_message(payload)
        assert data[:4] == codec.WIRE_MAGIC
        length = codec.parse_header(data[: codec.WIRE_HEADER_SIZE])
        assert length == len(data) - codec.WIRE_HEADER_SIZE
        assert wire.decode_payload(data[codec.WIRE_HEADER_SIZE :]) == payload

    def test_truncated_header_named(self):
        with pytest.raises(WireProtocolError, match="truncated wire header"):
            codec.parse_header(b"ASN")

    def test_bad_magic_named(self):
        header = b"GET " + struct.pack(">I", 100)
        with pytest.raises(WireProtocolError, match="bad wire magic"):
            codec.parse_header(header)

    def test_hostile_length_never_allocates(self):
        header = codec.WIRE_MAGIC + struct.pack(">I", 2**32 - 1)
        with pytest.raises(WireProtocolError, match="exceeds the"):
            codec.parse_header(header)

    def test_oversized_message_fails_at_sender(self):
        big = {"msg": "push", "blob": np.ones(1024, dtype=np.float64)}
        with pytest.raises(WireProtocolError, match="wire limit"):
            wire.encode_message(big, limit=64)

    def test_garbage_payload_named_not_pickled(self):
        with pytest.raises(WireProtocolError, match="undecodable wire message"):
            wire.decode_payload(b"\x80\x04cPickles are not welcome here.")

    def test_truncated_payload_rejected(self):
        data = wire.encode_message({"msg": "request", "id": 1, "op": "ping", "args": {}})
        with pytest.raises(WireProtocolError):
            wire.decode_payload(data[codec.WIRE_HEADER_SIZE : -7])

    def test_checkpoint_payload_is_not_a_message(self):
        payload = codec.dumps("streamhub", {"some": "state"})
        with pytest.raises(WireProtocolError, match="not a wire message"):
            wire.decode_payload(payload)

    def test_schema_mismatch_mirrors_codec_error(self, monkeypatch):
        data = wire.encode_message({"msg": "hello"})
        monkeypatch.setattr(codec, "SCHEMA_VERSION", codec.SCHEMA_VERSION + 1)
        with pytest.raises(WireProtocolError) as excinfo:
            wire.decode_payload(data[codec.WIRE_HEADER_SIZE :])
        # The codec's own schema diagnostic, naming both versions.
        assert "schema version" in str(excinfo.value)
        assert str(codec.SCHEMA_VERSION) in str(excinfo.value)
        assert str(codec.SCHEMA_VERSION - 1) in str(excinfo.value)


class TestResultSerializers:
    def test_frame_bit_identical(self):
        frame = make_frame()
        back = wire.frame_from_state(wire.frame_state(frame))
        assert back.series.values.tobytes() == frame.series.values.tobytes()
        assert back.series.timestamps.tobytes() == frame.series.timestamps.tobytes()
        assert back.search == frame.search
        assert back.quality == frame.quality
        assert (back.window, back.refresh_index, back.points_ingested) == (
            frame.window,
            frame.refresh_index,
            frame.points_ingested,
        )

    def test_backfill_result_round_trip(self):
        result = BackfillResult(
            points=100,
            panes=25,
            frames_elided=3,
            searches_run=2,
            mode="fast",
            frames=(make_frame(seed=1), make_frame(seed=2)),
        )
        back = wire.backfill_from_state(wire.backfill_state(result))
        assert (back.points, back.panes, back.frames_elided) == (100, 25, 3)
        assert (back.searches_run, back.mode) == (2, "fast")
        assert len(back.frames) == 2
        for a, b in zip(back.frames, result.frames):
            assert a.series.values.tobytes() == b.series.values.tobytes()

    def test_unknown_snapshot_flavour_rejected(self):
        with pytest.raises(WireProtocolError, match="unknown snapshot flavour"):
            wire.snapshot_from_state({"type": "martian"})


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc",
        [
            UnknownStreamError("stream-7"),
            HubAtCapacityError("hub full"),
            WireProtocolError("bad frame"),
            errors.SpecError("resolution must be >= 1"),
            ValueError("plain"),
        ],
    )
    def test_named_errors_round_trip_as_their_type(self, exc):
        back = wire.error_from_state(wire.error_state(exc))
        assert type(back) is type(exc)

    def test_shard_down_reconstructs_shard_ids(self):
        exc = errors.ShardDownError(["shard-0", "shard-2"])
        back = wire.error_from_state(wire.error_state(exc))
        assert isinstance(back, errors.ShardDownError)
        assert list(back.shard_ids) == ["shard-0", "shard-2"]

    def test_unknown_type_degrades_to_neterror(self):
        back = wire.error_from_state({"type": "ExoticError", "message": "boom"})
        assert isinstance(back, NetError)
        assert "ExoticError" in str(back) and "boom" in str(back)


# -- hypothesis: the envelope encoder/decoder is the identity -------------------

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, width=64)
    | st.text(max_size=20).filter(lambda s: s != "__npz__")
)
arrays = st.builds(
    lambda seed, n: np.random.default_rng(seed).normal(size=n),
    st.integers(0, 2**16),
    st.integers(0, 16),
)
trees = st.recursive(
    scalars | arrays,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.text(max_size=10).filter(lambda s: s != "__npz__"), children, max_size=4
    ),
    max_leaves=12,
)


def assert_tree_equal(a, b):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray) and a.tobytes() == b.tobytes()
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            assert_tree_equal(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_tree_equal(x, y)
    else:
        assert a == b


@given(tree=trees)
def test_envelope_round_trip_property(tree):
    """Any JSON-plus-arrays message body survives the wire bit-exactly."""
    message = {"msg": "request", "id": 1, "op": "x", "args": {"tree": tree}}
    data = wire.encode_message(message)
    length = codec.parse_header(data[: codec.WIRE_HEADER_SIZE])
    payload = data[codec.WIRE_HEADER_SIZE :]
    assert len(payload) == length
    decoded = wire.decode_payload(payload)
    assert_tree_equal(decoded["args"]["tree"], tree)
