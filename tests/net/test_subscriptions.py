"""Server-push subscriptions: delivery, backpressure, graceful shutdown.

The backpressure tests lean on a determinism property of the server: one
refresh boundary's pushes are enqueued *synchronously* on the event loop
(the writer task cannot interleave), so a ``subscribe_queue`` smaller than
the number of matching subscriptions must drop the oldest pushes and count
them — no timing games required.
"""

from __future__ import annotations

import pytest

from netutil import SPEC, make_arrivals
from repro.errors import ConnectionClosedError, NetError, UnknownStreamError
from repro.net.remote import RemoteBackend
from repro.net.server import serve
from repro.service import StreamHub


class TestDelivery:
    def test_inline_ingest_frames_are_pushed(self, remote):
        sid = remote.create_stream(stream_id="s")
        sub = remote.subscribe(sid)
        ts, vs = make_arrivals(100)
        inline = remote.ingest(sid, ts, vs)
        assert inline, "workload must cross interior refresh boundaries"
        events = remote.wait_pushes(1, timeout=10)
        assert events
        pushed = [f for e in events for f in e.frames]
        assert len(pushed) == len(inline)
        for a, b in zip(pushed, inline):
            assert a.series.values.tobytes() == b.series.values.tobytes()
        assert all(e.subscription == sub and e.stream_id == sid for e in events)

    def test_tick_frames_are_pushed(self, remote):
        sid = remote.create_stream(stream_id="t")
        remote.subscribe(sid)
        # 10 panes: the interior boundary at pane 5 is below the minimum
        # search width (emits nothing); the batch-end boundary defers.
        ts, vs = make_arrivals(40)
        assert remote.ingest(sid, ts, vs) == []
        assert remote.snapshot(sid).refresh_due
        emitted = remote.tick()[sid]
        events = remote.wait_pushes(1, timeout=10)
        pushed = [f for e in events for f in e.frames]
        assert len(pushed) == len(emitted) == 1
        assert pushed[0].series.values.tobytes() == emitted[0].series.values.tobytes()

    def test_seq_increments_per_subscription(self, remote):
        sid = remote.create_stream(stream_id="q")
        remote.subscribe(sid)
        ts, vs = make_arrivals(100)
        remote.ingest(sid, ts, vs)
        remote.ingest(sid, ts + 100, vs)
        events = remote.wait_pushes(2, timeout=10)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_subscribe_unknown_stream_rejected(self, remote):
        with pytest.raises(UnknownStreamError):
            remote.subscribe("ghost")

    def test_unsubscribe_stops_pushes(self, remote):
        sid = remote.create_stream(stream_id="u")
        sub = remote.subscribe(sid)
        ts, vs = make_arrivals(100)
        remote.ingest(sid, ts, vs)
        assert remote.wait_pushes(1, timeout=10)
        assert remote.unsubscribe(sub)
        remote.pushes()  # drain anything in flight
        remote.ingest(sid, ts + 100, vs)
        remote.ping()  # forces a full round trip after the ingest
        assert remote.pushes(timeout=0.2) == []

    def test_two_clients_get_independent_deliveries(self, server, remote):
        other = RemoteBackend(*server.address, spec=SPEC)
        sid = remote.create_stream(stream_id="pair")
        remote.subscribe(sid)
        other.subscribe(sid)
        ts, vs = make_arrivals(100)
        remote.ingest(sid, ts, vs)
        mine = remote.wait_pushes(1, timeout=10)
        theirs = other.wait_pushes(1, timeout=10)
        assert mine and theirs
        assert (
            mine[0].frames[0].series.values.tobytes()
            == theirs[0].frames[0].series.values.tobytes()
        )
        other.shutdown()

    def test_close_flush_frames_are_pushed(self, remote):
        sid = remote.create_stream(stream_id="c")
        remote.subscribe(sid)
        ts, vs = make_arrivals(30)  # 10 points past the deferred boundary
        remote.ingest(sid, ts, vs)
        remote.pushes()  # drain boundary pushes
        final = remote.close(sid, flush=True)
        if final:  # the partial tail pane flushed as a closing frame
            events = remote.wait_pushes(1, timeout=10)
            pushed = [f for e in events for f in e.frames]
            assert pushed[-1].series.values.tobytes() == final[-1].series.values.tobytes()


class TestBackpressure:
    def test_drop_oldest_is_counted_and_sequenced(self, hub):
        handle = serve(hub, subscribe_queue=1)
        try:
            client = RemoteBackend(*handle.address, spec=SPEC)
            sid = client.create_stream(stream_id="s")
            # Three subscriptions on one connection: one boundary enqueues
            # three pushes back-to-back into a queue of one.
            subs = [client.subscribe(sid) for _ in range(3)]
            ts, vs = make_arrivals(100)
            client.ingest(sid, ts, vs)
            events = client.wait_pushes(1, timeout=10)
            # Only the newest push survived the bounded outbox.
            assert len(events) == 1
            assert events[0].subscription == subs[-1]
            assert events[0].push_dropped == 2
            stats = client.server_stats()
            assert stats["push_dropped"] == 2
            assert stats["pushes_sent"] == 1
            client.shutdown()
        finally:
            handle.stop()

    def test_roomy_queue_drops_nothing(self, hub):
        handle = serve(hub, subscribe_queue=64)
        try:
            client = RemoteBackend(*handle.address, spec=SPEC)
            sid = client.create_stream(stream_id="s")
            subs = [client.subscribe(sid) for _ in range(3)]
            ts, vs = make_arrivals(100)
            inline = client.ingest(sid, ts, vs)
            assert inline
            events = client.wait_pushes(3, timeout=10)
            assert sorted(e.subscription for e in events) == sorted(subs)
            assert all(e.push_dropped == 0 for e in events)
            assert client.server_stats()["push_dropped"] == 0
            client.shutdown()
        finally:
            handle.stop()


class TestGracefulShutdown:
    def test_stop_flushes_pending_ticks_to_subscribers(self):
        hub = StreamHub(default_config=SPEC)
        handle = serve(hub)
        client = RemoteBackend(*handle.address, spec=SPEC)
        sid = client.create_stream(stream_id="s")
        client.subscribe(sid)
        ts, vs = make_arrivals(40)  # lands exactly on a deferred boundary
        assert client.ingest(sid, ts, vs) == []
        assert client.snapshot(sid).refresh_due
        # Stop without ever ticking: the graceful path must run the final
        # tick and drain the resulting push before closing the socket.
        handle.stop(flush=True)
        events = client.pushes(timeout=10)
        assert len(events) == 1
        frame = events[0].frames[0]
        # The flushed frame is the one an explicit tick would have emitted.
        witness = StreamHub(default_config=SPEC)
        witness.create_stream("s")
        witness.ingest("s", ts, vs)
        expected = witness.tick()["s"][0]
        assert frame.series.values.tobytes() == expected.series.values.tobytes()
        with pytest.raises((ConnectionClosedError, NetError)):
            client.ping()
        client.shutdown()

    def test_stop_without_flush_skips_the_final_tick(self):
        hub = StreamHub(default_config=SPEC)
        handle = serve(hub)
        client = RemoteBackend(*handle.address, spec=SPEC)
        sid = client.create_stream(stream_id="s")
        client.subscribe(sid)
        ts, vs = make_arrivals(40)
        client.ingest(sid, ts, vs)
        handle.stop(flush=False)
        assert client.pushes(timeout=0.5) == []
        # The deferred refresh is still pending in the (local) hub.
        assert hub.snapshot(sid).refresh_due
        client.shutdown()


class TestResolutionSubscriptions:
    def test_view_pushes_match_polled_snapshots(self, remote, hub):
        sid = remote.create_stream(stream_id="v")
        ts, vs = make_arrivals(200)
        remote.ingest(sid, ts, vs)
        remote.pushes(timeout=0.2)  # drain the plain-frame era (no subs yet)
        remote.subscribe(sid, resolution=25)
        remote.ingest(sid, ts + 200, vs)
        events = [e for e in remote.wait_pushes(1, timeout=10) if e.view is not None]
        assert events, "a refresh boundary must produce a view push"
        view = events[-1].view
        polled = hub.snapshot(sid, resolution=25)
        assert view.resolution == 25
        assert view.series.values.tobytes() == polled.series.values.tobytes()
        assert view.series.timestamps.tobytes() == polled.series.timestamps.tobytes()
        assert view.window == polled.window
        assert view.search == polled.search

    def test_unservable_view_skips_boundary_not_subscription(self, remote):
        sid = remote.create_stream(stream_id="w")
        # Subscribing at an absurd width is allowed; early boundaries are
        # skipped until the pyramid can serve it, and the connection and
        # subscription stay healthy throughout.
        remote.subscribe(sid, resolution=10_000)
        ts, vs = make_arrivals(40)
        remote.ingest(sid, ts, vs)
        remote.ping()
        assert remote.pushes(timeout=0.2) == []
        assert remote.ping()


class TestClientFacadePassthrough:
    def test_in_process_backends_name_the_requirement(self):
        import repro

        client = repro.connect("local")
        with pytest.raises(NetError, match="tcp://"):
            client.subscribe("anything")
        with pytest.raises(NetError, match="tcp://"):
            client.pushes()

    def test_facade_subscribe_round_trip(self, server):
        import repro

        client = repro.connect(server.url, spec=SPEC)
        stream = client.stream(stream_id="f")
        sub = stream.subscribe()
        assert isinstance(sub, int)
        ts, vs = make_arrivals(100)
        stream.ingest(ts, vs)
        deadline_events = client.hub.wait_pushes(1, timeout=10)
        assert deadline_events
        assert client.pushes() == [] or True  # stash already drained above
        client.close()
