"""THE acceptance pin for the network tier.

The repo-wide equivalence law, extended over a socket: a remote client —
``connect("tcp://host:port")`` — produces frames **bit-identical** to
``connect("local")`` given the same arrivals.  Pinned here for the
request/response path (ingest / tick / snapshot), the server-push
subscription path (plain and resolution-view), the bulk ``backfill``
lane, and a mid-stream ``checkpoint``/restore round trip taken *through*
the remote client.  All comparisons are ``tobytes()`` on the float64
payloads — no tolerances anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from netutil import SPEC, make_arrivals
from repro.cluster import ShardedHub
from repro.net.server import serve
from repro.persist import restore
from repro.service import StreamHub


def assert_frames_identical(ours, theirs):
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.series.values.tobytes() == b.series.values.tobytes()
        assert a.series.timestamps.tobytes() == b.series.timestamps.tobytes()
        assert a.window == b.window
        assert a.refresh_index == b.refresh_index
        assert a.points_ingested == b.points_ingested
        assert a.quality == b.quality
        assert (a.search is None) == (b.search is None)
        if a.search is not None:
            assert a.search == b.search


def make_server(tier):
    if tier == "sharded":
        hub = ShardedHub(shards=3, default_config=SPEC)
    else:
        hub = StreamHub(default_config=SPEC)
    return serve(hub)


@pytest.fixture(params=["hub", "sharded"])
def tier_server(request):
    handle = make_server(request.param)
    yield request.param, handle
    handle.stop()


class TestRequestResponsePath:
    def test_ingest_tick_snapshot_match_local(self, tier_server):
        _, handle = tier_server
        local = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        local.stream(stream_id="s")
        remote.stream(stream_id="s")
        ts, vs = make_arrivals(500)
        for lo in range(0, 500, 90):  # ragged batches: interior + deferred
            chunk = slice(lo, min(lo + 90, 500))
            assert_frames_identical(
                remote.ingest("s", ts[chunk], vs[chunk]),
                local.ingest("s", ts[chunk], vs[chunk]),
            )
            assert_frames_identical(
                remote.tick().get("s", []), local.tick().get("s", [])
            )
        # Session snapshots are plain frozen dataclasses: full equality.
        assert remote.snapshot("s") == local.snapshot("s")
        for resolution in (25, 50):
            mine = remote.snapshot("s", resolution=resolution)
            ref = local.snapshot("s", resolution=resolution)
            assert mine.series.values.tobytes() == ref.series.values.tobytes()
            assert mine.series.timestamps.tobytes() == ref.series.timestamps.tobytes()
            assert mine.window == ref.window
            assert mine.search == ref.search
        assert_frames_identical(
            remote.close_stream("s", flush=True), local.close_stream("s", flush=True)
        )
        local.close()
        remote.close()

    def test_backfill_matches_local(self, tier_server):
        _, handle = tier_server
        local = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        local.stream(stream_id="b")
        remote.stream(stream_id="b")
        ts, vs = make_arrivals(1000)
        mine = remote.backfill("b", ts, vs)
        ref = local.backfill("b", ts, vs)
        assert mine.points == ref.points == 1000
        assert mine.panes == ref.panes
        assert mine.frames_elided == ref.frames_elided
        assert mine.mode == ref.mode
        assert_frames_identical(mine.frames, ref.frames)
        # The law's real teeth: frames AFTER the bulk lane are the same as
        # if the archive had been streamed point by point.
        more_ts, more_vs = make_arrivals(200, seed=11, start=1000.0)
        assert_frames_identical(
            remote.ingest("b", more_ts, more_vs), local.ingest("b", more_ts, more_vs)
        )
        assert_frames_identical(
            remote.tick().get("b", []), local.tick().get("b", [])
        )
        local.close()
        remote.close()

    def test_mid_stream_checkpoint_restore_continuation(self, tier_server):
        tier, handle = tier_server
        witness = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        witness.stream(stream_id="c")
        remote.stream(stream_id="c")
        ts, vs = make_arrivals(400)
        remote.ingest("c", ts[:213], vs[:213])  # mid-pane, mid-refresh cut
        witness.ingest("c", ts[:213], vs[:213])
        # Checkpoint through the remote client: the `state` op ships the
        # server hub's full state tree; persist writes it as the same
        # payload kind a local checkpoint of that hub would use.
        blob = remote.checkpoint()
        revived = restore(blob)
        expected_kind = "sharded-hub" if tier == "sharded" else "streamhub"
        assert revived.checkpoint_kind == expected_kind
        # Continue all three: remote (uninterrupted), revived (restored),
        # witness (local, uninterrupted) — every tail frame bit-identical.
        tail = remote.ingest("c", ts[213:], vs[213:])
        assert_frames_identical(revived.ingest("c", ts[213:], vs[213:]), tail)
        assert_frames_identical(witness.ingest("c", ts[213:], vs[213:]), tail)
        assert_frames_identical(revived.tick().get("c", []), remote.tick().get("c", []))
        shutdown = getattr(revived, "shutdown", None)
        if shutdown:
            shutdown()
        witness.close()
        remote.close()


class TestPushPath:
    def test_pushed_frames_match_local_inline(self, tier_server):
        _, handle = tier_server
        local = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        local.stream(stream_id="p")
        remote.stream(stream_id="p")
        remote.subscribe("p")
        ts, vs = make_arrivals(300)
        expected = []
        for lo in range(0, 300, 100):
            chunk = slice(lo, lo + 100)
            remote.ingest("p", ts[chunk], vs[chunk])
            expected.extend(local.ingest("p", ts[chunk], vs[chunk]))
        assert expected, "workload must emit inline frames"
        events = remote.hub.wait_pushes(1, timeout=10)
        pushed = [f for e in events for f in e.frames]
        # Drain until the push path has delivered everything the local
        # witness emitted (pushes ride behind responses, never ahead).
        import time

        deadline = time.monotonic() + 10.0
        while len(pushed) < len(expected) and time.monotonic() < deadline:
            pushed.extend(f for e in remote.pushes(timeout=0.2) for f in e.frames)
        assert_frames_identical(pushed, expected)
        local.close()
        remote.close()

    def test_view_pushes_match_local_resolution_snapshots(self, tier_server):
        _, handle = tier_server
        local = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        local.stream(stream_id="v")
        remote.stream(stream_id="v")
        ts, vs = make_arrivals(200)
        remote.ingest("v", ts, vs)
        local.ingest("v", ts, vs)
        remote.subscribe("v", resolution=25)
        more_ts, more_vs = make_arrivals(200, seed=3, start=200.0)
        remote.ingest("v", more_ts, more_vs)
        local.ingest("v", more_ts, more_vs)
        events = [
            e for e in remote.hub.wait_pushes(1, timeout=10) if e.view is not None
        ]
        assert events
        view = events[-1].view
        ref = local.snapshot("v", resolution=25)
        assert view.series.values.tobytes() == ref.series.values.tobytes()
        assert view.series.timestamps.tobytes() == ref.series.timestamps.tobytes()
        assert view.window == ref.window
        assert view.search == ref.search
        local.close()
        remote.close()


class TestShardedHandshake:
    def test_hello_names_the_tier(self):
        handle = make_server("sharded")
        try:
            client = repro.connect(handle.url, spec=SPEC)
            assert client.hub.checkpoint_kind == "sharded-hub"
            assert client.hub.hello["hub_kind"] == "sharded-hub"
            blob = client.checkpoint()
            revived = restore(blob)
            assert isinstance(revived, ShardedHub)
            revived.shutdown()
            client.close()
        finally:
            handle.stop()


class TestDeterministicValues:
    def test_float_payloads_survive_the_wire_exactly(self, tier_server):
        """Adversarial float values (denormals, huge magnitudes, negative
        zero) cross the NPZ envelope without a single bit of drift."""
        _, handle = tier_server
        local = repro.connect("local", spec=SPEC)
        remote = repro.connect(handle.url, spec=SPEC)
        local.stream(stream_id="f")
        remote.stream(stream_id="f")
        rng = np.random.default_rng(99)
        n = 120
        ts = np.arange(n, dtype=np.float64)
        vs = rng.normal(size=n) * np.float64(1e17)
        vs[::7] = np.float64(5e-324)  # smallest subnormal
        vs[3::11] = -0.0
        assert_frames_identical(
            remote.ingest("f", ts, vs), local.ingest("f", ts, vs)
        )
        assert remote.snapshot("f") == local.snapshot("f")
        mine = remote.snapshot("f", resolution=10)
        ref = local.snapshot("f", resolution=10)
        assert mine.series.values.tobytes() == ref.series.values.tobytes()
        local.close()
        remote.close()
