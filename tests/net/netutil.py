"""Shared helpers for the net test directory (imported by sys.path, not
as a package — test directories here have no ``__init__.py``)."""

from __future__ import annotations

import numpy as np

from repro.spec import AsapSpec

#: One spec for the whole directory: small panes and a coarse resolution so
#: a few hundred points cross several refresh boundaries.
SPEC = AsapSpec(pane_size=4, resolution=10, refresh_interval=5)


def make_arrivals(n: int = 200, seed: int = 7, start: float = 0.0):
    rng = np.random.default_rng(seed)
    timestamps = np.arange(n, dtype=np.float64) + float(start)
    values = rng.normal(size=n).cumsum()
    return timestamps, values
