"""The hubs' refresh-boundary observer hook (what the server pushes from).

Both tiers promise: observers see ``{stream_id: [Frame, ...]}`` exactly
once per delivered frame — after inline ingest emissions, after a
successful tick, after a backfill's closing frame, and after a flushing
close — and are never called while hub locks are held (re-entrant hub
calls from a callback must not deadlock).  Frames riding a
``ShardDownError``'s ``partial_frames`` are NOT observed: they belong to
the caller handling the failure, and a retry must not double-deliver.
"""

from __future__ import annotations

import pytest

from netutil import SPEC, make_arrivals
from repro.cluster import ShardedHub
from repro.errors import ShardDownError
from repro.service import StreamHub


class Recorder:
    def __init__(self):
        self.batches = []

    def __call__(self, frames):
        self.batches.append({sid: list(lst) for sid, lst in frames.items()})

    def all_frames(self, sid):
        return [f for batch in self.batches for f in batch.get(sid, [])]


@pytest.fixture(params=["hub", "sharded"])
def tier(request):
    if request.param == "hub":
        hub = StreamHub(default_config=SPEC)
    else:
        hub = ShardedHub(shards=2, default_config=SPEC)
    recorder = Recorder()
    hub.add_frame_observer(recorder)
    yield hub, recorder
    shutdown = getattr(hub, "shutdown", None)
    if shutdown:
        shutdown()


class TestObserverHook:
    def test_inline_ingest_frames_observed(self, tier):
        hub, recorder = tier
        hub.create_stream("s")
        ts, vs = make_arrivals(100)
        inline = hub.ingest("s", ts, vs)
        assert inline
        observed = recorder.all_frames("s")
        assert len(observed) == len(inline)
        for a, b in zip(observed, inline):
            assert a.series.values.tobytes() == b.series.values.tobytes()

    def test_tick_frames_observed(self, tier):
        hub, recorder = tier
        hub.create_stream("s")
        ts, vs = make_arrivals(40)
        assert hub.ingest("s", ts, vs) == []
        emitted = hub.tick()["s"]
        observed = recorder.all_frames("s")
        assert len(observed) == len(emitted) == 1
        assert observed[0].series.values.tobytes() == emitted[0].series.values.tobytes()

    def test_backfill_closing_frame_observed(self, tier):
        hub, recorder = tier
        hub.create_stream("s")
        ts, vs = make_arrivals(200)
        result = hub.backfill("s", ts, vs)
        observed = recorder.all_frames("s")
        assert len(observed) == len(result.frames)
        for a, b in zip(observed, result.frames):
            assert a.series.values.tobytes() == b.series.values.tobytes()

    def test_close_flush_observed_and_unflushed_close_not(self, tier):
        hub, recorder = tier
        hub.create_stream("a")
        hub.create_stream("b")
        ts, vs = make_arrivals(30)
        hub.ingest("a", ts, vs)
        hub.ingest("b", ts, vs)
        before = len(recorder.all_frames("a"))
        closing = hub.close("a", flush=True)
        assert len(recorder.all_frames("a")) == before + len(closing)
        silent_before = len(recorder.all_frames("b"))
        hub.close("b", flush=False)
        assert len(recorder.all_frames("b")) == silent_before

    def test_removed_observer_sees_nothing_more(self, tier):
        hub, recorder = tier
        hub.create_stream("s")
        ts, vs = make_arrivals(100)
        hub.ingest("s", ts, vs)
        seen = len(recorder.all_frames("s"))
        assert seen
        hub.remove_frame_observer(recorder)
        hub.remove_frame_observer(recorder)  # idempotent
        hub.ingest("s", ts + 100, vs)
        assert len(recorder.all_frames("s")) == seen

    def test_observer_registration_is_idempotent(self, tier):
        hub, recorder = tier
        hub.add_frame_observer(recorder)  # second registration is a no-op
        hub.create_stream("s")
        ts, vs = make_arrivals(100)
        inline = hub.ingest("s", ts, vs)
        assert len(recorder.all_frames("s")) == len(inline)

    def test_callback_may_reenter_the_hub(self, tier):
        """Observers run outside hub locks: snapshotting from the callback
        must not deadlock."""
        hub, _ = tier
        snapshots = []
        hub.add_frame_observer(
            lambda frames: snapshots.extend(hub.snapshot(sid) for sid in frames)
        )
        hub.create_stream("s")
        ts, vs = make_arrivals(100)
        inline = hub.ingest("s", ts, vs)
        assert inline and len(snapshots) >= 1
        assert all(s.stream_id == "s" for s in snapshots)


class TestShardedSpecifics:
    def test_buffered_ingest_notifies_at_tick_not_enqueue(self):
        hub = ShardedHub(shards=2, default_config=SPEC)
        recorder = Recorder()
        hub.add_frame_observer(recorder)
        hub.create_stream("s")
        ts, vs = make_arrivals(100)
        hub.ingest("s", ts, vs, buffered=True)
        assert recorder.all_frames("s") == []  # nothing flushed yet
        emitted = hub.tick().get("s", [])
        observed = recorder.all_frames("s")
        assert len(observed) == len(emitted)
        hub.shutdown()

    def test_partial_frames_on_shard_down_are_not_observed(self):
        hub = ShardedHub(shards=2, default_config=SPEC)
        recorder = Recorder()
        hub.add_frame_observer(recorder)
        # One stream per shard, both with a deferred refresh pending.
        sids = [hub.create_stream() for _ in range(4)]
        by_shard: dict[str, str] = {}
        for sid in sids:
            by_shard.setdefault(hub.shard_of(sid), sid)
        assert len(by_shard) == 2, "need streams on both shards"
        ts, vs = make_arrivals(40)
        for sid in sids:
            hub.ingest(sid, ts, vs)
        observed_before = sum(len(b) for b in recorder.batches)
        hub.kill_shard(hub.shard_ids[0])
        with pytest.raises(ShardDownError) as excinfo:
            hub.tick()
        # The healthy shard's frames ride the exception for the caller...
        assert excinfo.value.partial_frames
        # ...and were NOT delivered to observers (no double delivery on retry).
        assert sum(len(b) for b in recorder.batches) == observed_before
        hub.shutdown()
