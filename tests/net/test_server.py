"""AsapServer behaviour over a real localhost socket.

Request/response surface, error mapping, pipelining, connection capacity,
hostile/malformed input, handshake version mismatch, and the consistency
guarantee: a client dying mid-conversation leaves the hub's sessions
exactly as the completed operations put them.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.errors import (
    ConnectionClosedError,
    HubAtCapacityError,
    NetError,
    UnknownStreamError,
    WireProtocolError,
)
from repro.net import wire
from repro.net.remote import RemoteBackend, parse_tcp_url
from repro.net.server import AsapServer, serve
from repro.persist import codec

from netutil import SPEC, make_arrivals


class TestRequestResponse:
    def test_full_surface(self, remote):
        sid = remote.create_stream(stream_id="s")
        assert sid == "s"
        ts, vs = make_arrivals()
        frames = remote.ingest(sid, ts, vs)
        assert all(f.series.values.dtype == np.float64 for f in frames)
        assert remote.tick() == {} or isinstance(remote.tick(), dict)
        snap = remote.snapshot(sid)
        assert snap.stream_id == "s" and snap.points_ingested == len(ts)
        assert snap.config == SPEC
        assert remote.stream_ids() == ["s"]
        assert len(remote) == 1
        assert "s" in remote and "missing" not in remote
        stats = remote.stats
        assert stats.points_ingested == len(ts)
        assert remote.ping()
        closing = remote.close(sid, flush=True)
        assert isinstance(closing, list)
        assert len(remote) == 0

    def test_create_with_overrides_and_history(self, remote, hub):
        ts, vs = make_arrivals(120)
        sid = remote.create_stream(stream_id="h", history=(ts, vs), pane_size=8)
        snap = remote.snapshot(sid)
        assert snap.points_ingested == 120
        assert snap.config.pane_size == 8
        # The server-side hub session is the same object the wire reports on.
        assert hub.snapshot(sid).points_ingested == 120

    def test_errors_arrive_as_their_own_types(self, remote):
        with pytest.raises(UnknownStreamError):
            remote.ingest("nope", [1.0], [2.0])
        with pytest.raises(UnknownStreamError):
            remote.snapshot("nope")
        # Spec validation happens server-side and maps back by name.
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            remote.create_stream(stream_id="bad", pane_size=-1)
        # The connection survives every mapped error.
        assert remote.ping()

    def test_unknown_op_keeps_connection_alive(self, remote):
        with pytest.raises(WireProtocolError, match="unknown op"):
            remote._call("warp_core_breach", {})
        assert remote.ping()

    def test_pipelining_preserves_order_and_results(self, remote):
        ts, vs = make_arrivals(40)
        remote.create_stream(stream_id="p")
        calls = [("ingest", {"stream_id": "p", **wire.arrays_state(ts + i * 40, vs)}) for i in range(5)]
        calls.append(("len", {}))
        results = remote.call_many(calls)
        assert results[-1]["count"] == 1
        snap = remote.snapshot("p")
        assert snap.points_ingested == 200

    def test_pipelined_error_still_raises_after_batch(self, remote):
        remote.create_stream(stream_id="q")
        calls = [
            ("contains", {"stream_id": "q"}),
            ("ingest", {"stream_id": "ghost", **wire.arrays_state([1.0], [1.0])}),
            ("len", {}),
        ]
        with pytest.raises(UnknownStreamError):
            remote.call_many(calls)
        # Transport stays healthy: later calls run fine.
        assert remote.ping()


class TestConnectionLimits:
    def test_max_connections_rejected_with_named_error(self, hub):
        handle = serve(hub, max_connections=2)
        try:
            first = RemoteBackend(*handle.address)
            second = RemoteBackend(*handle.address)
            with pytest.raises(HubAtCapacityError, match="max_connections"):
                RemoteBackend(*handle.address)
            first.shutdown()
            # Capacity is released on disconnect; poll until the server
            # notices the close.
            import time

            deadline = time.monotonic() + 5.0
            third = None
            while time.monotonic() < deadline:
                try:
                    third = RemoteBackend(*handle.address)
                    break
                except HubAtCapacityError:
                    time.sleep(0.01)
            assert third is not None, "slot was never released"
            third.shutdown()
            second.shutdown()
        finally:
            handle.stop()

    def test_mid_request_disconnect_leaves_hub_consistent(self, hub, server):
        ts, vs = make_arrivals(100)
        victim = RemoteBackend(*server.address)
        victim.create_stream(stream_id="v")
        victim.ingest("v", ts, vs)
        # Send a request and slam the socket before reading the response.
        message = wire.encode_message(
            {
                "msg": "request",
                "id": 999,
                "op": "ingest",
                "args": {"stream_id": "v", **wire.arrays_state(ts + 100, vs)},
            }
        )
        victim._sock.sendall(message[: len(message) // 2])
        victim._sock.close()
        # A fresh client sees a consistent session: every *completed* op
        # applied, the half-sent one did not (its bytes never parsed).
        survivor = RemoteBackend(*server.address)
        snap = survivor.snapshot("v")
        assert snap.points_ingested == 100
        survivor.ingest("v", ts + 100, vs)
        assert survivor.snapshot("v").points_ingested == 200
        survivor.shutdown()

    def test_disconnect_after_full_request_applies_it(self, hub, server):
        ts, vs = make_arrivals(60)
        victim = RemoteBackend(*server.address)
        victim.create_stream(stream_id="w")
        # Full request on the wire, then vanish without reading the response.
        victim._sock.sendall(
            wire.encode_message(
                {
                    "msg": "request",
                    "id": 5,
                    "op": "ingest",
                    "args": {"stream_id": "w", **wire.arrays_state(ts, vs)},
                }
            )
        )
        victim._sock.close()
        survivor = RemoteBackend(*server.address)
        deadline_snap = None
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            deadline_snap = survivor.snapshot("w")
            if deadline_snap.points_ingested == 60:
                break
            time.sleep(0.01)
        assert deadline_snap.points_ingested == 60
        survivor.shutdown()


class TestHostileInput:
    def _raw(self, server):
        sock = socket.create_connection(server.address, timeout=10)
        sock.settimeout(10)
        return sock

    def _read_msg(self, sock):
        header = b""
        while len(header) < codec.WIRE_HEADER_SIZE:
            chunk = sock.recv(codec.WIRE_HEADER_SIZE - len(header))
            if not chunk:
                return None
            header += chunk
        length = codec.parse_header(header)
        payload = b""
        while len(payload) < length:
            chunk = sock.recv(length - len(payload))
            if not chunk:
                return None
            payload += chunk
        return wire.decode_payload(payload)

    def test_garbage_bytes_get_named_error_then_eof(self, server):
        sock = self._raw(server)
        assert self._read_msg(sock)["msg"] == "hello"
        sock.sendall(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
        reply = self._read_msg(sock)
        assert reply is not None and reply["msg"] == "error"
        assert reply["error"]["type"] == "WireProtocolError"
        assert "magic" in reply["error"]["message"]
        # Then the server hangs up: next read is EOF, never a hang.
        assert sock.recv(1) == b""
        sock.close()

    def test_oversized_declared_length_rejected(self, server):
        sock = self._raw(server)
        assert self._read_msg(sock)["msg"] == "hello"
        sock.sendall(codec.WIRE_MAGIC + struct.pack(">I", 2**31))
        reply = self._read_msg(sock)
        assert reply["msg"] == "error"
        assert "exceeds" in reply["error"]["message"]
        sock.close()

    def test_garbage_payload_after_valid_header(self, server):
        sock = self._raw(server)
        assert self._read_msg(sock)["msg"] == "hello"
        junk = b"\x00" * 64
        sock.sendall(codec.WIRE_MAGIC + struct.pack(">I", len(junk)) + junk)
        reply = self._read_msg(sock)
        assert reply["msg"] == "error"
        assert reply["error"]["type"] == "WireProtocolError"
        sock.close()


class TestHandshake:
    def test_hello_carries_schema_and_kind(self, remote):
        assert remote.hello["schema"] == codec.SCHEMA_VERSION
        assert remote.hello["hub_kind"] == "streamhub"
        assert remote.checkpoint_kind == "streamhub"

    def test_version_mismatch_fails_like_the_codec(self):
        """A server speaking a different schema is rejected at hello time
        with the codec's own schema diagnostic — the protocol version *is*
        the checkpoint version."""
        alien_schema = 999

        # Hand-craft a hello stamped with an alien schema version.
        manifest_payload = codec.dumps(wire.MESSAGE_KIND, {"msg": "hello"})
        # Rewrite the embedded schema integer by re-encoding at the JSON level.
        import io
        import json

        import numpy as np

        with np.load(io.BytesIO(manifest_payload), allow_pickle=False) as archive:
            manifest = json.loads(bytes(archive["manifest"]).decode())
        manifest["schema"] = alien_schema
        encoded = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, manifest=encoded)
        payload = buffer.getvalue()
        hello = codec.WIRE_MAGIC + struct.pack(">I", len(payload)) + payload

        ready = threading.Event()
        address = {}

        def alien_server():
            listener = socket.socket()
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            address["addr"] = listener.getsockname()
            ready.set()
            conn, _ = listener.accept()
            conn.sendall(hello)
            conn.recv(1)
            conn.close()
            listener.close()

        thread = threading.Thread(target=alien_server, daemon=True)
        thread.start()
        assert ready.wait(10)
        with pytest.raises(WireProtocolError) as excinfo:
            RemoteBackend(*address["addr"])
        message = str(excinfo.value)
        assert "schema version" in message
        assert str(alien_schema) in message
        assert str(codec.SCHEMA_VERSION) in message
        thread.join(10)


class TestLifecycle:
    def test_url_parse_round_trip(self, server):
        host, port = parse_tcp_url(server.url)
        assert (host, port) == server.address

    @pytest.mark.parametrize("bad", ["udp://x:1", "tcp://", "tcp://host", "tcp://host:http"])
    def test_bad_urls_rejected(self, bad):
        with pytest.raises(NetError):
            parse_tcp_url(bad)

    def test_shutdown_client_raises_cleanly(self, server):
        backend = RemoteBackend(*server.address)
        backend.shutdown()
        with pytest.raises(ConnectionClosedError):
            backend.ping()

    def test_server_stop_is_idempotent_and_clients_see_eof(self, hub):
        handle = serve(hub)
        backend = RemoteBackend(*handle.address)
        assert backend.ping()
        handle.stop()
        handle.stop()  # idempotent
        with pytest.raises((ConnectionClosedError, NetError)):
            backend.ping()
        backend.shutdown()

    def test_server_stats_counters(self, remote):
        remote.create_stream(stream_id="s")
        stats = remote.server_stats()
        assert stats["connections_open"] == 1
        assert stats["connections_served"] >= 1
        assert stats["requests_served"] >= 2
        assert stats["push_dropped"] == 0

    def test_double_start_rejected(self, hub):
        server = AsapServer(hub)
        with pytest.raises(NetError, match="not started"):
            server.address  # noqa: B018 — the property raises
