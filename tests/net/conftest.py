"""Fixtures for the network-tier tests: a live localhost server per test.

Every test in this directory runs under a **hard wall-clock watchdog**
(``signal.alarm``): a hung socket read fails the test with a stack trace
instead of hanging the suite — network tests must never be able to wedge
CI.  The limit is generous (60s; the tests themselves finish in
milliseconds) so it only ever fires on a genuine deadlock.
"""

from __future__ import annotations

import signal

import pytest

from netutil import SPEC
from repro.net.remote import RemoteBackend
from repro.net.server import serve
from repro.service import StreamHub

WATCHDOG_SECONDS = 60


@pytest.fixture(autouse=True)
def _watchdog():
    """Fail (don't hang) any net test that wedges on a socket."""

    def _fired(signum, frame):
        raise TimeoutError(
            f"net test exceeded the {WATCHDOG_SECONDS}s watchdog — "
            f"a socket read or server task is hung"
        )

    previous = signal.signal(signal.SIGALRM, _fired)
    signal.alarm(WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)



@pytest.fixture
def hub():
    return StreamHub(default_config=SPEC)


@pytest.fixture
def server(hub):
    handle = serve(hub)
    yield handle
    handle.stop()


@pytest.fixture
def remote(server):
    backend = RemoteBackend(*server.address, spec=SPEC)
    yield backend
    backend.shutdown()
