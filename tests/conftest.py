"""Shared fixtures for the test suite.

Datasets are loaded at reduced scale (structure preserved, cost bounded) and
cached per session; noise fixtures are seeded for reproducibility.

Hypothesis profiles: ``ci`` (the PR fuzz leg — derandomized so a red run is
reproducible from the log, failing examples printed as ``@reproduce_failure``
blobs) and ``nightly`` (10x examples for the cron sweep).  Select with
``HYPOTHESIS_PROFILE=ci|nightly``; unset runs the library default.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.timeseries import load

settings.register_profile("ci", derandomize=True, print_blob=True, deadline=None)
settings.register_profile("nightly", max_examples=1000, print_blob=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def taxi_small():
    """Taxi reconstruction at ~1/4 scale (daily/weekly structure intact)."""
    return load("taxi", scale=0.25)


@pytest.fixture(scope="session")
def sine_dataset():
    """The Sine dataset at full scale (it is only 800 points)."""
    return load("sine")


@pytest.fixture(scope="session")
def white_noise_series(rng):
    """Pure IID Gaussian noise — the Section 4.2 analysis setting."""
    return rng.normal(0.0, 1.0, size=4000)


@pytest.fixture(scope="session")
def periodic_series(rng):
    """Known-period sinusoid plus noise — the Section 4.3 setting."""
    t = np.arange(2400, dtype=np.float64)
    return np.sin(2 * np.pi * t / 60) + 0.3 * rng.normal(size=t.size)
