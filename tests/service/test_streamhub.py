"""Tests for the multi-tenant StreamHub serving layer."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.streaming import StreamingASAP
from repro.service import (
    HubAtCapacityError,
    HubError,
    StreamConfig,
    StreamHub,
    UnknownStreamError,
)
from repro.stream.sources import StreamPoint


def make_streams(n_streams: int, length: int, seed: int = 11) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    streams = []
    t = np.arange(length, dtype=np.float64)
    for _ in range(n_streams):
        period = float(rng.integers(8, 40))
        streams.append(np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=length))
    return streams


def drive_baseline(config: StreamConfig, values: np.ndarray) -> list:
    operator = StreamingASAP(
        pane_size=config.pane_size,
        resolution=config.resolution,
        refresh_interval=config.refresh_interval,
        strategy=config.strategy,
        max_window=config.max_window,
        seed_from_previous=config.seed_from_previous,
    )
    frames = []
    for i, v in enumerate(values):
        frames.extend(operator.push(StreamPoint(float(i), float(v))))
    return frames


def drive_hub(hub: StreamHub, ids: list[str], streams: list[np.ndarray], chunk: int):
    length = streams[0].size
    ts = np.arange(length, dtype=np.float64)
    frames: dict[str, list] = {sid: [] for sid in ids}
    i = 0
    while i < length:
        for sid, values in zip(ids, streams):
            frames[sid].extend(hub.ingest(sid, ts[i : i + chunk], values[i : i + chunk]))
        emitted = hub.tick()
        for sid in ids:
            frames[sid].extend(emitted.get(sid, []))
        i += chunk
    return frames


def assert_frames_equivalent(fresh, hub_frames):
    assert len(fresh) == len(hub_frames)
    for a, b in zip(fresh, hub_frames):
        assert a.window == b.window
        assert a.points_ingested == b.points_ingested
        assert np.array_equal(a.series.values, b.series.values)
        assert a.search.roughness == pytest.approx(b.search.roughness, rel=1e-9, abs=1e-9)


class TestLifecycle:
    def test_create_ingest_close(self):
        hub = StreamHub(default_config=StreamConfig(resolution=100))
        sid = hub.create_stream()
        assert sid in hub and len(hub) == 1
        frames = hub.ingest(sid, np.arange(30.0), np.sin(np.arange(30.0)))
        assert isinstance(frames, list)
        final = hub.close(sid)
        assert sid not in hub
        assert isinstance(final, list)
        with pytest.raises(UnknownStreamError):
            hub.close(sid)
        with pytest.raises(UnknownStreamError):
            hub.ingest(sid, [0.0], [1.0])

    def test_explicit_and_duplicate_ids(self):
        hub = StreamHub()
        assert hub.create_stream("cpu.load") == "cpu.load"
        with pytest.raises(HubError):
            hub.create_stream("cpu.load")
        auto = hub.create_stream()
        assert auto != "cpu.load"

    def test_config_overrides(self):
        hub = StreamHub(default_config=StreamConfig(pane_size=1, resolution=200))
        sid = hub.create_stream(pane_size=4, refresh_interval=5)
        snapshot = hub.snapshot(sid)
        assert snapshot.config.pane_size == 4
        assert snapshot.config.refresh_interval == 5
        assert snapshot.config.resolution == 200

    def test_snapshot_reflects_progress(self):
        hub = StreamHub(default_config=StreamConfig(resolution=50, refresh_interval=10))
        sid = hub.create_stream()
        hub.ingest(sid, np.arange(25.0), np.sin(np.arange(25.0)))
        snapshot = hub.snapshot(sid)
        assert snapshot.points_ingested == 25
        assert snapshot.panes == 25
        assert snapshot.refresh_count >= 1
        assert snapshot.stream_id == sid

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamHub(max_sessions=0)
        with pytest.raises(ValueError):
            StreamHub(max_panes_per_session=0)
        with pytest.raises(ValueError):
            StreamHub(eviction_policy="fifo")
        with pytest.raises(ValueError):
            StreamHub(idle_ticks_before_eviction=0)


class TestParityWithLoopedStreaming:
    def test_hub_frames_match_looped_operators(self):
        # The headline contract: a hub serving N streams emits, per stream,
        # exactly the frames an independent per-point StreamingASAP would.
        config = StreamConfig(pane_size=2, resolution=150, refresh_interval=15)
        streams = make_streams(8, 900)
        hub = StreamHub(default_config=config)
        ids = [hub.create_stream() for _ in streams]
        hub_frames = drive_hub(hub, ids, streams, chunk=60)  # aligned: defers to tick
        for sid, values in zip(ids, streams):
            assert_frames_equivalent(drive_baseline(config, values), hub_frames[sid])

    def test_parity_with_unaligned_chunks(self):
        # Chunks that cross refresh boundaries mid-batch refresh inline and
        # must still land on identical buffer states.
        config = StreamConfig(pane_size=1, resolution=120, refresh_interval=11)
        streams = make_streams(4, 700, seed=23)
        hub = StreamHub(default_config=config)
        ids = [hub.create_stream() for _ in streams]
        hub_frames = drive_hub(hub, ids, streams, chunk=37)
        for sid, values in zip(ids, streams):
            assert_frames_equivalent(drive_baseline(config, values), hub_frames[sid])

    def test_grid_strategy_coalescing_is_exact(self):
        config = StreamConfig(pane_size=1, resolution=90, refresh_interval=30, strategy="grid2")
        streams = make_streams(6, 600, seed=37)
        hub = StreamHub(default_config=config)
        ids = [hub.create_stream() for _ in streams]
        hub_frames = drive_hub(hub, ids, streams, chunk=30)
        for sid, values in zip(ids, streams):
            assert_frames_equivalent(drive_baseline(config, values), hub_frames[sid])
        stats = hub.stats
        assert stats.grid_kernel_calls > 0
        assert stats.refreshes_coalesced > stats.grid_kernel_calls  # many streams per call


class TestBackpressureAndEviction:
    def test_lru_eviction_at_capacity(self):
        hub = StreamHub(max_sessions=3, default_config=StreamConfig(resolution=50))
        first, second, third = (hub.create_stream() for _ in range(3))
        hub.tick()  # advance the clock so activity ordering is visible
        hub.ingest(first, [0.0], [1.0])  # first is now the most recent
        fourth = hub.create_stream()
        assert len(hub) == 3
        assert second not in hub  # least recently active went first
        assert first in hub and third in hub and fourth in hub
        assert hub.stats.sessions_evicted == 1

    def test_reject_policy(self):
        hub = StreamHub(max_sessions=2, eviction_policy="reject")
        hub.create_stream()
        hub.create_stream()
        with pytest.raises(HubAtCapacityError):
            hub.create_stream()
        assert hub.stats.sessions_evicted == 0

    def test_max_panes_per_session(self):
        hub = StreamHub(max_panes_per_session=256)
        with pytest.raises(HubError):
            hub.create_stream(resolution=1000)
        hub.create_stream(resolution=256)  # at the bound is fine

    def test_idle_eviction_on_tick(self):
        hub = StreamHub(
            idle_ticks_before_eviction=2,
            default_config=StreamConfig(resolution=50),
        )
        active = hub.create_stream()
        idle = hub.create_stream()
        for i in range(4):
            hub.ingest(active, [float(i)], [1.0])
            hub.tick()
        assert active in hub
        assert idle not in hub
        assert hub.stats.sessions_evicted == 1

    def test_stats_accounting(self):
        hub = StreamHub(default_config=StreamConfig(resolution=60, refresh_interval=10))
        sid = hub.create_stream()
        hub.ingest(sid, np.arange(40.0), np.sin(np.arange(40.0)))
        hub.tick()
        hub.close(sid)
        stats = hub.stats
        assert stats.sessions_created == 1
        assert stats.sessions_closed == 1
        assert stats.points_ingested == 40
        assert stats.frames_emitted >= 1
        assert stats.ticks == 1


class TestThreadSafety:
    def test_concurrent_ingest_across_streams(self):
        hub = StreamHub(default_config=StreamConfig(resolution=100, refresh_interval=10))
        streams = make_streams(8, 400, seed=91)
        ids = [hub.create_stream() for _ in streams]
        ts = np.arange(400, dtype=np.float64)

        def feed(pair):
            sid, values = pair
            collected = []
            for i in range(0, 400, 25):
                collected.extend(hub.ingest(sid, ts[i : i + 25], values[i : i + 25]))
            collected.extend(f for frames in [hub.tick()] for f in frames.get(sid, []))
            return sid, collected

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = dict(pool.map(feed, zip(ids, streams)))
        assert hub.stats.points_ingested == 8 * 400
        for sid in ids:
            # every stream made progress and its own frames arrived in order
            assert hub.snapshot(sid).points_ingested == 400
            indices = [f.refresh_index for f in results[sid]]
            assert indices == sorted(indices)

    def test_ingest_racing_close_is_rejected(self):
        # A close() that lands between ingest's registry lookup and its
        # session-lock acquisition must make the ingest fail, not silently
        # feed an orphaned operator.
        hub = StreamHub(default_config=StreamConfig(resolution=50))
        sid = hub.create_stream()
        stale = hub._sessions[sid]
        hub.close(sid)
        assert stale.closed
        # Simulate the race: the lookup resolved before close() removed it.
        hub._get = lambda _sid: stale
        with pytest.raises(UnknownStreamError):
            hub.ingest(sid, [0.0], [1.0])
        assert hub.stats.points_ingested == 0
        with pytest.raises(UnknownStreamError):
            hub.snapshot(sid)

    def test_concurrent_create_and_close(self):
        hub = StreamHub(max_sessions=64)
        barrier = threading.Barrier(4)

        def churn(worker: int):
            barrier.wait()
            for i in range(20):
                sid = hub.create_stream(f"w{worker}-{i}", resolution=50)
                hub.ingest(sid, [float(i)], [float(i)])
                hub.close(sid)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(hub) == 0
        assert hub.stats.sessions_created == 80
        assert hub.stats.sessions_closed == 80

    def test_stale_prefill_is_discarded(self):
        # If data lands between a tick's grouping pass and a session's
        # refresh, the pre-filled cache no longer matches the window and must
        # be ignored, not trusted.
        from repro.core.smoothing import EvaluationCache

        config = StreamConfig(pane_size=1, resolution=60, refresh_interval=20, strategy="grid2")
        ts = np.arange(60.0)
        vs = np.sin(ts / 3.0) + 0.1 * np.cos(ts)
        reference = StreamConfig(**{**config.__dict__, "incremental": False}).build_operator()
        expected = reference.push_many(ts[:40], vs[:40])

        operator = config.build_operator()
        operator.push_many(ts[:40], vs[:40], defer_boundary=True)
        assert operator.refresh_due
        stale = EvaluationCache(np.zeros(40))  # right size, wrong contents
        stale.seed_original(0.0, 0.0)
        frame = operator.refresh_if_due(cache=stale)
        assert frame is not None
        assert frame.window == expected[-1].window
        assert np.array_equal(frame.series.values, expected[-1].series.values)
