"""Tests for StreamHub multi-resolution serving (snapshot(resolution=...))."""

from __future__ import annotations

import numpy as np
import pytest

from repro import smooth
from repro.core.preaggregation import bucket_means
from repro.service import HubError, ResolutionSnapshot, StreamConfig, StreamHub
from repro.timeseries import TimeSeries


def make_hub(n: int = 24_000, seed: int = 5, **config):
    defaults = dict(pane_size=6, resolution=1024, refresh_interval=32)
    defaults.update(config)
    hub = StreamHub(default_config=StreamConfig(**defaults))
    sid = hub.create_stream("metric")
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.sin(2 * np.pi * t / 700) + 0.3 * rng.normal(size=n)
    for start in range(0, n, 1536):
        hub.ingest(sid, t[start : start + 1536], values[start : start + 1536])
        hub.tick()
    return hub, sid


class TestResolutionSnapshot:
    def test_returns_resolution_snapshot(self):
        hub, sid = make_hub()
        snap = hub.snapshot(sid, resolution=128)
        assert isinstance(snap, ResolutionSnapshot)
        assert snap.resolution == 128
        assert snap.window >= 1
        assert snap.series.values.size >= 1

    def test_equivalent_to_direct_pipeline_on_preaggregated_span(self):
        # The acceptance criterion: the snapshot must equal running the
        # from-scratch operator on the directly pre-aggregated series.
        hub, sid = make_hub()
        operator = hub._sessions["metric"].operator
        for resolution in (64, 100, 128, 256, 500):
            snap = hub.snapshot(sid, resolution=resolution)
            pyramid = operator.pyramid
            base = pyramid.base_values()
            times = pyramid.base_timestamps()
            start = snap.base_start - pyramid.window_start
            stop = snap.base_end - pyramid.window_start
            direct_values = bucket_means(base[start:stop], snap.ratio)
            direct_times = times[start:stop:snap.ratio][: direct_values.size]
            direct = smooth(
                TimeSeries(direct_values, direct_times), use_preaggregation=False
            )
            assert direct.window == snap.window
            scale = max(1.0, float(np.abs(direct.series.values).max()))
            assert (
                np.abs(direct.series.values - snap.series.values).max() <= 1e-9 * scale
            )

    def test_window_unit_translations(self):
        hub, sid = make_hub()
        snap = hub.snapshot(sid, resolution=128)
        assert snap.window_base_units == snap.window * snap.ratio
        assert snap.window_original_units == snap.window * snap.ratio * 6  # pane_size

    def test_many_widths_one_session(self):
        hub, sid = make_hub()
        widths = (64, 100, 128, 256)
        snaps = [hub.snapshot(sid, resolution=w) for w in widths]
        ratios = {snap.ratio for snap in snaps}
        assert len(ratios) == len(widths)  # genuinely different views
        assert hub.stats.views_served == len(widths)
        assert len(hub) == 1  # still one session

    def test_view_cache_until_new_panes(self):
        hub, sid = make_hub()
        first = hub.snapshot(sid, resolution=100)
        second = hub.snapshot(sid, resolution=100)
        assert second is first
        assert hub.stats.view_cache_hits == 1
        # New data invalidates the cache.
        t = np.arange(24_000, 24_600, dtype=np.float64)
        hub.ingest(sid, t, np.zeros(t.size))
        hub.tick()
        third = hub.snapshot(sid, resolution=100)
        assert third is not first

    def test_session_max_window_bounds_views_in_pane_units(self):
        hub, sid = make_hub(max_window=40)
        for resolution in (64, 256, 500):
            snap = hub.snapshot(sid, resolution=resolution)
            assert snap.window_base_units <= 40 or snap.window == 1

    def test_max_window_too_small_serves_unsmoothed(self):
        hub, sid = make_hub(max_window=5)
        snap = hub.snapshot(sid, resolution=64)  # ratio 16 > max_window
        assert snap.window == 1
        assert snap.search is None
        assert snap.series.values.size == snap.view_length

    def test_view_cache_bounded_and_stale_purged(self):
        hub, sid = make_hub()
        session = hub._sessions["metric"]
        for width in range(10, 10 + 2 * StreamHub.MAX_CACHED_VIEWS_PER_SESSION):
            hub.snapshot(sid, resolution=width)
        assert len(session.view_cache) <= StreamHub.MAX_CACHED_VIEWS_PER_SESSION
        # New data makes every cached entry stale; the next insert purges them.
        t = np.arange(24_000, 24_600, dtype=np.float64)
        hub.ingest(sid, t, np.zeros(t.size))
        hub.tick()
        hub.snapshot(sid, resolution=100)
        assert len(session.view_cache) == 1

    def test_include_partial(self):
        hub, sid = make_hub()
        snap = hub.snapshot(sid, resolution=100, include_partial=True)
        if snap.partial_points:
            assert snap.base_end - snap.base_start > snap.ratio * (snap.view_length - 1)

    def test_legacy_snapshot_unchanged(self):
        hub, sid = make_hub()
        snap = hub.snapshot(sid)
        assert snap.stream_id == sid
        assert snap.panes == 1024


class TestErrors:
    def test_pyramid_disabled_names_remediation(self):
        hub, sid = make_hub(pyramid=False)
        with pytest.raises(HubError, match="pyramid=True"):
            hub.snapshot(sid, resolution=100)

    def test_insufficient_data(self):
        hub = StreamHub(default_config=StreamConfig(pane_size=1, resolution=100))
        sid = hub.create_stream()
        hub.ingest(sid, np.arange(5.0), np.ones(5))
        with pytest.raises(HubError, match="ingest more data"):
            hub.snapshot(sid, resolution=2)

    def test_bad_resolution(self):
        hub, sid = make_hub()
        with pytest.raises(HubError, match=">= 1"):
            hub.snapshot(sid, resolution=0)


class TestPaneBudgetValidation:
    def test_message_names_both_remedies(self):
        hub = StreamHub(max_panes_per_session=256)
        with pytest.raises(HubError, match="raise the hub's max_panes_per_session"):
            hub.create_stream(resolution=1000)
        with pytest.raises(HubError, match="lower the stream's resolution"):
            hub.create_stream(resolution=257)

    def test_boundary_resolution_equal_to_budget_accepted(self):
        hub = StreamHub(max_panes_per_session=256)
        sid = hub.create_stream(resolution=256)
        assert sid in hub
        assert hub.snapshot(sid).config.resolution == 256

    def test_explicit_default_config_over_budget_fails_fast(self):
        with pytest.raises(HubError, match="max_panes_per_session"):
            StreamHub(
                max_panes_per_session=100,
                default_config=StreamConfig(resolution=200),
            )

    def test_builtin_default_config_not_preemptively_validated(self):
        # A small pane budget with per-stream resolutions keeps working.
        hub = StreamHub(max_panes_per_session=256)
        assert hub.create_stream(resolution=128) in hub
