"""Tests for the multi-series batch engine.

The headline property is the equivalence guarantee: ``smooth_many`` must
return results *bit-identical* to looping :func:`repro.core.batch.smooth`
over the batch, for every strategy and input shape — dataclass equality on
:class:`SmoothingResult` compares every float exactly and
:class:`TimeSeries` equality compares arrays element for element.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TimeSeries, smooth, smooth_many
from repro.core.search import STRATEGIES
from repro.engine import ACFCache, BatchEngine, BatchResult


@pytest.fixture(scope="module")
def batch_series():
    rng = np.random.default_rng(2024)
    series = []
    for index in range(10):
        t = np.arange(2400, dtype=np.float64)
        period = rng.integers(15, 200)
        values = np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=t.size)
        if index % 3 == 0:
            values[rng.integers(0, t.size)] += 8.0  # an outlier series
        series.append(values)
    return series


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_equals_looped_smooth_for_every_strategy(self, batch_series, strategy):
        looped = [smooth(s, resolution=300, strategy=strategy) for s in batch_series]
        batched = smooth_many(batch_series, resolution=300, strategy=strategy)
        assert len(batched) == len(looped)
        for single, many in zip(looped, batched):
            assert single == many  # exact dataclass equality, float for float

    def test_equals_looped_smooth_without_preaggregation(self, batch_series):
        short = [s[:900] for s in batch_series[:4]]
        looped = [
            smooth(s, resolution=300, strategy="grid2", use_preaggregation=False)
            for s in short
        ]
        batched = smooth_many(
            short, resolution=300, strategy="grid2", use_preaggregation=False
        )
        assert all(a == b for a, b in zip(looped, batched))

    def test_thread_workers_preserve_results_and_order(self, batch_series):
        looped = [smooth(s, resolution=300) for s in batch_series]
        batched = smooth_many(batch_series, resolution=300, workers=3)
        assert all(a == b for a, b in zip(looped, batched))

    def test_process_workers_preserve_results(self, batch_series):
        small = batch_series[:3]
        looped = [smooth(s, resolution=300) for s in small]
        batched = smooth_many(
            small, resolution=300, workers=2, executor="process"
        )
        assert all(a == b for a, b in zip(looped, batched))

    def test_ragged_same_cohort_batch_uses_fast_path_and_matches(self, batch_series):
        # 2400 points at ratio 8 and 1200 points at ratio 4 both search 300
        # values — one ratio cohort, one shared kernel call.
        ragged = [batch_series[0], batch_series[1][:1200]]
        result = smooth_many(ragged, resolution=300, strategy="grid2")
        assert result.stats.used_fast_path
        assert result.stats.ratio_cohorts == 1
        assert result[0] == smooth(ragged[0], resolution=300, strategy="grid2")
        assert result[1] == smooth(ragged[1], resolution=300, strategy="grid2")

    def test_ragged_multi_cohort_batch_matches(self, batch_series):
        # Three searched lengths, two of them shared: cohorts {300: 3, 333: 2,
        # 250: 1} -> two shared kernel calls plus one singleton.
        ragged = [
            batch_series[0],            # 2400 -> ratio 8 -> 300
            batch_series[1][:1200],     # 1200 -> ratio 4 -> 300
            batch_series[2][:2100],     # 2100 -> ratio 7 -> 300
            batch_series[3][:999],      # 999  -> ratio 3 -> 333
            batch_series[4][:1998],     # 1998 -> ratio 6 -> 333
            batch_series[5][:250],      # 250  -> under-oversampled -> 250
        ]
        result = smooth_many(ragged, resolution=300, strategy="grid10")
        assert result.stats.used_fast_path
        assert result.stats.ratio_cohorts == 2
        for series, out in zip(ragged, result):
            assert out == smooth(series, resolution=300, strategy="grid10")

    def test_all_singleton_cohorts_fall_back_and_match(self, batch_series):
        ragged = [batch_series[0], batch_series[1][:1000]]  # 300 vs 333
        result = smooth_many(ragged, resolution=300, strategy="grid2")
        assert not result.stats.used_fast_path
        assert result.stats.ratio_cohorts == 0
        assert result[0] == smooth(ragged[0], resolution=300, strategy="grid2")
        assert result[1] == smooth(ragged[1], resolution=300, strategy="grid2")


class TestInputShapes:
    def test_two_dimensional_array(self, batch_series):
        stacked = np.vstack(batch_series[:5])
        result = smooth_many(stacked, resolution=300, strategy="grid10")
        assert isinstance(result, BatchResult)
        assert result.labels == tuple(str(i) for i in range(5))
        for i in range(5):
            assert result[i] == smooth(stacked[i], resolution=300, strategy="grid10")

    def test_mapping_input_round_trips_labels(self, batch_series):
        named = {"cpu": batch_series[0], "memory": batch_series[1]}
        result = smooth_many(named, resolution=300)
        assert set(result.as_dict()) == {"cpu", "memory"}
        assert result["cpu"] == smooth(batch_series[0], resolution=300)
        with pytest.raises(KeyError):
            result["disk"]

    def test_timeseries_inputs_keep_names_and_timestamps(self, batch_series):
        series = [
            TimeSeries(values, timestamps=np.arange(values.size) * 2.5, name=f"m{i}")
            for i, values in enumerate(batch_series[:3])
        ]
        result = smooth_many(series, resolution=300, strategy="grid2")
        assert result.labels == ("m0", "m1", "m2")
        for item, out in zip(series, result):
            assert out == smooth(item, resolution=300, strategy="grid2")

    def test_single_series_rejected_with_guidance(self, batch_series):
        with pytest.raises(TypeError, match="wrap a single series in a list"):
            smooth_many(batch_series[0], resolution=300)
        with pytest.raises(TypeError, match="wrap a single series in a list"):
            smooth_many(TimeSeries(batch_series[0]), resolution=300)

    def test_string_batch_rejected(self):
        # str is a Sequence; it must not be iterated character by character.
        with pytest.raises(TypeError, match="got str"):
            smooth_many("abcd", resolution=300)


class TestErrorReporting:
    def test_too_short_series_identified_by_label(self, batch_series):
        batch = {"healthy": batch_series[0], "stub": np.ones(3)}
        with pytest.raises(ValueError, match="stub"):
            smooth_many(batch, resolution=300)

    def test_too_short_series_identified_by_index(self):
        batch = [np.ones(3), np.ones(3)]
        with pytest.raises(ValueError, match="batch index 0"):
            smooth_many(batch, resolution=300, strategy="grid2", max_window=50)

    def test_engine_validates_configuration(self):
        with pytest.raises(ValueError, match="resolution"):
            BatchEngine(resolution=0)
        with pytest.raises(ValueError, match="executor"):
            BatchEngine(executor="fiber")
        with pytest.raises(ValueError, match="workers"):
            BatchEngine(workers=-1)


class TestStatsAndCaches:
    def test_stats_fields(self, batch_series):
        result = smooth_many(batch_series, resolution=300, strategy="grid2")
        stats = result.stats
        assert stats.n_series == len(batch_series)
        assert stats.wall_seconds > 0
        assert stats.series_per_second > 0
        assert stats.strategy == "grid2"
        assert stats.used_fast_path

    def test_acf_cache_shared_across_refreshes(self, batch_series):
        engine = BatchEngine(resolution=300, strategy="asap")
        first = engine.smooth_many(batch_series)
        second = engine.smooth_many(batch_series)
        assert first.stats.acf_cache_misses == len(batch_series)
        assert second.stats.acf_cache_hits == len(batch_series)
        # Cached analyses change nothing about the results.
        assert all(a == b for a, b in zip(first.results, second.results))

    def test_acf_cache_eviction_bound(self, rng):
        cache = ACFCache(maxsize=2)
        for offset in range(4):
            cache.get_or_compute(rng.normal(size=64) + offset, max_lag=6)
        assert len(cache) == 2
        assert cache.misses == 4

    def test_acf_cache_hit_returns_same_analysis(self, rng):
        cache = ACFCache()
        values = rng.normal(size=128)
        first = cache.get_or_compute(values, max_lag=12)
        second = cache.get_or_compute(values, max_lag=12)
        assert first is second
        assert cache.hits == 1

    def test_grid_strategies_use_fast_path_and_asap_does_not(self, batch_series):
        for strategy, expect_fast in (("grid10", True), ("asap", False)):
            result = smooth_many(batch_series, resolution=300, strategy=strategy)
            assert result.stats.used_fast_path == expect_fast
