"""Tests for the ShardedHub: API parity, equivalence, rebalance, recovery.

Most tests run the in-process backend (deterministic, coverage-visible); a
small marked set exercises the real ``multiprocessing`` backend end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    ShardDownError,
    ShardedHub,
    ShardProtocolError,
)
from repro.persist.codec import CheckpointError
from repro.service import StreamConfig, StreamHub, UnknownStreamError

CONFIG = StreamConfig(pane_size=4, resolution=100, refresh_interval=8)
CHUNK = 96


def make_traffic(n_streams=8, length=1600, seed=13):
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    return t, {
        f"s{i}": np.sin(2 * np.pi * t / 120) + 0.3 * rng.normal(size=length)
        for i in range(n_streams)
    }


def drive_rounds(hub, ts, traffic, lo, hi, buffered=True, on_round=None):
    """Feed [lo, hi) in CHUNK rounds; returns frames keyed by stream id."""
    frames = {sid: [] for sid in traffic}
    for round_no, start in enumerate(range(lo, hi, CHUNK)):
        if on_round is not None:
            on_round(round_no, hub)
        stop = min(start + CHUNK, hi)
        for sid, values in traffic.items():
            emitted = hub.ingest(sid, ts[start:stop], values[start:stop], buffered=buffered)
            frames[sid].extend(emitted)
        for sid, emitted in hub.tick().items():
            frames[sid].extend(emitted)
    return frames


def single_hub_frames(ts, traffic, lo=0, hi=None):
    hi = ts.size if hi is None else hi
    hub = StreamHub(default_config=CONFIG)
    frames = {sid: [] for sid in traffic}
    for sid in traffic:
        hub.create_stream(sid)
    for start in range(lo, hi, CHUNK):
        stop = min(start + CHUNK, hi)
        for sid, values in traffic.items():
            frames[sid].extend(hub.ingest(sid, ts[start:stop], values[start:stop]))
        for sid, emitted in hub.tick().items():
            frames[sid].extend(emitted)
    return frames


def assert_frames_equal(reference, candidate):
    assert set(reference) == set(candidate)
    for sid in reference:
        assert len(reference[sid]) == len(candidate[sid]), sid
        for a, b in zip(reference[sid], candidate[sid]):
            assert a.window == b.window
            assert np.array_equal(a.series.values, b.series.values)


@pytest.fixture
def cluster():
    hub = ShardedHub(shards=3, backend="inprocess", default_config=CONFIG)
    yield hub
    hub.shutdown()


# -- equivalence ---------------------------------------------------------------


@pytest.mark.parametrize("buffered", [True, False])
def test_sharded_frames_bit_identical_to_single_hub(cluster, buffered):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)
    frames = drive_rounds(cluster, ts, traffic, 0, ts.size, buffered=buffered)
    assert_frames_equal(single_hub_frames(ts, traffic), frames)


def test_streams_are_spread_across_shards(cluster):
    ts, traffic = make_traffic(n_streams=32)
    for sid in traffic:
        cluster.create_stream(sid)
    owners = {cluster.shard_of(sid) for sid in traffic}
    assert len(owners) > 1
    assert sum(s.sessions_active for s in cluster.shard_stats().values()) == 32


# -- API parity ----------------------------------------------------------------


def test_streamhub_api_surface(cluster):
    ts, traffic = make_traffic(n_streams=2)
    ids = sorted(traffic)
    for sid in ids:
        assert cluster.create_stream(sid) == sid
    assert len(cluster) == 2
    assert ids[0] in cluster and "ghost" not in cluster
    assert cluster.stream_ids() == ids

    drive_rounds(cluster, ts, traffic, 0, 800)
    snap = cluster.snapshot(ids[0])
    assert snap.stream_id == ids[0] and snap.panes > 0
    view = cluster.snapshot(ids[0], resolution=25)
    assert view.resolution == 25 and view.series.values.size > 0

    stats = cluster.stats
    assert stats.sessions_active == 2
    assert stats.points_ingested == 2 * 800
    assert stats.ticks > 0

    frames = cluster.close(ids[0], flush=True)
    assert isinstance(frames, list)
    assert ids[0] not in cluster
    with pytest.raises(UnknownStreamError):
        cluster.snapshot(ids[0])


def test_auto_ids_and_duplicate_rejection(cluster):
    sid = cluster.create_stream()
    assert sid.startswith("stream-")
    with pytest.raises(ClusterError, match="already exists"):
        cluster.create_stream(sid)


def test_create_with_config_and_overrides(cluster):
    sid = cluster.create_stream(config=CONFIG, pane_size=2)
    assert cluster.snapshot(sid).config.pane_size == 2


def test_unknown_stream_everywhere(cluster):
    with pytest.raises(UnknownStreamError):
        cluster.ingest("ghost", [0.0], [1.0])
    with pytest.raises(UnknownStreamError):
        cluster.close("ghost")
    with pytest.raises(UnknownStreamError):
        cluster.shard_of("ghost")


def test_constructor_validation():
    with pytest.raises(ValueError, match="shards"):
        ShardedHub(shards=0)
    with pytest.raises(ValueError, match="backend"):
        ShardedHub(shards=1, backend="carrier-pigeon")


# -- rebalancing ---------------------------------------------------------------


def test_add_shard_migrates_and_preserves_frames(cluster):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)

    def grow(round_no, hub):
        if round_no == 6:
            hub.add_shard()

    frames = drive_rounds(cluster, ts, traffic, 0, ts.size, on_round=grow)
    assert len(cluster.shard_ids) == 4
    assert cluster.streams_migrated > 0
    assert_frames_equal(single_hub_frames(ts, traffic), frames)
    # Migrated sessions stay consistent with the ring.
    for sid in traffic:
        assert cluster.shard_of(sid) == cluster._ring.node_for(sid)


def test_remove_shard_migrates_and_preserves_frames(cluster):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)

    def shrink(round_no, hub):
        if round_no == 6:
            hub.remove_shard(hub.shard_ids[0])

    frames = drive_rounds(cluster, ts, traffic, 0, ts.size, on_round=shrink)
    assert len(cluster.shard_ids) == 2
    assert_frames_equal(single_hub_frames(ts, traffic), frames)


def test_remove_shard_flushes_buffered_ingests_first(cluster):
    ts, traffic = make_traffic(n_streams=6, length=400)
    for sid in traffic:
        cluster.create_stream(sid)
    for sid, values in traffic.items():
        cluster.ingest(sid, ts[:100], values[:100], buffered=True)
    cluster.remove_shard(cluster.shard_ids[0])
    cluster.tick()  # delivers the surviving shards' still-buffered batches
    # Nothing dropped: every stream holds its 100 points (migrated sessions
    # carried theirs), and the aggregate counter includes the retired shard.
    for sid in traffic:
        assert cluster.snapshot(sid).points_ingested == 100
    assert cluster.stats.points_ingested == 6 * 100


def test_shard_membership_validation(cluster):
    with pytest.raises(ClusterError, match="no shard"):
        cluster.remove_shard("ghost")
    with pytest.raises(ClusterError, match="no shard"):
        cluster.kill_shard("ghost")
    with pytest.raises(ClusterError, match="no shard"):
        cluster.drop_shard("ghost")
    with pytest.raises(ClusterError, match="already exists"):
        cluster.add_shard(cluster.shard_ids[0])
    lonely = ShardedHub(shards=1, backend="inprocess")
    with pytest.raises(ClusterError, match="last shard"):
        lonely.remove_shard(lonely.shard_ids[0])
    with pytest.raises(ClusterError, match="last shard"):
        lonely.drop_shard(lonely.shard_ids[0])


def test_add_shard_with_buffered_ingests_loses_nothing(cluster):
    # Regression: buffered batches queued under a stream's old owner must be
    # delivered before the stream migrates, and their inline frames must
    # still surface at the next tick.
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)

    def grow(round_no, hub):
        if round_no == 6:
            # Buffer a full round *then* rebalance, so pending batches exist
            # for streams that are about to move.
            start = 6 * CHUNK
            for sid, values in traffic.items():
                span = slice(start, start + CHUNK)
                hub.ingest(sid, ts[span], values[span], buffered=True)
            hub.add_shard()

    frames = {sid: [] for sid in traffic}
    for round_no, start in enumerate(range(0, ts.size, CHUNK)):
        grow(round_no, cluster)
        if round_no == 6:
            # This round's data was buffered inside grow(); just tick.
            for sid, emitted in cluster.tick().items():
                frames[sid].extend(emitted)
            continue
        stop = min(start + CHUNK, ts.size)
        for sid, values in traffic.items():
            cluster.ingest(sid, ts[start:stop], values[start:stop], buffered=True)
        for sid, emitted in cluster.tick().items():
            frames[sid].extend(emitted)
    assert cluster.streams_migrated > 0
    assert_frames_equal(single_hub_frames(ts, traffic), frames)


def test_close_with_flush_delivers_buffered_ingests(cluster):
    # Regression: close(flush=True) must deliver the stream's buffered
    # batches first — same frames as a single StreamHub ingest + close.
    ts, traffic = make_traffic(n_streams=1, length=400)
    (sid,) = traffic
    cluster.create_stream(sid)
    cluster.ingest(sid, ts, traffic[sid], buffered=True)
    frames = cluster.close(sid, flush=True)

    single = StreamHub(default_config=CONFIG)
    single.create_stream(sid)
    expected = single.ingest(sid, ts, traffic[sid])
    expected += single.close(sid, flush=True)
    assert len(frames) == len(expected) > 0
    for a, b in zip(expected, frames):
        assert a.window == b.window
        assert np.array_equal(a.series.values, b.series.values)


def test_close_without_flush_discards_buffered_ingests(cluster):
    ts, traffic = make_traffic(n_streams=1, length=400)
    (sid,) = traffic
    cluster.create_stream(sid)
    cluster.ingest(sid, ts, traffic[sid], buffered=True)
    assert cluster.close(sid, flush=False) == []
    assert cluster.stats.points_ingested == 0


def test_shard_side_eviction_reconciles_placement_map():
    # Regression: a shard evicting sessions autonomously (LRU capacity) must
    # not leave the coordinator's map stale — the id must become reusable.
    hub = ShardedHub(
        shards=1, backend="inprocess", max_sessions_per_shard=2, default_config=CONFIG
    )
    for sid in ("a", "b", "c"):
        hub.create_stream(sid)  # the shard silently LRU-evicts "a"
    assert len(hub) == 3  # stale until the next reply carries live ids
    hub.tick()
    assert len(hub) == 2 and "a" not in hub
    assert hub.create_stream("a") == "a"  # the id is reusable again
    hub.shutdown()


def test_buffered_ingest_for_evicted_stream_is_dropped_like_single_hub():
    hub = ShardedHub(
        shards=1, backend="inprocess", max_sessions_per_shard=2, default_config=CONFIG
    )
    ts, traffic = make_traffic(n_streams=2, length=200)
    for sid in traffic:
        hub.create_stream(sid)
    victim = sorted(traffic)[0]
    hub.ingest(victim, ts[:50], traffic[victim][:50], buffered=True)
    hub.create_stream("newcomer")  # LRU-evicts `victim` with a batch pending
    hub.tick()  # must not blow up the whole shard's tick
    assert victim not in hub
    with pytest.raises(UnknownStreamError):
        hub.snapshot(victim)
    hub.shutdown()


def test_direct_operations_heal_placement_after_eviction():
    hub = ShardedHub(
        shards=1, backend="inprocess", max_sessions_per_shard=2, default_config=CONFIG
    )
    for sid in ("a", "b", "c"):
        hub.create_stream(sid)
    with pytest.raises(UnknownStreamError):
        hub.snapshot("a")  # shard evicted it; the failed call heals the map
    assert "a" not in hub
    hub.shutdown()


# -- crash recovery ------------------------------------------------------------


def test_kill_drop_restore_streams(cluster):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)
    drive_rounds(cluster, ts, traffic, 0, 800)
    blob = cluster.checkpoint()

    victim = cluster.shard_of(next(iter(traffic)))
    cluster.kill_shard(victim)
    with pytest.raises(ShardDownError) as excinfo:
        drive_rounds(cluster, ts, traffic, 800, 800 + CHUNK)
    assert victim in excinfo.value.shard_ids

    lost = cluster.drop_shard(victim)
    assert lost and victim not in cluster.shard_ids
    restored = cluster.restore_streams(blob, lost)
    assert sorted(restored) == sorted(lost)
    # Everything serves again; restored streams resume from the checkpoint.
    for sid in traffic:
        assert cluster.snapshot(sid).panes > 0

    # The restored streams' future frames are bit-identical to an
    # uninterrupted run fed the same post-checkpoint points.
    reference = single_hub_frames(ts, traffic)
    head = single_hub_frames(ts, traffic, hi=800)
    tails = {sid: reference[sid][len(head[sid]) :] for sid in lost}
    lost_traffic = {sid: traffic[sid] for sid in lost}
    frames = drive_rounds(cluster, ts, lost_traffic, 800, ts.size)
    assert_frames_equal(tails, frames)


def test_restore_streams_defaults_to_missing(cluster):
    ts, traffic = make_traffic(n_streams=4, length=400)
    for sid in traffic:
        cluster.create_stream(sid)
    drive_rounds(cluster, ts, traffic, 0, 400)
    blob = cluster.checkpoint()
    closed = sorted(traffic)[:2]
    for sid in closed:
        cluster.close(sid, flush=False)
    restored = cluster.restore_streams(blob)
    assert sorted(restored) == closed


def test_restore_streams_rejects_live_and_unknown(cluster):
    ts, traffic = make_traffic(n_streams=2, length=400)
    for sid in traffic:
        cluster.create_stream(sid)
    blob = cluster.checkpoint()
    live = next(iter(traffic))
    with pytest.raises(ClusterError, match="already being served"):
        cluster.restore_streams(blob, [live])
    cluster.close(live, flush=False)
    with pytest.raises(CheckpointError, match="no session"):
        cluster.restore_streams(blob, ["never-existed"])


def test_dead_shard_surfaces_on_direct_operations(cluster):
    sid = cluster.create_stream()
    owner = cluster.shard_of(sid)
    cluster.kill_shard(owner)
    with pytest.raises(ShardDownError):
        cluster.ingest(sid, [0.0], [1.0])
    with pytest.raises(ShardDownError):
        cluster.snapshot(sid)
    with pytest.raises(ShardDownError):
        _ = cluster.stats  # the property fans out to every shard


def test_tick_attaches_partial_frames_on_shard_death(cluster):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)
    drive_rounds(cluster, ts, traffic, 0, 800)
    victim = cluster.shard_of(next(iter(traffic)))
    survivors = {sid for sid in traffic if cluster.shard_of(sid) != victim}
    cluster.kill_shard(victim)
    for sid, values in traffic.items():
        cluster.ingest(sid, ts[800 : 800 + CHUNK], values[800 : 800 + CHUNK], buffered=True)
    with pytest.raises(ShardDownError) as excinfo:
        cluster.tick()
    assert set(excinfo.value.partial_frames) <= survivors


# -- durability ----------------------------------------------------------------


def test_cluster_checkpoint_restore_round_trip(tmp_path, cluster):
    ts, traffic = make_traffic()
    for sid in traffic:
        cluster.create_stream(sid)
    frames_head = drive_rounds(cluster, ts, traffic, 0, 800)
    path = cluster.checkpoint(tmp_path / "cluster.npz")
    assert path.exists()

    restored = ShardedHub.restore(path)
    assert restored.backend == "inprocess"
    assert sorted(restored.stream_ids()) == sorted(cluster.stream_ids())
    assert restored.stats.points_ingested == cluster.stats.points_ingested

    # Continue both; frames must stay bit-identical to the single hub.
    frames_a = drive_rounds(cluster, ts, traffic, 800, ts.size)
    frames_b = drive_rounds(restored, ts, traffic, 800, ts.size)
    assert_frames_equal(frames_a, frames_b)
    reference = single_hub_frames(ts, traffic)
    for sid in traffic:
        combined = frames_head[sid] + frames_a[sid]
        assert len(combined) == len(reference[sid])
    restored.shutdown()


def test_checkpoint_carries_buffered_ingests(cluster):
    # Buffered batches are serialized verbatim; the restored cluster's next
    # tick delivers them — and the live cluster's next tick emits the same
    # frames, bit for bit (nothing was flushed away by checkpointing).
    ts, traffic = make_traffic(n_streams=3, length=400)
    for sid in traffic:
        cluster.create_stream(sid)
    for sid, values in traffic.items():
        cluster.ingest(sid, ts[:100], values[:100], buffered=True)
    restored = ShardedHub.restore(cluster.checkpoint())
    assert restored.stats.points_ingested == 0  # still queued, not dropped
    live_frames = cluster.tick()
    restored_frames = restored.tick()
    assert restored.stats.points_ingested == 3 * 100
    assert_frames_equal(live_frames, restored_frames)
    restored.shutdown()


def test_checkpoint_carries_stashed_frames(cluster):
    # Frames stashed by a rebalancing flush must survive checkpoint/restore:
    # both the live and the restored cluster surface them at the next tick.
    ts, traffic = make_traffic(n_streams=6)
    for sid in traffic:
        cluster.create_stream(sid)
    # Buffer enough to cross refresh boundaries, then rebalance: the flush
    # inside add_shard generates inline frames that land in the stash.
    for sid, values in traffic.items():
        cluster.ingest(sid, ts[:400], values[:400], buffered=True)
    cluster.add_shard()
    assert cluster._stashed_frames, "rebalance flush should have stashed frames"
    restored = ShardedHub.restore(cluster.checkpoint())
    live_frames = cluster.tick()
    restored_frames = restored.tick()
    assert any(live_frames.values())
    assert_frames_equal(live_frames, restored_frames)
    restored.shutdown()


def test_tick_requeues_dead_shards_pending_batch(cluster):
    ts, traffic = make_traffic(n_streams=6, length=400)
    for sid in traffic:
        cluster.create_stream(sid)
    victim_stream = next(iter(traffic))
    victim = cluster.shard_of(victim_stream)
    cluster.ingest(victim_stream, ts[:100], traffic[victim_stream][:100], buffered=True)
    cluster.kill_shard(victim)
    with pytest.raises(ShardDownError):
        cluster.tick()
    # The acknowledged-but-undelivered batch is still held, not GC'd; only
    # an explicit drop_shard discards it along with the shard's state.
    assert any(entry[0] == victim_stream for entry in cluster._pending.get(victim, []))
    cluster.drop_shard(victim)
    assert victim not in cluster._pending


def test_restore_rejects_wrong_kind(cluster):
    hub = StreamHub()
    from repro.persist import checkpoint as persist_checkpoint

    blob = persist_checkpoint(hub)
    with pytest.raises(CheckpointError, match="expected a 'sharded-hub'"):
        ShardedHub.restore(blob)


def test_generic_restore_dispatches_to_cluster(cluster):
    from repro.persist import restore as persist_restore

    cluster.create_stream("s")
    restored = persist_restore(cluster.checkpoint())
    assert isinstance(restored, ShardedHub)
    assert "s" in restored
    restored.shutdown()


# -- the process backend (real multiprocessing workers) ------------------------


@pytest.fixture
def process_cluster():
    hub = ShardedHub(shards=2, backend="process", default_config=CONFIG)
    yield hub
    hub.shutdown()


def test_process_backend_frames_bit_identical(process_cluster):
    ts, traffic = make_traffic(n_streams=4, length=800)
    for sid in traffic:
        process_cluster.create_stream(sid)
    frames = drive_rounds(process_cluster, ts, traffic, 0, ts.size)
    assert_frames_equal(single_hub_frames(ts, traffic), frames)


def test_process_backend_propagates_hub_exceptions(process_cluster):
    process_cluster.create_stream("s")
    with pytest.raises(ClusterError, match="already exists"):
        process_cluster.create_stream("s")
    process_cluster.close("s", flush=False)
    with pytest.raises(UnknownStreamError):
        process_cluster.snapshot("s")


def test_process_backend_kill_and_recover(process_cluster):
    ts, traffic = make_traffic(n_streams=4, length=800)
    for sid in traffic:
        process_cluster.create_stream(sid)
    drive_rounds(process_cluster, ts, traffic, 0, 400)
    blob = process_cluster.checkpoint()
    victim = process_cluster.shard_of(next(iter(traffic)))
    process_cluster.kill_shard(victim)
    with pytest.raises(ShardDownError):
        drive_rounds(process_cluster, ts, traffic, 400, 400 + CHUNK)
    lost = process_cluster.drop_shard(victim)
    process_cluster.restore_streams(blob, lost)
    for sid in traffic:
        assert process_cluster.snapshot(sid).panes > 0


def test_process_backend_restores_from_checkpoint_of_process_cluster(process_cluster):
    ts, traffic = make_traffic(n_streams=3, length=400)
    for sid in traffic:
        process_cluster.create_stream(sid)
    drive_rounds(process_cluster, ts, traffic, 0, 400)
    # Backend override: a process-shard checkpoint inspected in-process.
    restored = ShardedHub.restore(process_cluster.checkpoint(), backend="inprocess")
    assert restored.backend == "inprocess"
    assert sorted(restored.stream_ids()) == sorted(traffic)
    restored.shutdown()


def test_shard_protocol_misuse_is_loud(cluster):
    handle = cluster._shards[cluster.shard_ids[0]]
    with pytest.raises(ShardProtocolError, match="no pending reply"):
        handle.result()
    handle.submit("ping")
    with pytest.raises(ShardProtocolError, match="uncollected reply"):
        handle.submit("ping")
    assert handle.result() == "pong"
    with pytest.raises(ShardProtocolError, match="unknown shard command"):
        handle.request("frobnicate")
