"""Unit tests for the consistent-hash ring."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing


def keys(n):
    return [f"stream-{i}" for i in range(n)]


def test_routing_is_deterministic_and_order_insensitive():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s2", "s0", "s1"])
    for key in keys(200):
        assert a.node_for(key) == b.node_for(key)


def test_placement_is_stable_across_instances():
    # blake2b-based points: the same ring always routes the same way, in any
    # process, regardless of PYTHONHASHSEED.
    ring = HashRing(["s0", "s1", "s2", "s3"])
    again = HashRing(["s0", "s1", "s2", "s3"])
    assert ring.placement(keys(500)) == again.placement(keys(500))


def test_all_nodes_receive_keys():
    ring = HashRing([f"s{i}" for i in range(4)], replicas=64)
    owners = set(ring.placement(keys(1000)).values())
    assert owners == {"s0", "s1", "s2", "s3"}


def test_spread_is_reasonable():
    ring = HashRing([f"s{i}" for i in range(4)], replicas=64)
    counts = {node: 0 for node in ring.nodes}
    for _key, node in ring.placement(keys(4000)).items():
        counts[node] += 1
    assert min(counts.values()) > 4000 / 4 / 3  # no node starves badly


def test_adding_a_node_moves_only_keys_to_that_node():
    ring = HashRing(["s0", "s1", "s2"])
    before = ring.placement(keys(1000))
    ring.add_node("s3")
    after = ring.placement(keys(1000))
    moved = {k for k in before if before[k] != after[k]}
    assert moved, "a new node should take over some keys"
    assert all(after[k] == "s3" for k in moved)  # the consistent-hash property


def test_removing_a_node_moves_only_its_keys():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    before = ring.placement(keys(1000))
    ring.remove_node("s3")
    after = ring.placement(keys(1000))
    for key in keys(1000):
        if before[key] != "s3":
            assert after[key] == before[key]
        else:
            assert after[key] != "s3"


def test_add_remove_round_trip_restores_placement():
    ring = HashRing(["s0", "s1"])
    before = ring.placement(keys(300))
    ring.add_node("s2")
    ring.remove_node("s2")
    assert ring.placement(keys(300)) == before


def test_membership_and_validation():
    ring = HashRing(["s0"])
    assert "s0" in ring and len(ring) == 1
    with pytest.raises(ValueError, match="already on the ring"):
        ring.add_node("s0")
    with pytest.raises(ValueError, match="not on the ring"):
        ring.remove_node("ghost")
    ring.remove_node("s0")
    with pytest.raises(ValueError, match="empty ring"):
        ring.node_for("anything")
    with pytest.raises(ValueError, match="replicas"):
        HashRing(replicas=0)
