"""Figure A.1: Equation 5 roughness-estimate accuracy, plus ACF timing."""

from repro.core.acf import autocorrelation
from repro.experiments import figa1_estimate
from repro.timeseries import load


def test_acf_fft_on_temp(benchmark):
    values = load("temp").series.values
    acf = benchmark(autocorrelation, values, 297)
    assert abs(acf[0] - 1.0) < 1e-9


def test_acf_native_fft_backend(benchmark):
    values = load("temp").series.values
    acf = benchmark(autocorrelation, values, 297, "native")
    assert abs(acf[0] - 1.0) < 1e-9


def test_figa1_points_and_print(benchmark):
    points = benchmark.pedantic(figa1_estimate.run, rounds=1, iterations=1)
    print()
    print(figa1_estimate.format_result(points))
    # Paper: estimate within 1.2% of truth across windows.
    assert figa1_estimate.max_error_percent(points) < 3.0
