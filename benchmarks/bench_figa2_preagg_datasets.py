"""Figure A.2: per-dataset throughput with and without preaggregation."""

from repro.experiments import fig9_preagg


def test_figa2_rows_and_print(benchmark):
    rows = benchmark.pedantic(
        fig9_preagg.run_datasets,
        kwargs={"resolution": 1200, "scale": 1.0},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig9_preagg.format_datasets(rows))
    for row in rows:
        # Paper ordering: Exhaustive << ASAPRaw << Grid1 << ASAP.
        assert (
            row.throughput["Exhaustive"]
            < row.throughput["ASAPRaw"]
            < row.throughput["ASAP"]
        )
        assert row.throughput["Grid1"] > row.throughput["Exhaustive"]
