"""Figure 11: factor analysis and lesion study of the three optimizations."""

from repro.experiments import fig11_factor


def test_fig11_grid_and_print(benchmark):
    cells = benchmark.pedantic(
        fig11_factor.run,
        kwargs={"resolutions": (2000,), "scale": 0.5, "time_budget": 0.75},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig11_factor.format_result(cells))
    by_label = {c.config.label: c for c in cells}
    # Factor analysis: every cumulative step helps.
    assert by_label["+Pixel"].throughput > by_label["Baseline"].throughput
    assert by_label["+Lazy"].throughput > by_label["+AC"].throughput
    # Lesion: removing any optimization from full ASAP costs throughput.
    assert by_label["ASAP"].throughput > by_label["no Lazy"].throughput
    assert by_label["ASAP"].throughput > by_label["no AC"].throughput
