"""Figure 8: search strategies over preaggregated data, varying resolution."""

import pytest

from repro.core.search import run_strategy
from repro.experiments import fig8_strategies


@pytest.mark.parametrize("strategy", ["exhaustive", "grid2", "grid10", "binary", "asap"])
def test_strategy_search_time(benchmark, taxi_aggregated, strategy):
    result = benchmark(run_strategy, strategy, taxi_aggregated)
    assert result.window >= 1


def test_fig8_sweep_and_print(benchmark):
    cells = benchmark.pedantic(
        fig8_strategies.run,
        kwargs={
            "resolutions": (1000, 2000, 3000),
            "dataset_names": ("eeg", "power", "traffic_data", "machine_temp"),
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(fig8_strategies.format_result(cells))
    asap_cells = [c for c in cells if c.strategy == "asap"]
    binary_cells = [c for c in cells if c.strategy == "binary"]
    # Paper shape: ASAP's quality tracks exhaustive; binary search is rougher.
    assert max(c.roughness_ratio for c in asap_cells) < 2.0
    assert max(c.roughness_ratio for c in binary_cells) > min(
        c.roughness_ratio for c in asap_cells
    )
    # And ASAP is much faster than exhaustive at every resolution.
    assert all(c.speedup > 2.0 for c in asap_cells)
