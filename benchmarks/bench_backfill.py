"""Benchmark: bulk backfill vs point-by-point archive replay.

The workload is an archive of monitoring-shaped traffic provisioned into a
fresh :class:`~repro.core.streaming.StreamingASAP` twice: once streamed
through ``push_many`` (the pre-backfill replay path, one real refresh per
boundary) and once through :meth:`~repro.core.streaming.StreamingASAP.
backfill` (one batched quality pass, bulk pane folding, chunk-cadence rolling
replay, one bulk pyramid feed, a single closing search).  The headline number
is the *replay speedup* — backfill throughput over ``push_many`` throughput —
which the ratchet floors.

The headline configuration is **fast-lane eligible** (``asap`` strategy with
``seed_from_previous=False``): a seeded search chain must re-run every
boundary search to stay exact (CHECKLASTWINDOW feeds each winner into the
next search), so the seeded lane is timed for information only, and both
lanes are verified bit-identical before any timing — the process exits
non-zero on any violation:

* **fast lane** — ``backfill(prefix)`` then streaming the suffix produces
  frames bit-identical to streaming everything, and the elision ledger
  balances (frames elided + emitted == point-by-point frames);
* **replay lane** — the same bar on the seeded configuration;
* **provision-by-checkpoint** — ``backfill -> checkpoint -> restore`` at the
  :class:`~repro.service.StreamHub` tier streams on bit-identically to the
  uninterrupted hub.

Timing uses CPU time (``time.process_time``): ingest is pure compute and
wall clock on shared runners is too noisy to ratchet.  Smoke runs never
fail on timing (CI asserts identity, not speed); full runs enforce
``--min-speedup``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backfill.py
    PYTHONPATH=src python benchmarks/bench_backfill.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.streaming import StreamingASAP
from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub


def make_series(length: int, seed: int) -> np.ndarray:
    """Multi-periodic monitoring-shaped traffic: three nested seasonalities."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    return (
        np.sin(2 * np.pi * t / 24)
        + 0.8 * np.sin(2 * np.pi * t / 96)
        + 0.6 * np.sin(2 * np.pi * t / 480)
        + 0.3 * rng.normal(size=length)
    )


def make_operator(args: argparse.Namespace, seeded: bool) -> StreamingASAP:
    return StreamingASAP(
        pane_size=args.pane_size,
        resolution=args.resolution,
        refresh_interval=args.refresh_interval,
        strategy="asap",
        seed_from_previous=seeded,
        incremental=True,
        pyramid=True,
    )


def fail(message: str):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_frames_bit_identical(label, ours, theirs):
    if len(ours) != len(theirs):
        fail(f"{label}: {len(ours)} frames vs {len(theirs)}")
    for a, b in zip(ours, theirs):
        if a.window != b.window:
            fail(f"{label}: refresh {a.refresh_index}: window {a.window} vs {b.window}")
        if a.refresh_index != b.refresh_index:
            fail(f"{label}: refresh index {a.refresh_index} vs {b.refresh_index}")
        if a.series.values.tobytes() != b.series.values.tobytes():
            fail(f"{label}: refresh {a.refresh_index}: smoothed bytes differ")
        if a.series.timestamps.tobytes() != b.series.timestamps.tobytes():
            fail(f"{label}: refresh {a.refresh_index}: timestamps differ")


def stream_suffix(operator, ts, vs, start: int, batch: int):
    frames = []
    for lo in range(start, ts.size, batch):
        frames.extend(operator.push_many(ts[lo : lo + batch], vs[lo : lo + batch]))
    return frames


def verify_lane(label, args, ts, vs, seeded: bool) -> dict:
    """backfill(prefix) + stream(suffix) == stream everything, bit for bit."""
    split = int(ts.size * 0.8)
    batch = 137
    reference = make_operator(args, seeded)
    ref_prefix = list(reference.push_many(ts[:split], vs[:split]))
    ref_suffix = stream_suffix(reference, ts, vs, split, batch)

    operator = make_operator(args, seeded)
    result = operator.backfill(ts[:split], vs[:split])
    if result.frames:
        check_frames_bit_identical(
            f"{label} closing frames", list(result.frames), ref_prefix[-len(result.frames) :]
        )
    if result.frames_elided + len(result.frames) != len(ref_prefix):
        fail(
            f"{label}: ledger does not balance — {result.frames_elided} elided + "
            f"{len(result.frames)} emitted != {len(ref_prefix)} point-by-point frames"
        )
    suffix = stream_suffix(operator, ts, vs, split, batch)
    check_frames_bit_identical(f"{label} streamed suffix", suffix, ref_suffix)
    if operator.pyramid is not None:
        ours = operator.pyramid_view(64)
        theirs = reference.pyramid_view(64)
        if ours.values.tobytes() != theirs.values.tobytes():
            fail(f"{label}: pyramid views diverge after backfill")
    return {
        f"{result.mode}_frames_checked": len(suffix) + len(result.frames),
        f"{result.mode}_frames_elided": result.frames_elided,
        f"{result.mode}_searches_run": result.searches_run,
    }


def verify_provisioning(args, ts, vs) -> dict:
    """backfill -> checkpoint -> restore streams on bit-identically (hub tier)."""
    split = int(ts.size * 0.8)
    batch = 251
    config = StreamConfig(
        pane_size=args.pane_size,
        resolution=args.resolution,
        refresh_interval=args.refresh_interval,
        strategy="asap",
        seed_from_previous=False,
        incremental=True,
    )
    hub = StreamHub(default_config=config)
    sid = hub.create_stream(history=(ts[:split], vs[:split]))
    provisioned = restore(checkpoint(hub))

    ours, theirs = [], []
    for lo in range(split, ts.size, batch):
        ours.extend(provisioned.ingest(sid, ts[lo : lo + batch], vs[lo : lo + batch]))
        theirs.extend(hub.ingest(sid, ts[lo : lo + batch], vs[lo : lo + batch]))
        for frames in provisioned.tick().values():
            ours.extend(frames)
        for frames in hub.tick().values():
            theirs.extend(frames)
    check_frames_bit_identical("provision-by-checkpoint", ours, theirs)
    stats = provisioned.stats
    if stats.backfills != 1:
        fail(f"provision-by-checkpoint: restored hub reports {stats.backfills} backfills")
    return {"provisioned_frames_checked": len(ours)}


def run(args: argparse.Namespace) -> int:
    values = make_series(args.length, args.seed)
    ts = np.arange(args.length, dtype=np.float64)
    print(
        f"backfill: {args.length} points, pane_size={args.pane_size}, "
        f"resolution={args.resolution}, refresh_interval={args.refresh_interval}, "
        f"repeats={args.repeats}"
    )

    print("verifying backfill identities:")
    identity = verify_lane("fast lane", args, ts, values, seeded=False)
    identity.update(verify_lane("replay lane", args, ts, values, seeded=True))
    identity.update(verify_provisioning(args, ts, values))
    print(
        f"  fast lane: {identity['fast_frames_checked']} frames bit-identical, "
        f"{identity['fast_frames_elided']} elided, "
        f"{identity['fast_searches_run']} search(es)"
    )
    print(
        f"  replay lane: {identity['replay_frames_checked']} frames bit-identical, "
        f"{identity['replay_frames_elided']} elided, "
        f"{identity['replay_searches_run']} searches"
    )
    print(
        f"  provision-by-checkpoint: {identity['provisioned_frames_checked']} "
        f"post-restore frames bit-identical"
    )

    base_best = float("inf")
    fast_best = float("inf")
    seeded_base_best = float("inf")
    seeded_replay_best = float("inf")
    for _ in range(args.repeats):
        operator = make_operator(args, seeded=False)
        started = time.process_time()
        operator.push_many(ts, values)
        base_best = min(base_best, time.process_time() - started)

        operator = make_operator(args, seeded=False)
        started = time.process_time()
        operator.backfill(ts, values)
        fast_best = min(fast_best, time.process_time() - started)

        operator = make_operator(args, seeded=True)
        started = time.process_time()
        operator.push_many(ts, values)
        seeded_base_best = min(seeded_base_best, time.process_time() - started)

        operator = make_operator(args, seeded=True)
        started = time.process_time()
        operator.backfill(ts, values)
        seeded_replay_best = min(seeded_replay_best, time.process_time() - started)

    # Headline: the fast lane on the seed-free configuration — the only lane
    # where eliding interior searches is frame-exact, hence the one worth
    # ratcheting.  The seeded replay lane still searches every boundary and
    # is reported for information.
    speedup = base_best / fast_best if fast_best > 0 else float("inf")
    replay_speedup = (
        seeded_base_best / seeded_replay_best if seeded_replay_best > 0 else float("inf")
    )

    print()
    print(f"{'lane':22s} {'cpu s':>10s} {'points/s':>14s}")
    print("-" * 48)
    print(f"{'push_many':22s} {base_best:10.3f} {ts.size / base_best:14.0f}")
    print(f"{'backfill (fast)':22s} {fast_best:10.3f} {ts.size / fast_best:14.0f}")
    print(
        f"{'push_many (seeded)':22s} {seeded_base_best:10.3f} "
        f"{ts.size / seeded_base_best:14.0f}"
    )
    print(
        f"{'backfill (replay)':22s} {seeded_replay_best:10.3f} "
        f"{ts.size / seeded_replay_best:14.0f}"
    )
    print(f"\nbackfill replay speedup: {speedup:.2f}x (fast lane, ratcheted)")
    print(f"seeded replay-lane speedup: {replay_speedup:.2f}x (informational)")

    if args.json:
        payload = {
            "benchmark": "backfill",
            "params": {
                "length": args.length,
                "pane_size": args.pane_size,
                "resolution": args.resolution,
                "refresh_interval": args.refresh_interval,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "identity": {"ok": True, **identity},
            "push_many_seconds": base_best,
            "backfill_seconds": fast_best,
            "seeded_push_many_seconds": seeded_base_best,
            "seeded_backfill_seconds": seeded_replay_best,
            "push_many_points_per_second": ts.size / base_best if base_best > 0 else 0.0,
            "backfill_points_per_second": ts.size / fast_best if fast_best > 0 else 0.0,
            "replay_speedup": replay_speedup,
            "speedup": speedup,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: backfill replay speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=100_000, help="points in the archive")
    parser.add_argument("--pane-size", type=int, default=10, help="points per pane")
    parser.add_argument("--resolution", type=int, default=2000, help="panes per window")
    parser.add_argument("--refresh-interval", type=int, default=10, help="panes between refreshes")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="series seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required backfill/push_many throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies identity; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.length = min(args.length, 12_000)
        args.resolution = min(args.resolution, 300)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
