"""Benchmark: the network serving tier vs in-process serving.

A :class:`~repro.net.AsapServer` serves a :class:`~repro.service.StreamHub`
over localhost TCP.  Before any timing, the **equivalence gate** drives the
same arrivals through a remote client (``connect("tcp://...")``) and a local
one (``connect("local")``) and requires every frame — request/response,
server-push subscription, and post-checkpoint continuation — to be
bit-identical; the process exits non-zero on any violation.

Two timed comparisons follow:

* **concurrent clients** — N threads, each with its own connection, pull M
  snapshots; against the same N*M snapshots in a plain local loop.  This
  prices the wire: serialization, syscalls, and round trips (reported, not
  ratcheted — it is an overhead measurement, not a speedup).
* **pipelining** — the same K requests issued one round trip at a time vs
  batched through :meth:`~repro.net.RemoteBackend.call_many` (one write, K
  responses).  The headline ``pipelining_speedup`` floors in the ratchet:
  batching must keep beating per-request round trips.

Timing uses wall clock (``time.perf_counter``): the cost being measured *is*
I/O, so CPU time would hide exactly the thing the benchmark prices.  Smoke
runs never fail on timing (CI asserts equivalence, not speed); full runs
enforce ``--min-speedup`` on the pipelining headline.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_net.py
    PYTHONPATH=src python benchmarks/bench_net.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

import repro
from repro.net.remote import RemoteBackend
from repro.net.server import serve
from repro.persist import restore
from repro.service import StreamHub
from repro.spec import AsapSpec


def make_series(length: int, seed: int) -> np.ndarray:
    """Multi-periodic monitoring-shaped traffic (same shape the tier
    benchmarks use)."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    return (
        np.sin(2 * np.pi * t / 24)
        + 0.8 * np.sin(2 * np.pi * t / 96)
        + 0.3 * rng.normal(size=length)
    )


def make_spec(args: argparse.Namespace) -> AsapSpec:
    return AsapSpec(
        pane_size=args.pane_size,
        resolution=args.resolution,
        refresh_interval=args.refresh_interval,
    )


def fail(message: str):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_frames_bit_identical(label, ours, theirs):
    if len(ours) != len(theirs):
        fail(f"{label}: {len(ours)} frames vs {len(theirs)}")
    for a, b in zip(ours, theirs):
        if a.window != b.window:
            fail(f"{label}: refresh {a.refresh_index}: window {a.window} vs {b.window}")
        if a.series.values.tobytes() != b.series.values.tobytes():
            fail(f"{label}: refresh {a.refresh_index}: smoothed bytes differ")
        if a.series.timestamps.tobytes() != b.series.timestamps.tobytes():
            fail(f"{label}: refresh {a.refresh_index}: timestamps differ")


def verify_equivalence(args, ts, vs) -> dict:
    """Remote == local, bit for bit, on every path the wire serves."""
    spec = make_spec(args)
    handle = serve(StreamHub(default_config=spec))
    try:
        remote = repro.connect(handle.url, spec=spec)
        local = repro.connect("local", spec=spec)
        remote.stream(stream_id="s")
        local.stream(stream_id="s")
        remote.subscribe("s")

        # Request/response lane, ragged batches to cross interior and
        # deferred boundaries both.
        checked = 0
        expected_pushes = []
        batch = 173
        for lo in range(0, ts.size, batch):
            chunk = slice(lo, lo + batch)
            mine = remote.ingest("s", ts[chunk], vs[chunk])
            ref = local.ingest("s", ts[chunk], vs[chunk])
            check_frames_bit_identical("ingest", mine, ref)
            expected_pushes.extend(ref)
            mine_tick = remote.tick().get("s", [])
            ref_tick = local.tick().get("s", [])
            check_frames_bit_identical("tick", mine_tick, ref_tick)
            expected_pushes.extend(ref_tick)
            checked += len(ref) + len(ref_tick)
        if remote.snapshot("s") != local.snapshot("s"):
            fail("session snapshots differ")
        view = remote.snapshot("s", resolution=args.view_resolution)
        ref_view = local.snapshot("s", resolution=args.view_resolution)
        if view.series.values.tobytes() != ref_view.series.values.tobytes():
            fail("resolution-view values differ")
        if view.window != ref_view.window:
            fail("resolution-view windows differ")

        # Push lane: everything the local witness emitted must arrive,
        # in order, bit-identical.
        pushed = []
        deadline = time.perf_counter() + 30.0
        while len(pushed) < len(expected_pushes) and time.perf_counter() < deadline:
            pushed.extend(f for e in remote.pushes(timeout=0.2) for f in e.frames)
        check_frames_bit_identical("server push", pushed, expected_pushes)

        # Durability lane: checkpoint through the remote client, restore
        # locally, and stream on — all three continuations identical.
        revived = restore(remote.checkpoint())
        more_ts = np.arange(ts.size, ts.size + 400, dtype=np.float64)
        more_vs = make_series(400, args.seed + 1)
        tail = remote.ingest("s", more_ts, more_vs)
        check_frames_bit_identical(
            "post-restore continuation", revived.ingest("s", more_ts, more_vs), tail
        )
        check_frames_bit_identical(
            "local continuation", local.ingest("s", more_ts, more_vs), tail
        )
        checked += len(tail)
        remote.close()
        local.close()
        return {"ok": True, "frames_checked": checked, "pushes_checked": len(pushed)}
    finally:
        handle.stop()


def time_concurrent_snapshots(args, handle, spec) -> float:
    """N clients, each its own connection, pull M snapshots; wall seconds."""
    barrier = threading.Barrier(args.clients + 1)
    errors = []

    def worker():
        client = RemoteBackend(*handle.address, spec=spec)
        try:
            barrier.wait()
            for _ in range(args.requests):
                client.snapshot("s")
        except Exception as exc:  # pragma: no cover - surfaced via fail()
            errors.append(exc)
        finally:
            client.shutdown()

    threads = [threading.Thread(target=worker) for _ in range(args.clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        fail(f"concurrent client raised: {errors[0]!r}")
    return elapsed


def run(args: argparse.Namespace) -> int:
    values = make_series(args.points, args.seed)
    ts = np.arange(args.points, dtype=np.float64)
    spec = make_spec(args)
    total = args.clients * args.requests
    print(
        f"net: {args.points} points, {args.clients} clients x {args.requests} "
        f"snapshots, pipeline depth {args.pipeline}, repeats={args.repeats}"
    )

    print("verifying remote == local bit-identically:")
    equivalence = verify_equivalence(args, ts, values)
    print(
        f"  {equivalence['frames_checked']} frames bit-identical "
        f"({equivalence['pushes_checked']} of them via server push)"
    )

    # Timing server: one stream, fully provisioned, snapshots from N clients.
    hub = StreamHub(default_config=spec)
    hub.create_stream("s", history=(ts, values))
    handle = serve(hub)
    local_best = float("inf")
    remote_best = float("inf")
    sequential_best = float("inf")
    pipelined_best = float("inf")
    try:
        for _ in range(args.repeats):
            started = time.perf_counter()
            for _ in range(total):
                hub.snapshot("s")
            local_best = min(local_best, time.perf_counter() - started)

            remote_best = min(remote_best, time_concurrent_snapshots(args, handle, spec))

            client = RemoteBackend(*handle.address, spec=spec)
            started = time.perf_counter()
            for _ in range(args.pipeline):
                client.snapshot("s")
            sequential_best = min(sequential_best, time.perf_counter() - started)
            started = time.perf_counter()
            client.call_many([("snapshot", {"stream_id": "s"})] * args.pipeline)
            pipelined_best = min(pipelined_best, time.perf_counter() - started)
            client.shutdown()
    finally:
        handle.stop()

    local_rate = total / local_best if local_best > 0 else 0.0
    remote_rate = total / remote_best if remote_best > 0 else 0.0
    overhead = local_rate / remote_rate if remote_rate > 0 else float("inf")
    speedup = sequential_best / pipelined_best if pipelined_best > 0 else float("inf")

    print()
    print(f"{'lane':26s} {'wall s':>10s} {'snapshots/s':>14s}")
    print("-" * 52)
    print(f"{'local loop':26s} {local_best:10.3f} {local_rate:14.0f}")
    print(f"{'remote, concurrent':26s} {remote_best:10.3f} {remote_rate:14.0f}")
    print(
        f"{'remote, one at a time':26s} {sequential_best:10.3f} "
        f"{args.pipeline / sequential_best:14.0f}"
    )
    print(
        f"{'remote, pipelined':26s} {pipelined_best:10.3f} "
        f"{args.pipeline / pipelined_best:14.0f}"
    )
    print(f"\nwire overhead: {overhead:.1f}x slower than in-process (informational)")
    print(f"pipelining speedup: {speedup:.2f}x (ratcheted)")

    if args.json:
        payload = {
            "benchmark": "net",
            "params": {
                "points": args.points,
                "clients": args.clients,
                "requests": args.requests,
                "pipeline": args.pipeline,
                "pane_size": args.pane_size,
                "resolution": args.resolution,
                "refresh_interval": args.refresh_interval,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "equivalence": equivalence,
            "local_seconds": local_best,
            "remote_seconds": remote_best,
            "sequential_seconds": sequential_best,
            "pipelined_seconds": pipelined_best,
            "local_snapshots_per_second": local_rate,
            "remote_snapshots_per_second": remote_rate,
            "wire_overhead": overhead,
            "pipelining_speedup": speedup,
        }
        with open(args.json, "w") as handle_:
            json.dump(payload, handle_, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: pipelining speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=20_000, help="points provisioned per stream")
    parser.add_argument("--clients", type=int, default=4, help="concurrent remote clients")
    parser.add_argument("--requests", type=int, default=200, help="snapshots per client")
    parser.add_argument("--pipeline", type=int, default=200, help="pipelined batch depth")
    parser.add_argument("--pane-size", type=int, default=10, help="points per pane")
    parser.add_argument("--resolution", type=int, default=200, help="panes per window")
    parser.add_argument("--refresh-interval", type=int, default=10, help="panes between refreshes")
    parser.add_argument("--view-resolution", type=int, default=50, help="resolution-view width")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="series seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.05,
        help="required pipelined/sequential throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies equivalence; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.points = min(args.points, 4_000)
        args.clients = min(args.clients, 2)
        args.requests = min(args.requests, 25)
        args.pipeline = min(args.pipeline, 50)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
