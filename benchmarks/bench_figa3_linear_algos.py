"""Figure A.3: ASAP's end-to-end runtime vs the O(n) reductions PAA and M4."""

from repro.core.batch import smooth
from repro.experiments import figa3_linear_algos
from repro.vis.m4 import m4_aggregate
from repro.vis.paa import paa


def test_asap_end_to_end(benchmark, machine_temp_values):
    result = benchmark(smooth, machine_temp_values, resolution=1200)
    assert result.window >= 1


def test_paa_pass(benchmark, machine_temp_values):
    out = benchmark(paa, machine_temp_values, 1200)
    assert out.size == 1200


def test_m4_pass(benchmark, machine_temp_values):
    indices, values = benchmark(m4_aggregate, machine_temp_values, 1200)
    assert values.size <= 4800


def test_figa3_rows_and_print(benchmark):
    rows = benchmark.pedantic(
        figa3_linear_algos.run,
        kwargs={"scale": 0.25, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    print()
    print(figa3_linear_algos.format_result(rows))
    # ASAP costs more than a single linear pass but stays in the same
    # regime (paper: within ~20x of PAA, tens of milliseconds).
    mean_asap = sum(r.asap_ms for r in rows) / len(rows)
    mean_paa = sum(r.paa_ms for r in rows) / len(rows)
    assert mean_asap < 100 * max(mean_paa, 0.01)
