"""Benchmark: the data-quality stage on dense and messy streams.

The workload is a monitoring stream ingested through
:class:`~repro.core.streaming.StreamingASAP` twice: once with the quality
stage off (the pre-quality pipeline) and once with normalization plus a
reordering watermark on.  The headline number is the *dense-input overhead
ratio* — quality-on ingest throughput divided by quality-off — which the
ratchet floors: the fast paths must keep clean data nearly free.

Before timing, three identities are verified and the process exits non-zero
on any violation:

* **dense no-op** — on finite, ordered, regular arrivals, the quality
  operator's frames are bit-identical to the baseline's (same windows, same
  smoothed bytes, all-clean quality reports), at the operator and at the
  :class:`~repro.service.StreamHub` serving tier;
* **shuffle-within-watermark** — arrivals block-shuffled with displacement
  at most the watermark produce frames bit-identical to the in-order run,
  with zero drops;
* **per-point == batched** — one-point ``push`` and bulk ``push_many``
  produce identical frames with the quality stage active.

Timing uses CPU time (``time.process_time``): ingest is pure compute and
wall clock on shared runners is too noisy to ratchet.  Smoke runs never
fail on timing (CI asserts identity, not speed); full runs enforce
``--min-speedup``.  A messy lane (gaps + NaNs + reordering) is timed for
information only.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_messy.py
    PYTHONPATH=src python benchmarks/bench_messy.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.streaming import StreamingASAP
from repro.service import StreamConfig, StreamHub
from repro.stream.sources import StreamPoint


def make_series(length: int, seed: int) -> np.ndarray:
    """Multi-periodic monitoring-shaped traffic: three nested seasonalities."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    return (
        np.sin(2 * np.pi * t / 24)
        + 0.8 * np.sin(2 * np.pi * t / 96)
        + 0.6 * np.sin(2 * np.pi * t / 480)
        + 0.3 * rng.normal(size=length)
    )


def block_shuffle(ts, vs, block: int, seed: int):
    """Shuffle within consecutive blocks: displacement is at most ``block``."""
    rng = np.random.default_rng(seed)
    order = np.arange(ts.size)
    for start in range(0, ts.size, block):
        stop = min(start + block, ts.size)
        order[start:stop] = start + rng.permutation(stop - start)
    return ts[order], vs[order]


def make_messy(values, ts, seed: int):
    """Gaps, NaN holes, and bounded reordering — the messy-lane arrivals."""
    rng = np.random.default_rng(seed)
    vs = values.copy()
    for _ in range(max(1, vs.size // 4000)):
        at = int(rng.integers(0, vs.size - 12))
        vs[at : at + 8] = np.nan
    keep = np.ones(vs.size, dtype=bool)
    for _ in range(max(1, vs.size // 8000)):
        at = int(rng.integers(0, vs.size - 40))
        keep[at : at + 25] = False
    return block_shuffle(ts[keep], vs[keep], 16, seed + 1)


def make_operator(quality: bool, resolution, refresh_interval, watermark):
    return StreamingASAP(
        pane_size=2,
        resolution=resolution,
        refresh_interval=refresh_interval,
        strategy="asap",
        incremental=True,
        normalize=quality,
        cadence=1.0 if quality else None,
        watermark=watermark if quality else 0,
    )


def drive(operator, ts, vs, batch):
    """Push everything in batches plus a flush; returns (frames, cpu seconds)."""
    frames = []
    started = time.process_time()
    for start in range(0, ts.size, batch):
        stop = min(start + batch, ts.size)
        frames.extend(operator.push_many(ts[start:stop], vs[start:stop]))
    frames.extend(operator.flush())
    return frames, time.process_time() - started


def fail(message: str):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_frames_bit_identical(label, ours, theirs):
    if len(ours) != len(theirs):
        fail(f"{label}: {len(ours)} frames vs {len(theirs)}")
    for a, b in zip(ours, theirs):
        if a.window != b.window:
            fail(f"{label}: refresh {a.refresh_index}: window {a.window} vs {b.window}")
        if a.series.values.tobytes() != b.series.values.tobytes():
            fail(f"{label}: refresh {a.refresh_index}: smoothed bytes differ")


def verify_dense_noop(ts, vs, batch, resolution, refresh_interval, watermark) -> dict:
    """Quality-on frames over clean input == quality-off frames, bit for bit."""
    base, _ = drive(make_operator(False, resolution, refresh_interval, watermark), ts, vs, batch)
    quality, _ = drive(make_operator(True, resolution, refresh_interval, watermark), ts, vs, batch)
    check_frames_bit_identical("dense no-op", quality, base)
    for frame in quality:
        q = frame.quality
        if q.completeness != 1.0 or q.gaps_filled or q.nan_dropped or q.late_dropped:
            fail(f"dense no-op: refresh {frame.refresh_index} reports non-clean quality {q}")
    return {"dense_frames_checked": len(base)}


def verify_hub_dense_noop(ts, vs, batch, resolution, refresh_interval, watermark) -> dict:
    """The serving tier preserves the no-op: hub frames and clean counters."""
    results = {}
    for quality in (False, True):
        config = StreamConfig(
            pane_size=2,
            resolution=resolution,
            refresh_interval=refresh_interval,
            normalize=quality,
            cadence=1.0 if quality else None,
            watermark=watermark if quality else 0,
        )
        hub = StreamHub(default_config=config)
        sid = hub.create_stream()
        frames = []
        for start in range(0, ts.size, batch):
            stop = min(start + batch, ts.size)
            frames.extend(hub.ingest(sid, ts[start:stop], vs[start:stop]))
        results[quality] = (frames, hub.snapshot(sid), hub.stats)
    check_frames_bit_identical("hub dense no-op", results[True][0], results[False][0])
    snapshot, stats = results[True][1], results[True][2]
    if snapshot.completeness != 1.0 or snapshot.gaps_filled or snapshot.late_dropped:
        fail(f"hub dense no-op: snapshot reports non-clean quality ({snapshot})")
    if stats.gaps_filled or stats.nan_dropped or stats.late_accepted or stats.late_dropped:
        fail("hub dense no-op: hub stats report non-zero quality counters")
    return {"hub_frames_checked": len(results[True][0])}


def verify_shuffle_identity(ts, vs, batch, resolution, refresh_interval, watermark) -> dict:
    """Shuffled-within-watermark arrivals reproduce the in-order frames."""
    ordered, _ = drive(make_operator(True, resolution, refresh_interval, watermark), ts, vs, batch)
    shuffled_ts, shuffled_vs = block_shuffle(ts, vs, watermark, seed=9)
    operator = make_operator(True, resolution, refresh_interval, watermark)
    shuffled, _ = drive(operator, shuffled_ts, shuffled_vs, batch)
    check_frames_bit_identical("shuffle-within-watermark", shuffled, ordered)
    if operator.late_dropped != 0:
        fail(f"shuffle-within-watermark: {operator.late_dropped} drops (expected 0)")
    return {
        "shuffled_frames_checked": len(ordered),
        "late_accepted": operator.late_accepted,
    }


def verify_point_batch_identity(ts, vs, resolution, refresh_interval, watermark) -> dict:
    """push(StreamPoint) one at a time == push_many, quality stage active."""
    n = min(ts.size, 4000)
    batched, _ = drive(
        make_operator(True, resolution, refresh_interval, watermark), ts[:n], vs[:n], 137
    )
    operator = make_operator(True, resolution, refresh_interval, watermark)
    pointwise = []
    for i in range(n):
        pointwise.extend(operator.push(StreamPoint(ts[i], vs[i])))
    pointwise.extend(operator.flush())
    check_frames_bit_identical("per-point == batched", pointwise, batched)
    return {"pointwise_frames_checked": len(batched)}


def run(args: argparse.Namespace) -> int:
    values = make_series(args.length, args.seed)
    ts = np.arange(args.length, dtype=np.float64)
    print(
        f"messy: {args.length} points, resolution={args.resolution}, "
        f"refresh_interval={args.refresh_interval}, watermark={args.watermark}, "
        f"batch={args.batch}, repeats={args.repeats}"
    )

    print("verifying quality-stage identities:")
    identity = verify_dense_noop(
        ts, values, args.batch, args.resolution, args.refresh_interval, args.watermark
    )
    identity.update(
        verify_hub_dense_noop(
            ts, values, args.batch, args.resolution, args.refresh_interval, args.watermark
        )
    )
    identity.update(
        verify_shuffle_identity(
            ts, values, args.batch, args.resolution, args.refresh_interval, args.watermark
        )
    )
    identity.update(
        verify_point_batch_identity(
            ts, values, args.resolution, args.refresh_interval, args.watermark
        )
    )
    print(
        f"  dense no-op: {identity['dense_frames_checked']} operator + "
        f"{identity['hub_frames_checked']} hub frames bit-identical, all-clean reports"
    )
    print(
        f"  shuffle-within-watermark: {identity['shuffled_frames_checked']} frames "
        f"bit-identical, {identity['late_accepted']} reordered, 0 dropped"
    )
    print(f"  per-point == batched: {identity['pointwise_frames_checked']} frames")

    off_best = float("inf")
    on_best = float("inf")
    messy_ts, messy_vs = make_messy(values, ts, args.seed + 7)
    messy_best = float("inf")
    for _ in range(args.repeats):
        _, off_seconds = drive(
            make_operator(False, args.resolution, args.refresh_interval, args.watermark),
            ts,
            values,
            args.batch,
        )
        _, on_seconds = drive(
            make_operator(True, args.resolution, args.refresh_interval, args.watermark),
            ts,
            values,
            args.batch,
        )
        _, messy_seconds = drive(
            make_operator(True, args.resolution, args.refresh_interval, args.watermark),
            messy_ts,
            messy_vs,
            args.batch,
        )
        off_best = min(off_best, off_seconds)
        on_best = min(on_best, on_seconds)
        messy_best = min(messy_best, messy_seconds)

    # Headline: dense ingest throughput with the stage on vs off.  >= 1.0
    # would mean free; the ratchet floors how much overhead the fast paths
    # may cost on clean data.
    speedup = off_best / on_best if on_best > 0 else float("inf")
    messy_operator = make_operator(True, args.resolution, args.refresh_interval, args.watermark)
    drive(messy_operator, messy_ts, messy_vs, args.batch)

    print()
    print(f"{'lane':16s} {'cpu s':>10s} {'points/s':>14s}")
    print("-" * 42)
    print(f"{'dense, off':16s} {off_best:10.3f} {ts.size / off_best:14.0f}")
    print(f"{'dense, on':16s} {on_best:10.3f} {ts.size / on_best:14.0f}")
    print(f"{'messy, on':16s} {messy_best:10.3f} {messy_ts.size / messy_best:14.0f}")
    print(f"\ndense quality-stage throughput ratio: {speedup:.2f}x (1.0 = free)")
    print(
        f"messy accounting: {messy_operator.gaps_filled} gap points filled, "
        f"{messy_operator.nan_dropped} NaN dropped, "
        f"{messy_operator.late_accepted} reordered, "
        f"{messy_operator.late_dropped} dropped"
    )

    if args.json:
        payload = {
            "benchmark": "messy",
            "params": {
                "length": args.length,
                "batch": args.batch,
                "pane_size": 2,
                "resolution": args.resolution,
                "refresh_interval": args.refresh_interval,
                "watermark": args.watermark,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "identity": {"ok": True, **identity},
            "dense_off_seconds": off_best,
            "dense_on_seconds": on_best,
            "messy_on_seconds": messy_best,
            "dense_off_points_per_second": ts.size / off_best if off_best > 0 else 0.0,
            "dense_on_points_per_second": ts.size / on_best if on_best > 0 else 0.0,
            "messy_points_per_second": messy_ts.size / messy_best if messy_best > 0 else 0.0,
            "gaps_filled": messy_operator.gaps_filled,
            "nan_dropped": messy_operator.nan_dropped,
            "late_accepted": messy_operator.late_accepted,
            "late_dropped": messy_operator.late_dropped,
            "speedup": speedup,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: dense quality-stage ratio {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=200_000, help="points in the stream")
    parser.add_argument("--resolution", type=int, default=800, help="panes per window")
    parser.add_argument("--refresh-interval", type=int, default=50, help="panes between refreshes")
    parser.add_argument("--watermark", type=int, default=64, help="reorder buffer size (points)")
    parser.add_argument("--batch", type=int, default=137, help="arrival batch size (points)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="series seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.5,
        help="required dense on/off ingest throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies identity; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.length = min(args.length, 12_000)
        args.resolution = min(args.resolution, 300)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
