"""Table 4: pixel error of ASAP vs pixel-preserving reductions."""

from repro.experiments import table4_pixel_error
from repro.timeseries import load
from repro.vis.pixel_error import pixel_error


def test_pixel_error_measurement(benchmark):
    values = load("taxi").series.values
    error = benchmark(pixel_error, values, values)
    assert error == 0.0


def test_table4_rows_and_print(benchmark):
    rows = benchmark.pedantic(table4_pixel_error.run, rounds=1, iterations=1)
    print()
    print(table4_pixel_error.format_result(rows))
    for row in rows:
        # The paper's contrast in goals: M4 preserves pixels, ASAP distorts.
        assert row.errors["M4"] <= row.errors["ASAP"]
