"""Benchmark: StreamHub serving vs looping per-point StreamingASAP operators.

The workload is the ROADMAP's serving scenario: hundreds of concurrent
streams, each delivering one scrape interval of points per round, each
refreshing its smoothed frame at its on-demand boundary.  Two drivers
process identical data:

* ``loop`` — one from-scratch :class:`~repro.core.streaming.StreamingASAP`
  per stream, fed point by point (the pre-StreamHub serving shape: the
  operator's public push contract in a Python loop);
* ``hub``  — one :class:`~repro.service.StreamHub` hosting every stream:
  vectorized batch ingestion, refreshes deferred to a shared tick, and
  incremental ACF/moment state (O(new panes) per refresh).

Before timing, the two drivers' frames are verified equivalent stream by
stream — same refresh boundaries, identical selected windows, bit-identical
smoothed values, search moments within 1e-9 — and the process exits non-zero
on any violation.  Timing never fails the smoke run (CI asserts identity,
not speed); full runs enforce ``--min-speedup``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streamhub.py
    PYTHONPATH=src python benchmarks/bench_streamhub.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.streaming import StreamingASAP
from repro.service import StreamConfig, StreamHub
from repro.stream.sources import StreamPoint


def make_streams(n_streams: int, length: int, seed: int) -> list[np.ndarray]:
    """Dashboard-shaped traffic: noisy periodic series with occasional spikes."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    streams = []
    for index in range(n_streams):
        period = float(rng.integers(20, max(length // 20, 21)))
        values = np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=length)
        if index % 7 == 0:
            values[rng.integers(0, length)] += 8.0
        streams.append(values)
    return streams


def baseline_config(config: StreamConfig) -> dict:
    return dict(
        pane_size=config.pane_size,
        resolution=config.resolution,
        refresh_interval=config.refresh_interval,
        strategy=config.strategy,
        max_window=config.max_window,
        seed_from_previous=config.seed_from_previous,
    )


def drive_loop(streams, ts, chunk, config: StreamConfig):
    """Per-point looped operators; returns (frames_by_stream, seconds)."""
    operators = [StreamingASAP(**baseline_config(config)) for _ in streams]
    frames = [[] for _ in streams]
    length = ts.size
    started = time.perf_counter()
    for start in range(0, length, chunk):
        stop = min(start + chunk, length)
        for index, values in enumerate(streams):
            push = operators[index].push
            out = frames[index]
            for i in range(start, stop):
                out.extend(push(StreamPoint(ts[i], values[i])))
    return frames, time.perf_counter() - started


def drive_hub(streams, ts, chunk, config: StreamConfig):
    """StreamHub serving; returns (frames_by_stream, seconds)."""
    hub = StreamHub(max_sessions=len(streams), default_config=config)
    ids = [hub.create_stream() for _ in streams]
    frames = [[] for _ in streams]
    length = ts.size
    started = time.perf_counter()
    for start in range(0, length, chunk):
        stop = min(start + chunk, length)
        for index, sid in enumerate(ids):
            frames[index].extend(hub.ingest(sid, ts[start:stop], streams[index][start:stop]))
        emitted = hub.tick()
        for index, sid in enumerate(ids):
            frames[index].extend(emitted.get(sid, []))
    elapsed = time.perf_counter() - started
    return frames, elapsed, hub.stats


def verify_equivalence(loop_frames, hub_frames) -> dict:
    """Frame-for-frame equivalence; exits non-zero on any violation."""
    checked = 0
    max_moment_diff = 0.0
    for index, (loop_stream, hub_stream) in enumerate(zip(loop_frames, hub_frames)):
        if len(loop_stream) != len(hub_stream):
            print(
                f"FAIL: stream {index}: {len(loop_stream)} looped frames vs "
                f"{len(hub_stream)} hub frames",
                file=sys.stderr,
            )
            sys.exit(1)
        for a, b in zip(loop_stream, hub_stream):
            checked += 1
            if a.window != b.window or not np.array_equal(a.series.values, b.series.values):
                print(
                    f"FAIL: stream {index} refresh {a.refresh_index}: "
                    f"window {a.window} vs {b.window} or smoothed values differ",
                    file=sys.stderr,
                )
                sys.exit(1)
            diff = max(
                abs(a.search.roughness - b.search.roughness),
                abs(a.search.kurtosis - b.search.kurtosis),
            )
            max_moment_diff = max(max_moment_diff, diff)
            if diff > 1e-9:
                print(
                    f"FAIL: stream {index} refresh {a.refresh_index}: "
                    f"search moments differ by {diff:.3e} (> 1e-9)",
                    file=sys.stderr,
                )
                sys.exit(1)
    return {"frames_checked": checked, "max_moment_diff": max_moment_diff}


def run(args: argparse.Namespace) -> int:
    from repro.core.search import STRATEGIES

    if args.strategy not in STRATEGIES:
        print(
            f"unknown strategy {args.strategy!r}; available: {', '.join(STRATEGIES)}",
            file=sys.stderr,
        )
        return 2
    config = StreamConfig(
        pane_size=args.pane_size,
        resolution=args.resolution,
        refresh_interval=args.refresh_interval,
        strategy=args.strategy,
        # This benchmark measures refresh throughput, not multi-resolution
        # snapshots (bench_pyramid covers those).  The looped baseline never
        # builds a pyramid, so the hub must not pay for one either.
        pyramid=False,
    )
    streams = make_streams(args.streams, args.length, args.seed)
    ts = np.arange(args.length, dtype=np.float64)
    chunk = args.chunk or args.pane_size * args.refresh_interval
    print(
        f"serving: {len(streams)} streams x {args.length} points, "
        f"pane_size={config.pane_size}, resolution={config.resolution}, "
        f"refresh_interval={config.refresh_interval}, strategy={config.strategy!r}, "
        f"chunk={chunk}, repeats={args.repeats}"
    )

    print("verifying frame equivalence (hub == looped StreamingASAP):")
    loop_frames, _ = drive_loop(streams, ts, chunk, config)
    hub_frames, _, _ = drive_hub(streams, ts, chunk, config)
    identity = verify_equivalence(loop_frames, hub_frames)
    total_frames = sum(len(f) for f in loop_frames)
    print(
        f"  {identity['frames_checked']} frames identical across {len(streams)} streams "
        f"(max search-moment diff {identity['max_moment_diff']:.2e})"
    )

    loop_best = float("inf")
    hub_best = float("inf")
    hub_stats = None
    for _ in range(args.repeats):
        _, loop_seconds = drive_loop(streams, ts, chunk, config)
        _, hub_seconds, stats = drive_hub(streams, ts, chunk, config)
        loop_best = min(loop_best, loop_seconds)
        hub_best = min(hub_best, hub_seconds)
        hub_stats = stats

    loop_throughput = total_frames / loop_best if loop_best > 0 else float("inf")
    hub_throughput = total_frames / hub_best if hub_best > 0 else float("inf")
    speedup = loop_best / hub_best if hub_best > 0 else float("inf")
    print()
    print(f"{'driver':8s} {'seconds':>10s} {'frames/s':>12s}")
    print("-" * 32)
    print(f"{'loop':8s} {loop_best:10.3f} {loop_throughput:12.1f}")
    print(f"{'hub':8s} {hub_best:10.3f} {hub_throughput:12.1f}")
    print(f"\naggregate refresh throughput: {speedup:.2f}x over looped StreamingASAP")
    if hub_stats is not None:
        print(
            f"hub accounting: {hub_stats.frames_emitted} frames, "
            f"{hub_stats.refreshes_coalesced} coalesced refreshes, "
            f"{hub_stats.grid_kernel_calls} shared grid kernel calls"
        )

    if args.json:
        payload = {
            "benchmark": "streamhub",
            "params": {
                "streams": len(streams),
                "length": args.length,
                "chunk": chunk,
                "pane_size": config.pane_size,
                "resolution": config.resolution,
                "refresh_interval": config.refresh_interval,
                "strategy": config.strategy,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "identity": {"ok": True, **identity},
            "frames": total_frames,
            "loop_seconds": loop_best,
            "hub_seconds": hub_best,
            "loop_frames_per_second": loop_throughput,
            "hub_frames_per_second": hub_throughput,
            "speedup": speedup,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: hub speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=240, help="concurrent streams")
    parser.add_argument("--length", type=int, default=4000, help="points per stream")
    parser.add_argument("--pane-size", type=int, default=4, help="points per pane")
    parser.add_argument("--resolution", type=int, default=800, help="panes per window")
    parser.add_argument(
        "--refresh-interval", type=int, default=25, help="panes between refreshes"
    )
    parser.add_argument("--strategy", default="asap", help="search strategy per session")
    parser.add_argument(
        "--chunk", type=int, default=None, help="points per ingest batch (default: one refresh)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="stream seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required hub/loop throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies equivalence; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.streams = min(args.streams, 24)
        args.length = min(args.length, 1200)
        args.resolution = min(args.resolution, 200)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
