"""Figure 6: anomaly-identification study (simulated observers)."""

from repro.experiments import fig6_user_study
from repro.perception.observer import Observer
from repro.perception.study import render_visualization
from repro.timeseries import load


def test_observer_identify_one_trial(benchmark):
    dataset = load("taxi")
    plot = render_visualization("ASAP", dataset.series.values)
    observer = Observer(seed=0)
    true_region = dataset.anomalies[0].region_index(len(dataset.series), 5)
    trial = benchmark(
        observer.identify,
        plot.values,
        true_region,
        positions=plot.positions,
        x_range=(0.0, float(len(dataset.series) - 1)),
    )
    assert trial.response_time > 0


def test_fig6_grid_and_print(benchmark):
    cells = benchmark.pedantic(
        fig6_user_study.run, kwargs={"trials_per_cell": 12}, rounds=1, iterations=1
    )
    print()
    print(fig6_user_study.format_result(cells))
    summary = fig6_user_study.summarize(cells)
    asap_accuracy, asap_rt = summary["ASAP"]
    original_accuracy, original_rt = summary["Original"]
    # The paper's headline: ASAP beats the raw plot on both axes.
    assert asap_accuracy > original_accuracy
    assert asap_rt < original_rt
