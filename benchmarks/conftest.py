"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's exhibits: it times
the load-bearing operation with pytest-benchmark and prints the same
rows/series the paper reports (run ``pytest benchmarks/ --benchmark-only -s``
to see the tables inline).

Exhibit tables run at moderate scale so the whole harness finishes in
minutes; ``python -m repro.experiments <exhibit>`` regenerates any exhibit at
full paper scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preaggregation import preaggregate
from repro.timeseries import load

collect_ignore_glob: list[str] = []


def pytest_collection_modifyitems(items):
    # Benchmarks have no assertions to shuffle; keep paper order by filename.
    items.sort(key=lambda item: item.fspath.basename)


@pytest.fixture(scope="session")
def taxi_values():
    return load("taxi").series.values


@pytest.fixture(scope="session")
def taxi_aggregated(taxi_values):
    return preaggregate(taxi_values, 1200).values


@pytest.fixture(scope="session")
def machine_temp_values():
    return load("machine_temp").series.values


@pytest.fixture(scope="session")
def periodic_1m():
    """A synthetic 1M-point periodic stream for scale checks."""
    t = np.arange(1_000_000, dtype=np.float64)
    rng = np.random.default_rng(0)
    return np.sin(2 * np.pi * t / 86_400) + 0.3 * rng.normal(size=t.size)
