"""Benchmark: multi-resolution serving from one pyramid vs per-client smoothing.

The workload is the ROADMAP's multi-tenant charting scenario: many streams,
each charted by several clients at *different pixel widths*, polled every
round.  Two serving shapes process identical data:

* ``naive`` — per-client full-resolution smoothing: every poll re-runs the
  smoothing pipeline over the stream's full-resolution window from scratch
  (no pre-aggregation stage, no shared state between clients — the shape a
  server has before the pyramid tier exists; the paper's ASAPno-agg
  configuration, Figure 9).
* ``hub``  — one :class:`~repro.service.StreamHub` session per stream with a
  shared rollup pyramid: every poll is ``snapshot(sid, resolution=R)``,
  served from the pyramid level nearest the ratio plus a residual re-bucket,
  and cached per (resolution, data-version) so concurrent viewers of the
  same chart share one computation.

Before timing, every (stream, resolution) snapshot is verified equivalent to
running the from-scratch operator on the **directly pre-aggregated** span —
selected windows equal, smoothed values within 1e-9 — and the process exits
non-zero on any violation.  Timing never fails the smoke run (CI asserts
equivalence, not speed); full runs enforce ``--min-speedup``.  For
transparency the report also includes the stronger stateless baseline that
*does* pre-aggregate per request (``direct``), plus per-request costs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pyramid.py
    PYTHONPATH=src python benchmarks/bench_pyramid.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import smooth
from repro.core.preaggregation import bucket_means
from repro.service import StreamConfig, StreamHub
from repro.timeseries import TimeSeries


def make_streams(n_streams: int, length: int, seed: int) -> list[np.ndarray]:
    """Dashboard-shaped traffic: noisy periodic series with occasional spikes."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    streams = []
    for index in range(n_streams):
        period = float(rng.integers(200, max(length // 10, 201)))
        values = np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=length)
        if index % 5 == 0:
            values[rng.integers(0, length)] += 8.0
        streams.append(values)
    return streams


def build_hub(streams, ts, config: StreamConfig, warm_points: int):
    hub = StreamHub(max_sessions=len(streams), default_config=config)
    ids = [hub.create_stream(f"stream-{i}") for i in range(len(streams))]
    for start in range(0, warm_points, 4096):
        stop = min(start + 4096, warm_points)
        for index, sid in enumerate(ids):
            hub.ingest(sid, ts[start:stop], streams[index][start:stop])
        hub.tick()
    return hub, ids


def verify_equivalence(hub, ids, resolutions) -> dict:
    """Snapshot == from-scratch pipeline on the directly pre-aggregated span.

    Exits non-zero on any violation (the acceptance gate; run before timing).
    """
    checked = 0
    max_value_diff = 0.0
    for sid in ids:
        operator = hub._sessions[sid].operator
        pyramid = operator.pyramid
        for resolution in resolutions:
            snap = hub.snapshot(sid, resolution=resolution)
            base = pyramid.base_values()
            times = pyramid.base_timestamps()
            start = snap.base_start - pyramid.window_start
            stop = snap.base_end - pyramid.window_start
            direct_values = bucket_means(base[start:stop], snap.ratio)
            direct_times = times[start : stop : snap.ratio][: direct_values.size]
            direct = smooth(
                TimeSeries(direct_values, direct_times),
                use_preaggregation=False,
            )
            checked += 1
            if direct.window != snap.window:
                print(
                    f"FAIL: {sid} @{resolution}px: window {snap.window} vs "
                    f"direct {direct.window}",
                    file=sys.stderr,
                )
                sys.exit(1)
            scale = max(1.0, float(np.abs(direct.series.values).max()))
            diff = float(np.abs(direct.series.values - snap.series.values).max())
            max_value_diff = max(max_value_diff, diff / scale)
            if diff > 1e-9 * scale:
                print(
                    f"FAIL: {sid} @{resolution}px: smoothed values differ by "
                    f"{diff:.3e} (> 1e-9 relative)",
                    file=sys.stderr,
                )
                sys.exit(1)
    return {"views_checked": checked, "max_value_diff": max_value_diff}


def drive_naive(windows, resolutions, polls: int, use_preaggregation: bool) -> tuple[int, float]:
    """Stateless per-client smoothing; returns (views_served, seconds)."""
    served = 0
    started = time.perf_counter()
    for series in windows:
        for resolution in resolutions:
            for _ in range(polls):
                smooth(
                    series,
                    resolution=resolution,
                    use_preaggregation=use_preaggregation,
                )
                served += 1
    return served, time.perf_counter() - started


def drive_hub_round(hub, ids, resolutions, polls: int) -> tuple[int, float]:
    """Pyramid serving; returns (views_served, seconds)."""
    served = 0
    started = time.perf_counter()
    for sid in ids:
        for resolution in resolutions:
            for _ in range(polls):
                hub.snapshot(sid, resolution=resolution)
                served += 1
    return served, time.perf_counter() - started


def run(args: argparse.Namespace) -> int:
    resolutions = tuple(args.resolutions)
    config = StreamConfig(
        pane_size=args.pane_size,
        resolution=args.window,
        refresh_interval=args.refresh_interval,
    )
    length = args.length
    streams = make_streams(args.streams, length, args.seed)
    ts = np.arange(length, dtype=np.float64)
    chunk = args.chunk
    rounds = args.rounds
    warm = length - rounds * chunk
    if warm < args.window * args.pane_size:
        # Warm-up must fill every session's window so the timed rounds
        # measure steady-state serving, not partially-filled windows.
        print("stream too short for the requested rounds/chunk", file=sys.stderr)
        return 2
    print(
        f"serving: {len(streams)} streams x {len(resolutions)} resolutions "
        f"{resolutions} x {args.polls} viewers, window={args.window} panes "
        f"(pane_size={args.pane_size}), {rounds} rounds of {chunk} points"
    )

    hub, ids = build_hub(streams, ts, config, warm)

    print("verifying equivalence (snapshot == from-scratch on pre-aggregated span):")
    identity = verify_equivalence(hub, ids, resolutions)
    print(
        f"  {identity['views_checked']} views equivalent "
        f"(max relative value diff {identity['max_value_diff']:.2e})"
    )

    naive_noagg_seconds = 0.0
    naive_direct_seconds = 0.0
    hub_seconds = 0.0
    views_per_driver = 0
    position = warm
    for _ in range(rounds):
        stop = min(position + chunk, length)
        for index, sid in enumerate(ids):
            hub.ingest(sid, ts[position:stop], streams[index][position:stop])
        hub.tick()
        position = stop
        # The stateless server's full-resolution windows (it stores the same
        # aggregated history; acquiring it is not charged to either driver).
        windows = [
            TimeSeries(
                hub._sessions[sid].operator.aggregated_values(),
                hub._sessions[sid].operator._buffer.aggregated_timestamps(),
            )
            for sid in ids
        ]
        served, seconds = drive_naive(windows, resolutions, args.polls, False)
        naive_noagg_seconds += seconds
        _, seconds = drive_naive(windows, resolutions, args.polls, True)
        naive_direct_seconds += seconds
        served_hub, seconds = drive_hub_round(hub, ids, resolutions, args.polls)
        hub_seconds += seconds
        assert served == served_hub
        views_per_driver += served

    stats = hub.stats

    def throughput(seconds: float) -> float:
        return views_per_driver / seconds if seconds > 0 else float("inf")

    speedup_noagg = naive_noagg_seconds / hub_seconds if hub_seconds > 0 else float("inf")
    speedup_direct = naive_direct_seconds / hub_seconds if hub_seconds > 0 else float("inf")
    print()
    print(f"{'driver':14s} {'seconds':>9s} {'views/s':>10s} {'ms/view':>9s}")
    print("-" * 46)
    for name, seconds in (
        ("naive no-agg", naive_noagg_seconds),
        ("naive direct", naive_direct_seconds),
        ("hub pyramid", hub_seconds),
    ):
        print(
            f"{name:14s} {seconds:9.3f} {throughput(seconds):10.1f} "
            f"{1000.0 * seconds / views_per_driver:9.3f}"
        )
    print(
        f"\naggregate snapshot throughput: {speedup_noagg:.2f}x over naive "
        f"per-client full-resolution smoothing ({speedup_direct:.2f}x over the "
        f"per-request pre-aggregating variant)"
    )
    print(
        f"hub accounting: {stats.views_served} views served, "
        f"{stats.view_cache_hits} from cache "
        f"({100.0 * stats.view_cache_hits / max(stats.views_served, 1):.0f}%)"
    )

    if args.json:
        payload = {
            "benchmark": "pyramid",
            "params": {
                "streams": len(streams),
                "length": length,
                "resolutions": list(resolutions),
                "polls_per_view": args.polls,
                "window": args.window,
                "pane_size": args.pane_size,
                "refresh_interval": args.refresh_interval,
                "rounds": rounds,
                "chunk": chunk,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "equivalence": {"ok": True, **identity},
            "views_served": views_per_driver,
            "naive_noagg_seconds": naive_noagg_seconds,
            "naive_direct_seconds": naive_direct_seconds,
            "hub_seconds": hub_seconds,
            "speedup_vs_noagg": speedup_noagg,
            "speedup_vs_direct": speedup_direct,
            "view_cache_hits": stats.view_cache_hits,
            "views_total": stats.views_served,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup_noagg < args.min_speedup:
        print(
            f"FAIL: pyramid speedup {speedup_noagg:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=60, help="concurrent streams")
    parser.add_argument(
        "--resolutions",
        type=int,
        nargs="+",
        default=[50, 100, 200, 400],
        help="client pixel widths served per stream",
    )
    parser.add_argument(
        "--polls",
        type=int,
        default=3,
        help="concurrent viewers polling each (stream, width) chart per round",
    )
    parser.add_argument("--length", type=int, default=24_000, help="points per stream")
    parser.add_argument("--pane-size", type=int, default=5, help="points per pane")
    parser.add_argument(
        "--window", type=int, default=2048, help="panes per session window"
    )
    parser.add_argument(
        "--refresh-interval", type=int, default=32, help="panes between refreshes"
    )
    parser.add_argument("--rounds", type=int, default=4, help="serving rounds timed")
    parser.add_argument(
        "--chunk", type=int, default=1600, help="points ingested per stream per round"
    )
    parser.add_argument("--seed", type=int, default=20170501, help="stream seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required hub/naive throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies equivalence; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.streams = min(args.streams, 8)
        args.length = min(args.length, 8000)
        args.window = min(args.window, 512)
        args.rounds = min(args.rounds, 2)
        args.chunk = min(args.chunk, 800)
        args.polls = min(args.polls, 2)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
