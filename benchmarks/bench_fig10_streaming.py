"""Figure 10: streaming throughput vs refresh interval."""

from repro.core.streaming import StreamingASAP
from repro.experiments import fig10_streaming
from repro.stream.sources import StreamPoint
from repro.timeseries import load


def test_streaming_push_throughput(benchmark):
    series = load("machine_temp", scale=0.25).series
    pane_size = max(len(series) // 2000, 1)

    def stream_all():
        operator = StreamingASAP(
            pane_size=pane_size, resolution=2000, refresh_interval=64
        )
        for timestamp, value in series:
            operator.push(StreamPoint(timestamp, value))
        return operator

    operator = benchmark.pedantic(stream_all, rounds=2, iterations=1)
    assert operator.refresh_count > 0


def test_fig10_sweep_and_print(benchmark):
    cells = benchmark.pedantic(
        fig10_streaming.run,
        kwargs={"intervals": (1, 4, 16, 64), "scale": 0.25, "time_budget": 1.0},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig10_streaming.format_result(cells))
    for dataset in ("traffic_data", "machine_temp"):
        # Paper: linear in log-log space (slope ~1).
        assert fig10_streaming.fit_loglog_slope(cells, dataset) > 0.5
