"""Figure 7: visual-preference study (simulated participants)."""

from repro.experiments import fig7_preference


def test_fig7_shares_and_print(benchmark):
    shares = benchmark.pedantic(
        fig7_preference.run, kwargs={"n_participants": 20}, rounds=1, iterations=1
    )
    print()
    print(fig7_preference.format_result(shares))
    datasets = list(shares)
    asap_mean = sum(shares[d]["ASAP"] for d in datasets) / len(datasets)
    # ASAP preferred well above the 25% random baseline (paper: 65%).
    assert asap_mean > 0.4
    # The Temp flip: oversmoothing wins on the 250-year trend (paper: 70/25).
    assert shares["temp"]["Oversmooth"] >= shares["temp"]["ASAP"]
