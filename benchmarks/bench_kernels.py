"""Benchmark: warm-started window search and the stacked probe kernel.

The workload is a long multi-periodic stream refreshed every pane — the
regime where the streaming operator's cost is dominated by single-window
moment evaluations inside the search.  Two operators process identical
arrivals:

* ``cold`` — ``warm_start=False``: every refresh searches from scratch,
  one kernel dispatch per candidate window;
* ``warm`` — ``warm_start=True``: each refresh prefetches the previous
  refresh's touched-window trace through one stacked
  :func:`~repro.spectral.convolution.sma_probe_moments` call and replays
  the search over the pre-filled cache, falling back to single-window
  evaluations only when the data drifts off the trace.

Before timing, the two operators' frames are verified **bit-identical**
refresh by refresh — same selected window, same smoothed bytes — and the
process exits non-zero on any violation.  A second identity gate checks the
stacked probe kernel against the single-window kernel bit for bit.  When
numba is importable, a third gate checks that searches over the compiled
backend select the same windows as the numpy grid backend.

Timing uses CPU time (``time.process_time``): refresh work is pure compute
and wall clock on shared runners is too noisy to ratchet.  Smoke runs never
fail on timing (CI asserts identity, not speed); full runs enforce
``--min-speedup``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.streaming import StreamingASAP
from repro.spectral import accel
from repro.spectral.convolution import (
    sma_grid_moments,
    sma_probe_moments,
    sma_window_moments,
)


def make_series(length: int, seed: int) -> np.ndarray:
    """Multi-periodic monitoring-shaped traffic: three nested seasonalities."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    return (
        np.sin(2 * np.pi * t / 24)
        + 0.8 * np.sin(2 * np.pi * t / 96)
        + 0.6 * np.sin(2 * np.pi * t / 480)
        + 0.3 * rng.normal(size=length)
    )


def make_operator(warm_start, resolution, refresh_interval):
    return StreamingASAP(
        pane_size=1,
        resolution=resolution,
        refresh_interval=refresh_interval,
        strategy="asap",
        incremental=True,
        warm_start=warm_start,
    )


def drive_pair(values, ts, batch, resolution, refresh_interval):
    """Advance a cold and a warm operator in lockstep, timing each refresh.

    Each round is exactly one refresh interval, pushed with
    ``defer_boundary=True`` so the boundary refresh runs inside the timed
    ``refresh_if_due`` call rather than inside ingestion.  Interleaving the
    two operators batch by batch means CPU-frequency drift over the run hits
    both timers equally — separate full passes can disagree by 30% on shared
    runners.  Returns ``(cold_frames, warm_frames, cold_seconds,
    warm_seconds, warm_operator)``.
    """
    cold = make_operator(False, resolution, refresh_interval)
    warm = make_operator(True, resolution, refresh_interval)
    frames = {"cold": [], "warm": []}
    seconds = {"cold": 0.0, "warm": 0.0}
    for start in range(0, values.size, batch):
        stop = min(start + batch, values.size)
        for label, op in (("cold", cold), ("warm", warm)):
            frames[label].extend(
                op.push_many(ts[start:stop], values[start:stop], defer_boundary=True)
            )
            started = time.process_time()
            frame = op.refresh_if_due()
            seconds[label] += time.process_time() - started
            if frame is not None:
                frames[label].append(frame)
    return frames["cold"], frames["warm"], seconds["cold"], seconds["warm"], warm


def verify_frames_bit_identical(cold_frames, warm_frames) -> dict:
    """Frame-for-frame bit identity; exits non-zero on any violation."""
    if len(cold_frames) != len(warm_frames):
        print(
            f"FAIL: {len(cold_frames)} cold frames vs {len(warm_frames)} warm frames",
            file=sys.stderr,
        )
        sys.exit(1)
    for a, b in zip(cold_frames, warm_frames):
        if a.window != b.window:
            print(
                f"FAIL: refresh {a.refresh_index}: cold window {a.window} "
                f"vs warm window {b.window}",
                file=sys.stderr,
            )
            sys.exit(1)
        if a.series.values.tobytes() != b.series.values.tobytes():
            print(
                f"FAIL: refresh {a.refresh_index}: smoothed values differ bitwise "
                f"at window {a.window}",
                file=sys.stderr,
            )
            sys.exit(1)
    return {"frames_checked": len(cold_frames)}


def verify_probe_kernel(values, seed) -> dict:
    """Stacked probe kernel vs single-window kernel, bit for bit."""
    rng = np.random.default_rng(seed)
    n = min(values.size, 2000)
    sample = values[:n]
    checked = 0
    for _ in range(8):
        count = int(rng.integers(2, 24))
        windows = sorted(set(rng.integers(2, n + 1, size=count).tolist()))
        rough, kurt = sma_probe_moments(sample, windows)
        for i, window in enumerate(windows):
            rough_s, kurt_s = sma_window_moments(sample, window)
            if (
                np.float64(rough_s).tobytes() != rough[i].tobytes()
                or np.float64(kurt_s).tobytes() != kurt[i].tobytes()
            ):
                print(
                    f"FAIL: probe kernel differs from single kernel at window {window}",
                    file=sys.stderr,
                )
                sys.exit(1)
            checked += 1
    return {"probe_windows_checked": checked}


def verify_numba_selection(values) -> dict:
    """Searches over the compiled backend must pick the numpy backend's window."""
    from repro.core.search import run_strategy
    from repro.core.smoothing import EvaluationCache

    sample = values[: min(values.size, 1500)]
    for strategy in ("asap", "binary", "grid10"):
        numba_pick = run_strategy(
            strategy, sample, None, cache=EvaluationCache(sample, kernel="numba")
        ).window
        grid_pick = run_strategy(
            strategy, sample, None, cache=EvaluationCache(sample, kernel="grid")
        ).window
        if numba_pick != grid_pick:
            print(
                f"FAIL: numba backend picked window {numba_pick} but grid picked "
                f"{grid_pick} under {strategy!r}",
                file=sys.stderr,
            )
            sys.exit(1)
    return {"numba_strategies_checked": 3}


def time_float32_lane(values, repeats) -> dict:
    """Informational: grid kernel moment pass with float32 vs float64 storage."""
    sample = values[: min(values.size, 4000)]
    windows = list(range(2, 202, 2))
    results = {}
    for storage in ("float64", "float32"):
        best = float("inf")
        for _ in range(repeats):
            started = time.process_time()
            sma_grid_moments(sample, windows, storage=storage)
            best = min(best, time.process_time() - started)
        results[f"grid_{storage}_seconds"] = best
    return results


def run(args: argparse.Namespace) -> int:
    values = make_series(args.length, args.seed)
    ts = np.arange(args.length, dtype=np.float64)
    batch = args.refresh_interval  # pane_size=1: one refresh boundary per round
    print(
        f"kernels: {args.length} points, resolution={args.resolution}, "
        f"refresh_interval={args.refresh_interval}, strategy='asap', "
        f"batch={batch}, repeats={args.repeats}"
    )

    print("verifying warm == cold frame bit-identity:")
    cold_frames, warm_frames, _, _, warm_op = drive_pair(
        values, ts, batch, args.resolution, args.refresh_interval
    )
    identity = verify_frames_bit_identical(cold_frames, warm_frames)
    identity.update(verify_probe_kernel(values, args.seed))
    print(
        f"  {identity['frames_checked']} frames bit-identical; "
        f"{identity['probe_windows_checked']} probe windows match singles bitwise"
    )
    if accel.HAVE_NUMBA:
        identity.update(verify_numba_selection(values))
        print("  numba backend selects identical windows (asap/binary/grid10)")
    else:
        identity["numba"] = "unavailable (skipped)"
        print("  numba unavailable; compiled-backend selection check skipped")

    cold_best = float("inf")
    warm_best = float("inf")
    for _ in range(args.repeats):
        _, _, cold_seconds, warm_seconds, warm_op = drive_pair(
            values, ts, batch, args.resolution, args.refresh_interval
        )
        cold_best = min(cold_best, cold_seconds)
        warm_best = min(warm_best, warm_seconds)

    refreshes = len(cold_frames)
    speedup = cold_best / warm_best if warm_best > 0 else float("inf")
    fallback_rate = (
        warm_op.warm_fallbacks / warm_op.warm_prefetches if warm_op.warm_prefetches else 0.0
    )
    float32 = time_float32_lane(values, args.repeats)

    print()
    print(f"{'search':8s} {'cpu s':>10s} {'refreshes/s':>14s}")
    print("-" * 34)
    print(f"{'cold':8s} {cold_best:10.3f} {refreshes / cold_best:14.1f}")
    print(f"{'warm':8s} {warm_best:10.3f} {refreshes / warm_best:14.1f}")
    print(f"\nwarm-start refresh speedup: {speedup:.2f}x over cold search")
    print(
        f"warm accounting: {warm_op.warm_prefetches} prefetches, "
        f"{warm_op.warm_fallbacks} fallbacks ({fallback_rate:.1%})"
    )
    print(
        f"float32 storage lane: grid moment pass "
        f"{float32['grid_float64_seconds']:.3f}s float64 vs "
        f"{float32['grid_float32_seconds']:.3f}s float32"
    )

    if args.json:
        payload = {
            "benchmark": "kernels",
            "params": {
                "length": args.length,
                "batch": batch,
                "pane_size": 1,
                "resolution": args.resolution,
                "refresh_interval": args.refresh_interval,
                "strategy": "asap",
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "identity": {"ok": True, **identity},
            "refreshes": refreshes,
            "cold_seconds": cold_best,
            "warm_seconds": warm_best,
            "cold_refreshes_per_second": refreshes / cold_best if cold_best > 0 else 0.0,
            "warm_refreshes_per_second": refreshes / warm_best if warm_best > 0 else 0.0,
            "warm_prefetches": warm_op.warm_prefetches,
            "warm_fallbacks": warm_op.warm_fallbacks,
            "fallback_rate": fallback_rate,
            "numba_available": accel.HAVE_NUMBA,
            **float32,
            "speedup": speedup,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        print(
            f"FAIL: warm-start speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=80_000, help="points in the stream")
    parser.add_argument("--resolution", type=int, default=4000, help="panes per window")
    parser.add_argument("--refresh-interval", type=int, default=25, help="panes between refreshes")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="series seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required warm/cold refresh throughput ratio (full runs only)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies identity; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.length = min(args.length, 12_000)
        args.resolution = min(args.resolution, 600)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
