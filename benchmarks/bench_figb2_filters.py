"""Figure B.2: alternative smoothing functions under ASAP's criterion."""

import pytest

from repro.core.preaggregation import preaggregate
from repro.experiments import figb2_filters
from repro.spectral.filters import filter_registry
from repro.timeseries import load


@pytest.mark.parametrize("name", ["FFT-low", "FFT-dominant", "SG1", "SG4", "minmax"])
def test_filter_single_application(benchmark, name):
    values = preaggregate(load("power").series.values, 800).values
    smoother = filter_registry()[name]
    param = list(smoother.candidates(values.size))[10]
    out = benchmark(smoother.apply, values, param)
    assert out.size > 0


def test_figb2_rows_and_print(benchmark):
    cells = benchmark.pedantic(figb2_filters.run, rounds=1, iterations=1)
    print()
    print(figb2_filters.format_result(cells))
    by_key = {(c.dataset, c.filter_name): c for c in cells}
    for dataset in ("temp", "taxi", "eeg", "sine", "power"):
        # Paper shape: minmax and FFT-dominant are far rougher than SMA.
        assert by_key[(dataset, "minmax")].ratio_vs_sma > 1.0
        assert by_key[(dataset, "FFT-dominant")].ratio_vs_sma > 1.0
