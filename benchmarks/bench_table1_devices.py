"""Table 1: device-driven search-space reduction (exact arithmetic)."""

from repro.core.preaggregation import preaggregate
from repro.experiments import table1_devices


def test_table1_rows_and_print(benchmark):
    rows = benchmark(table1_devices.run)
    print()
    print(table1_devices.format_result(rows))
    measured = {row.device.name: row.reduction for row in rows}
    assert measured["38mm Apple Watch"] == 3676


def test_preaggregation_of_1m_points(benchmark, periodic_1m):
    """The operation Table 1's reduction pays for: bucketing 1M points."""
    result = benchmark(preaggregate, periodic_1m, 2304)
    assert result.ratio == 434
