"""Figure B.1: sensitivity of study outcomes to roughness/kurtosis targets."""

from repro.experiments import figb1_sensitivity


def test_figb1_grid_and_print(benchmark):
    cells = benchmark.pedantic(
        figb1_sensitivity.run,
        kwargs={"trials_per_cell": 12},
        rounds=1,
        iterations=1,
    )
    print()
    print(figb1_sensitivity.format_result(cells))
    by_variant: dict[str, list[float]] = {}
    for cell in cells:
        by_variant.setdefault(cell.variant, []).append(cell.accuracy)
    means = {v: sum(a) / len(a) for v, a in by_variant.items()}
    # Paper: much rougher plots (8x) hurt accuracy relative to ASAP.
    assert means["ASAP"] > means["8x"]
