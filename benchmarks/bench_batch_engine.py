"""Benchmark: the multi-series batch engine vs the naive single-series loop.

Three execution modes are timed per strategy over one synthetic dashboard of
series:

* ``naive``  — the pre-vectorization behaviour: loop ``smooth()`` per series
  with the scalar candidate evaluator (one Python iteration and several
  array passes per candidate window);
* ``loop``   — loop today's ``smooth()`` per series (vectorized candidate
  kernel, no batching);
* ``engine`` — ``smooth_many()``: batched preaggregation, batched moment
  kernels, shared caches.

Before timing anything the engine's results are verified to be bit-identical
to the looped results for every strategy (the equivalence guarantee of
``repro.engine``); the process exits non-zero on any mismatch.

Run standalone (it is not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py
    PYTHONPATH=src python benchmarks/bench_batch_engine.py --smoke   # CI-sized

"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import smooth, smooth_many

#: Strategies whose candidates form a fixed grid — the engine's headline
#: speedup target (the batched kernels evaluate the whole grid in one call).
GRID_STRATEGIES = ("exhaustive", "grid2", "grid10")
ADAPTIVE_STRATEGIES = ("binary", "asap")


def make_dashboard(n_series: int, length: int, seed: int) -> list[np.ndarray]:
    """A synthetic dashboard: periodic series with noise and occasional spikes."""
    rng = np.random.default_rng(seed)
    series = []
    t = np.arange(length, dtype=np.float64)
    for index in range(n_series):
        period = float(rng.integers(20, max(length // 30, 21)))
        values = np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=length)
        if index % 5 == 0:
            values[rng.integers(0, length)] += 10.0  # a kurtosis-guarding spike
        series.append(values)
    return series


def best_of_interleaved(fns: dict, repeats: int) -> dict:
    """Best-of timings with the contenders interleaved inside each repeat.

    Sustained single-core load makes laptops and CI runners throttle over a
    run; timing the modes back to back inside each repeat keeps that drift
    from systematically penalizing whichever contender is measured last.
    """
    times: dict = {name: [] for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            started = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - started)
    return {name: min(values) for name, values in times.items()}


def verify_bit_identity(series, resolution: int, strategies) -> None:
    """Assert smooth_many == looped smooth, exactly, for every strategy."""
    for strategy in strategies:
        looped = [smooth(s, resolution=resolution, strategy=strategy) for s in series]
        batched = smooth_many(series, resolution=resolution, strategy=strategy)
        mismatches = sum(1 for a, b in zip(looped, batched) if a != b)
        if mismatches:
            print(
                f"FAIL: {strategy}: {mismatches}/{len(series)} series differ "
                "between smooth_many and the looped smooth()",
                file=sys.stderr,
            )
            sys.exit(1)
        print(f"  {strategy:11s} bit-identical across {len(series)} series")


def run(args: argparse.Namespace) -> int:
    from repro.core.search import STRATEGIES

    series = make_dashboard(args.series, args.length, args.seed)
    strategies = tuple(name.strip() for name in args.strategies.split(","))
    unknown = [name for name in strategies if name not in STRATEGIES]
    if unknown:
        print(
            f"unknown strategies: {', '.join(unknown)}; "
            f"available: {', '.join(STRATEGIES)}",
            file=sys.stderr,
        )
        return 2
    print(
        f"dashboard: {len(series)} series x {args.length} points, "
        f"resolution={args.resolution}, repeats={args.repeats}"
    )

    print("verifying equivalence guarantee (smooth_many == looped smooth):")
    verify_bit_identity(series, args.resolution, strategies)

    header = (
        f"{'strategy':11s} {'naive loop':>12s} {'loop':>12s} {'engine':>12s} "
        f"{'naive/engine':>13s} {'loop/engine':>12s}"
    )
    print()
    print(header)
    print("-" * len(header))
    grid_naive_total = grid_engine_total = 0.0
    per_strategy: dict = {}
    for strategy in strategies:
        timings = best_of_interleaved(
            {
                "naive": lambda: [
                    smooth(
                        s,
                        resolution=args.resolution,
                        strategy=strategy,
                        kernel="scalar",
                    )
                    for s in series
                ],
                "loop": lambda: [
                    smooth(s, resolution=args.resolution, strategy=strategy)
                    for s in series
                ],
                "engine": lambda: smooth_many(
                    series,
                    resolution=args.resolution,
                    strategy=strategy,
                    workers=args.workers,
                ),
            },
            args.repeats,
        )
        naive, loop, engine = timings["naive"], timings["loop"], timings["engine"]
        per_strategy[strategy] = {
            "naive_seconds": naive,
            "loop_seconds": loop,
            "engine_seconds": engine,
            "naive_over_engine": naive / engine,
            "loop_over_engine": loop / engine,
        }
        if strategy in GRID_STRATEGIES:
            grid_naive_total += naive
            grid_engine_total += engine
        print(
            f"{strategy:11s} {naive * 1e3:10.1f} ms {loop * 1e3:10.1f} ms "
            f"{engine * 1e3:10.1f} ms {naive / engine:12.2f}x {loop / engine:11.2f}x"
        )

    aggregate = None
    if grid_engine_total > 0.0:
        aggregate = grid_naive_total / grid_engine_total
        print(
            f"\ngrid strategies aggregate: naive {grid_naive_total * 1e3:.1f} ms vs "
            f"engine {grid_engine_total * 1e3:.1f} ms -> {aggregate:.2f}x"
        )
        # Timing never fails the run: CI machines throttle unpredictably, and
        # the contract this benchmark enforces is bit-identity (checked above,
        # which exits non-zero on violation), not speed.

    if args.json:
        payload = {
            "benchmark": "batch_engine",
            "params": {
                "series": len(series),
                "length": args.length,
                "resolution": args.resolution,
                "strategies": list(strategies),
                "workers": args.workers,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "identity": {"ok": True, "strategies_verified": list(strategies)},
            "timings": per_strategy,
            "grid_aggregate_naive_over_engine": aggregate,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=120, help="series per dashboard")
    parser.add_argument("--length", type=int, default=12_000, help="points per series")
    parser.add_argument("--resolution", type=int, default=800, help="target pixels")
    parser.add_argument(
        "--strategies",
        default=",".join(GRID_STRATEGIES + ADAPTIVE_STRATEGIES),
        help="comma-separated strategy names to benchmark",
    )
    parser.add_argument("--workers", type=int, default=None, help="engine worker count")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="dashboard seed")
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies equivalence and that the harness runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.series = min(args.series, 12)
        args.length = min(args.length, 2_000)
        args.resolution = min(args.resolution, 250)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
