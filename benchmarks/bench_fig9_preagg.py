"""Figure 9: impact of pixel-aware preaggregation."""

from repro.core.batch import smooth
from repro.experiments import fig9_preagg


def test_smooth_with_preaggregation(benchmark, machine_temp_values):
    result = benchmark(smooth, machine_temp_values, resolution=1200)
    assert result.preaggregation_ratio > 1


def test_smooth_without_preaggregation(benchmark, machine_temp_values):
    result = benchmark(
        smooth, machine_temp_values, resolution=1200, use_preaggregation=False
    )
    assert result.preaggregation_ratio == 1


def test_fig9_sweep_and_print(benchmark):
    cells = benchmark.pedantic(
        fig9_preagg.run,
        kwargs={"resolutions": (1000, 2000, 3000)},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig9_preagg.format_result(cells))
    by_key = {(c.resolution, c.configuration): c for c in cells}
    for resolution in (1000, 2000, 3000):
        # Paper ordering: full ASAP >> Grid1 (preagg only) >> baseline.
        assert (
            by_key[(resolution, "ASAP")].speedup
            > by_key[(resolution, "Grid1")].speedup
            > 1.0
        )
