"""Benchmark: sharded cluster serving + durable restore vs one StreamHub.

The workload is the ROADMAP's production scenario pushed past one process:
hundreds of concurrent streams, each delivering one scrape interval of
points per round, served by a :class:`~repro.cluster.ShardedHub` whose
shards are real ``multiprocessing`` workers.  Three properties are checked,
in order:

1. **Sharding changes nothing.**  A 4-shard process-backed cluster (and the
   in-process backend) is fed identical data to a single
   :class:`~repro.service.StreamHub`; every stream's frames must be
   bit-identical (sessions are partitioned, never split).
2. **Durability changes nothing.**  A run is checkpointed part-way
   (:mod:`repro.persist`), the serving object discarded ("kill"), restored,
   and continued; the post-restore frames must be bit-identical to an
   uninterrupted run — for the single hub *and* for the cluster's
   kill-one-shard -> ``drop_shard`` -> ``restore_streams`` recovery path.
3. **Shards buy throughput.**  Aggregate ingest+tick wall time for the same
   rounds on 4 process shards vs 1 process shard (both pay the same IPC
   protocol, so the ratio isolates parallelism).

The process exits non-zero on any equivalence violation (the acceptance
gate; run before timing).  Timing never fails the smoke run — CI asserts
equivalence, not speed — and full runs enforce ``--min-speedup`` only when
the machine actually has >= 2 usable cores (process parallelism cannot beat
1x on a single core; the report says so instead of failing).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.cluster import ShardDownError, ShardedHub
from repro.persist import checkpoint, restore
from repro.service import StreamConfig, StreamHub


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_streams(n_streams: int, length: int, seed: int) -> list[np.ndarray]:
    """Dashboard-shaped traffic: noisy periodic series with occasional spikes."""
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    streams = []
    for index in range(n_streams):
        period = float(rng.integers(20, max(length // 20, 21)))
        values = np.sin(2 * np.pi * t / period) + 0.3 * rng.normal(size=length)
        if index % 7 == 0:
            values[rng.integers(0, length)] += 8.0
        streams.append(values)
    return streams


def drive_single(streams, ts, chunk, config, start=0, stop=None, hub=None):
    """One StreamHub over rounds [start, stop); returns (hub, frames, seconds)."""
    stop = ts.size if stop is None else stop
    if hub is None:
        hub = StreamHub(max_sessions=len(streams), default_config=config)
        for index in range(len(streams)):
            hub.create_stream(f"stream-{index}")
    frames = {f"stream-{index}": [] for index in range(len(streams))}
    started = time.perf_counter()
    for position in range(start, stop, chunk):
        end = min(position + chunk, stop)
        for index, values in enumerate(streams):
            sid = f"stream-{index}"
            frames[sid].extend(hub.ingest(sid, ts[position:end], values[position:end]))
        for sid, emitted in hub.tick().items():
            frames[sid].extend(emitted)
    return hub, frames, time.perf_counter() - started


def drive_sharded(streams, ts, chunk, config, shards, backend, start=0, stop=None, hub=None):
    """A ShardedHub over rounds [start, stop); returns (hub, frames, seconds)."""
    stop = ts.size if stop is None else stop
    if hub is None:
        hub = ShardedHub(
            shards=shards,
            backend=backend,
            max_sessions_per_shard=len(streams),
            default_config=config,
        )
        for index in range(len(streams)):
            hub.create_stream(f"stream-{index}")
    frames = {f"stream-{index}": [] for index in range(len(streams))}
    started = time.perf_counter()
    for position in range(start, stop, chunk):
        end = min(position + chunk, stop)
        for index, values in enumerate(streams):
            sid = f"stream-{index}"
            hub.ingest(sid, ts[position:end], values[position:end], buffered=True)
        for sid, emitted in hub.tick().items():
            frames[sid].extend(emitted)
    return hub, frames, time.perf_counter() - started


def check_frames_equal(reference, candidate, label: str) -> int:
    """Frame-for-frame bit-identity; exits non-zero on any violation."""
    checked = 0
    for sid, ref_frames in reference.items():
        got_frames = candidate.get(sid, [])
        if len(ref_frames) != len(got_frames):
            print(
                f"FAIL [{label}]: {sid}: {len(ref_frames)} reference frames vs "
                f"{len(got_frames)}",
                file=sys.stderr,
            )
            sys.exit(1)
        for a, b in zip(ref_frames, got_frames):
            checked += 1
            if a.window != b.window or not np.array_equal(a.series.values, b.series.values):
                print(
                    f"FAIL [{label}]: {sid} refresh {a.refresh_index}: window "
                    f"{a.window} vs {b.window} or smoothed values differ",
                    file=sys.stderr,
                )
                sys.exit(1)
    return checked


def verify_sharded(streams, ts, chunk, config, shards, reference) -> dict:
    """Sharded frames (both backends) == single-hub frames, bit for bit."""
    counts = {}
    for backend in ("inprocess", "process"):
        hub, frames, _ = drive_sharded(streams, ts, chunk, config, shards, backend)
        hub.shutdown()
        counts[backend] = check_frames_equal(reference, frames, f"sharded-{backend}")
    return counts


def verify_restore(streams, ts, chunk, config, shards, reference, split) -> dict:
    """checkpoint -> kill -> restore frames == uninterrupted, bit for bit."""
    # The uninterrupted run's tail: frames emitted strictly after `split`
    # (the head run tells us how many frames each stream emitted before it).
    single, head_frames, _ = drive_single(streams, ts, chunk, config, stop=split)
    tail = {sid: reference[sid][len(head_frames[sid]) :] for sid in reference}

    # (a) single hub: checkpoint, discard, restore, continue.
    blob = checkpoint(single)
    del single
    restored = restore(blob)
    _, post_frames, _ = drive_single(streams, ts, chunk, config, start=split, hub=restored)
    checked_single = check_frames_equal(tail, post_frames, "restore-single")

    # (b) cluster: checkpoint, kill one worker mid-service, drop it, restore
    # its streams from the checkpoint, continue serving everything.
    cluster, cluster_head, _ = drive_sharded(
        streams, ts, chunk, config, shards, "process", stop=split
    )
    cluster_blob = cluster.checkpoint()
    victim = cluster.shard_of("stream-0")
    cluster.kill_shard(victim)
    try:
        for index, values in enumerate(streams):
            sid = f"stream-{index}"
            cluster.ingest(sid, ts[split : split + 1], values[split : split + 1], buffered=True)
        cluster.tick()
        print("FAIL [restore-cluster]: killed shard did not surface", file=sys.stderr)
        sys.exit(1)
    except ShardDownError as exc:
        lost = cluster.drop_shard(exc.shard_ids[0])
        cluster.restore_streams(cluster_blob, lost)
    # The killed shard's streams resume from the checkpoint; feed them the
    # full post-split range and compare against the uninterrupted tail.
    # (Healthy shards already consumed one point; their equivalence is
    # covered by phase 1, so only the restored streams are driven on.)
    lost_set = set(lost)
    post_cluster = {sid: [] for sid in lost_set}
    for position in range(split, ts.size, chunk):
        end = min(position + chunk, ts.size)
        for index, values in enumerate(streams):
            sid = f"stream-{index}"
            if sid in lost_set:
                cluster.ingest(sid, ts[position:end], values[position:end], buffered=True)
        for sid, emitted in cluster.tick().items():
            if sid in lost_set:
                post_cluster[sid].extend(emitted)
    cluster.shutdown()
    checked_cluster = check_frames_equal(
        {sid: tail[sid] for sid in lost_set}, post_cluster, "restore-cluster"
    )
    return {
        "frames_checked_single": checked_single,
        "frames_checked_cluster": checked_cluster,
        "streams_killed": len(lost_set),
        "checkpoint_bytes": len(blob),
    }


def run(args: argparse.Namespace) -> int:
    config = StreamConfig(
        pane_size=args.pane_size,
        resolution=args.resolution,
        refresh_interval=args.refresh_interval,
        strategy=args.strategy,
    )
    streams = make_streams(args.streams, args.length, args.seed)
    ts = np.arange(args.length, dtype=np.float64)
    chunk = args.chunk or args.pane_size * args.refresh_interval
    split = (args.length // (2 * chunk)) * chunk
    cpus = usable_cpus()
    print(
        f"cluster: {len(streams)} streams x {args.length} points, "
        f"pane_size={config.pane_size}, resolution={config.resolution}, "
        f"refresh_interval={config.refresh_interval}, chunk={chunk}, "
        f"shards={args.shards} (process backend), cpus={cpus}"
    )

    _, reference, _ = drive_single(streams, ts, chunk, config)
    total_frames = sum(len(f) for f in reference.values())

    print("verifying sharded == single hub (frames bit-identical):")
    sharded_checked = verify_sharded(streams, ts, chunk, config, args.shards, reference)
    for backend, checked in sharded_checked.items():
        print(f"  {backend}: {checked} frames identical across {len(streams)} streams")

    print("verifying checkpoint -> kill -> restore == uninterrupted:")
    restore_checked = verify_restore(streams, ts, chunk, config, args.shards, reference, split)
    print(
        f"  single hub: {restore_checked['frames_checked_single']} post-restore "
        f"frames identical ({restore_checked['checkpoint_bytes']} byte checkpoint)"
    )
    print(
        f"  cluster: killed 1 of {args.shards} shards "
        f"({restore_checked['streams_killed']} streams), "
        f"{restore_checked['frames_checked_cluster']} post-restore frames identical"
    )

    timings = {}
    for shards in (1, args.shards):
        best = float("inf")
        for _ in range(args.repeats):
            hub, _, seconds = drive_sharded(streams, ts, chunk, config, shards, "process")
            hub.shutdown()
            best = min(best, seconds)
        timings[shards] = best
    _, _, single_seconds = drive_single(streams, ts, chunk, config)

    total_points = len(streams) * args.length
    speedup = timings[1] / timings[args.shards] if timings[args.shards] > 0 else float("inf")
    print()
    print(f"{'driver':18s} {'seconds':>9s} {'points/s':>12s} {'frames/s':>10s}")
    print("-" * 52)
    for label, seconds in (
        ("single StreamHub", single_seconds),
        ("1 process shard", timings[1]),
        (f"{args.shards} process shards", timings[args.shards]),
    ):
        print(
            f"{label:18s} {seconds:9.3f} {total_points / seconds:12.0f} "
            f"{total_frames / seconds:10.1f}"
        )
    print(
        f"\naggregate ingest+tick throughput: {speedup:.2f}x with "
        f"{args.shards} process shards vs 1"
    )

    if args.json:
        payload = {
            "benchmark": "cluster",
            "params": {
                "streams": len(streams),
                "length": args.length,
                "chunk": chunk,
                "split": split,
                "pane_size": config.pane_size,
                "resolution": config.resolution,
                "refresh_interval": config.refresh_interval,
                "strategy": config.strategy,
                "shards": args.shards,
                "repeats": args.repeats,
                "seed": args.seed,
                "smoke": args.smoke,
                "cpus": cpus,
            },
            "equivalence": {
                "ok": True,
                "sharded_frames_checked": sharded_checked,
                **restore_checked,
            },
            "frames": total_frames,
            "single_hub_seconds": single_seconds,
            "one_shard_seconds": timings[1],
            "sharded_seconds": timings[args.shards],
            "speedup_vs_one_shard": speedup,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if not args.smoke and speedup < args.min_speedup:
        if cpus < 2:
            print(
                f"NOTE: speedup {speedup:.2f}x below {args.min_speedup:.2f}x, but "
                f"only {cpus} usable core(s) — process parallelism cannot exceed "
                f"1x here; timing gate skipped (equivalence already verified)"
            )
        else:
            print(
                f"FAIL: cluster speedup {speedup:.2f}x below required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=240, help="concurrent streams")
    parser.add_argument("--length", type=int, default=4000, help="points per stream")
    parser.add_argument("--pane-size", type=int, default=4, help="points per pane")
    parser.add_argument("--resolution", type=int, default=800, help="panes per window")
    parser.add_argument(
        "--refresh-interval", type=int, default=25, help="panes between refreshes"
    )
    parser.add_argument("--strategy", default="asap", help="search strategy per session")
    parser.add_argument("--shards", type=int, default=4, help="process shards to time")
    parser.add_argument(
        "--chunk", type=int, default=None, help="points per ingest batch (default: one refresh)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=20170501, help="stream seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required 4-shard/1-shard throughput ratio (full runs, >= 2 cores)",
    )
    parser.add_argument("--json", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: verifies equivalence; never fails on timing",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.streams = min(args.streams, 12)
        args.length = min(args.length, 1200)
        args.resolution = min(args.resolution, 200)
        args.repeats = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
