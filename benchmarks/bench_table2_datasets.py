"""Table 2: per-dataset window selection, ASAP vs exhaustive search."""

from repro.core.search import asap_search, exhaustive_search
from repro.experiments import table2_datasets


def test_asap_search_taxi(benchmark, taxi_aggregated):
    result = benchmark(asap_search, taxi_aggregated)
    assert result.window == 112  # matches the paper's Table 2 exactly


def test_exhaustive_search_taxi(benchmark, taxi_aggregated):
    result = benchmark(exhaustive_search, taxi_aggregated)
    assert result.window == 112


def test_table2_rows_and_print(benchmark):
    rows = benchmark.pedantic(
        table2_datasets.run, kwargs={"scale": 0.3}, rounds=1, iterations=1
    )
    print()
    print(table2_datasets.format_result(rows))
    assert len(rows) == 11
