"""Durable checkpoint/restore of serving state.

``checkpoint`` snapshots a serving object — a
:class:`~repro.service.StreamHub` or a
:class:`~repro.cluster.ShardedHub` — into one self-describing payload
(:mod:`repro.persist.codec`); ``restore`` rebuilds it.  The guarantee is the
repo-wide discipline applied to durability: a restored hub emits
**bit-identical** subsequent frames to one that was never interrupted,
because every float the refresh path depends on (pane means, open-pane
sketches, rolling lag/moment/flow sums, pyramid buckets and carry-overs,
refresh countdowns, the previous window) is persisted exactly.  Derived
caches (per-refresh evaluation caches, per-session view caches) are *never*
persisted — they are rebuilt lazily, so a checkpoint stays small and the
cache layer can evolve without a schema bump.

Checkpoint **kinds** (the ``kind`` field of the payload):

* ``"streamhub"`` — one :class:`StreamHub`: hub parameters, counters, and a
  session list, each session carrying its config (a full
  :class:`~repro.spec.AsapSpec` dict — the unified spec is the wire schema
  for configuration), bookkeeping (created/last-active tick, frames
  emitted), and the full
  :meth:`~repro.core.streaming.StreamingASAP.state_dict` tree::

      {"max_sessions": int, "max_panes_per_session": int,
       "default_config": {...AsapSpec fields...},
       "eviction_policy": str, "idle_ticks_before_eviction": int | None,
       "tick": int, "next_auto_id": int, "counters": {...},
       "sessions": [{"stream_id": str, "config": {...},
                     "created_tick": int, "last_active_tick": int,
                     "frames_emitted": int, "operator": {...}}, ...]}

* ``"sharded-hub"`` — one :class:`ShardedHub`: the ring/backend parameters,
  the stream->shard placement map, and one ``"streamhub"`` state per shard
  (see :meth:`repro.cluster.ShardedHub.state_dict`).

``restore`` dispatches on the kind, so one entry point reads both.
"""

from __future__ import annotations

from . import codec
from .codec import CheckpointError

__all__ = ["checkpoint", "restore", "CheckpointError"]


def checkpoint(hub, path=None):
    """Snapshot *hub* durably; returns raw ``bytes`` or the path written.

    *hub* is any object with the checkpoint protocol — a ``state_dict()``
    method plus a ``checkpoint_kind`` class attribute naming its payload kind
    (:class:`~repro.service.StreamHub` and
    :class:`~repro.cluster.ShardedHub` both qualify).  With *path* the
    payload is written to disk and the :class:`~pathlib.Path` returned;
    without it the payload is returned as ``bytes``.
    """
    kind = getattr(hub, "checkpoint_kind", None)
    state_dict = getattr(hub, "state_dict", None)
    if kind is None or state_dict is None:
        raise CheckpointError(
            f"{type(hub).__name__!r} is not checkpointable: it needs a "
            f"state_dict() method and a checkpoint_kind attribute"
        )
    state = state_dict()
    if path is not None:
        return codec.dump(kind, state, path)
    return codec.dumps(kind, state)


def restore(source, **kwargs):
    """Rebuild a serving object from a checkpoint (``bytes`` or a path).

    Dispatches on the payload's kind: ``"streamhub"`` payloads come back as
    a :class:`~repro.service.StreamHub`, ``"sharded-hub"`` payloads as a
    :class:`~repro.cluster.ShardedHub` (extra *kwargs* — e.g. ``backend=`` —
    are forwarded to the cluster's restore path).  The restored object emits
    bit-identical subsequent frames to an uninterrupted one.
    """
    kind, state = codec.load(source)
    if kind == "streamhub":
        if kwargs:
            raise CheckpointError(
                f"streamhub checkpoints accept no restore options, got {sorted(kwargs)}"
            )

        from ..service import StreamHub

        return StreamHub.from_state(state)
    if kind == "sharded-hub":
        from ..cluster import ShardedHub

        return ShardedHub.from_state(state, **kwargs)
    raise CheckpointError(f"unknown checkpoint kind {kind!r}")


def _read_state(source, expected_kind: str) -> dict:
    """Internal: load a payload and require a specific kind (used by cluster
    recovery paths that pull individual sessions out of a checkpoint)."""
    kind, state = codec.load(source)
    if kind != expected_kind:
        raise CheckpointError(f"expected a {expected_kind!r} checkpoint, got kind {kind!r}")
    return state
