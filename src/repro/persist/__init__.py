"""repro.persist — durable, dependency-free checkpoint/restore of serving state.

The serving tiers (:mod:`repro.service`, :mod:`repro.cluster`) hold all of
their state in process memory: pane buffers and open panes, rolling
ACF/moment sums, pyramid levels, refresh countdowns.  This package makes that
state durable:

* :func:`checkpoint` — snapshot a :class:`~repro.service.StreamHub` or
  :class:`~repro.cluster.ShardedHub` to ``bytes`` or a file;
* :func:`restore` — rebuild it, with the repo-wide guarantee applied to
  durability: the restored hub emits **bit-identical** subsequent frames to
  one that was never interrupted;
* :mod:`repro.persist.codec` — the wire format: one NPZ payload holding a
  JSON manifest plus the state's arrays, versioned by
  :data:`~repro.persist.codec.SCHEMA_VERSION` and written/read entirely with
  the standard library and numpy (no pickle).

Derived caches are never persisted — they rebuild lazily after restore.
"""

from .checkpoint import CheckpointError, checkpoint, restore
from .codec import SCHEMA_VERSION

__all__ = ["checkpoint", "restore", "CheckpointError", "SCHEMA_VERSION"]
