"""The checkpoint wire format: nested state dicts <-> one NPZ payload.

Checkpoints are **dependency-free**: the only serialization machinery used is
the standard library's :mod:`json` plus numpy's NPZ container (a zip of
``.npy`` files), both of which every consumer of this repo already has.  No
pickle is ever written or read (``np.load`` runs with ``allow_pickle=False``),
so a checkpoint can be inspected, diffed, and loaded across Python versions
without executing anything.

**Layout.**  A payload is ``np.savez_compressed`` output with:

* ``manifest`` — a UTF-8 JSON document stored as a ``uint8`` array:
  ``{"schema": <int>, "kind": <str>, "state": <tree>}``.  The tree mirrors
  the producer's ``state_dict()`` nesting; scalars (bool/int/float/str/None)
  are stored inline — floats round-trip exactly because :mod:`json` writes
  shortest-repr float64, and non-finite floats use JSON's ``NaN``/
  ``Infinity`` extension — and every numpy array is replaced by the marker
  ``{"__npz__": "<entry>"}``;
* one NPZ entry per array, named ``arr0``, ``arr1``, ... in tree order.

``loads``/``load`` invert the transformation and enforce the schema version:
a payload written by a *newer* schema is rejected with
:class:`CheckpointError` naming both versions (the policy is a single
monotone integer — any field change that old readers would misinterpret bumps
it; see the README's "Cluster & durability" section).

**Wire framing.**  The network serving tier (:mod:`repro.net`) speaks this
same envelope over sockets: every message is one ``dumps`` payload behind an
8-byte header — the magic :data:`WIRE_MAGIC` plus a big-endian ``uint32``
payload length (:func:`frame_message` / :func:`parse_header`).  Framing
errors raise :class:`~repro.errors.WireProtocolError`; because the payload
*is* a codec envelope, protocol versioning and checkpoint versioning are the
same :data:`SCHEMA_VERSION`, enforced in one place (``loads``).
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from ..errors import CheckpointError, WireProtocolError

__all__ = [
    "CheckpointError",
    "SCHEMA_VERSION",
    "dumps",
    "loads",
    "dump",
    "load",
    "WIRE_MAGIC",
    "WIRE_HEADER_SIZE",
    "MAX_MESSAGE_BYTES",
    "frame_message",
    "parse_header",
]

#: Bumped on any incompatible change to the manifest layout or any producer's
#: ``state_dict()`` fields.  Readers reject payloads with a different version.
#: Version 2: session/default configs are full :class:`repro.spec.AsapSpec`
#: dicts (the version-1 ``StreamConfig`` fields plus ``use_preaggregation``
#: and ``kernel``), which version-1 readers would reject as unknown fields.
#: Version 3: specs gain ``warm_start``; operator state gains ``warm_start``,
#: ``kernel``, the warm probe trace (``warm_trace``), and the
#: ``warm_prefetches``/``warm_fallbacks`` counters — required keys that
#: version-2 readers would fail on (and version-2 payloads lack).
#: Version 4: specs gain the data-quality knobs (``normalize``, ``cadence``,
#: ``gap_policy``, ``watermark``); operator state gains those fields plus the
#: ``reorder``/``normalizer`` stage states; pane-buffer state gains
#: ``track_quality``/``synth``/``open_synth``; frame state gains ``quality``.
#: Version 5: specs gain the ``backfill`` lane knob; operator state gains
#: ``backfill`` plus the ``backfills``/``backfill_points``/``backfill_elided``
#: counters — required fields that version-4 readers would reject as unknown
#: spec keys.
#: Version 6: specs gain the network-serving knobs (``max_connections``,
#: ``subscribe_queue``), which version-5 readers would reject as unknown
#: fields; the same integer stamps every :mod:`repro.net` wire message, so a
#: client and server disagreeing on any of the above fail the handshake.
SCHEMA_VERSION = 6

#: Marker key replacing numpy arrays in the JSON manifest tree.
_ARRAY_MARKER = "__npz__"


def _flatten(node, arrays: dict, path: str):
    """Replace arrays with NPZ markers; validate everything else is JSON-safe."""
    if isinstance(node, np.ndarray):
        entry = f"arr{len(arrays)}"
        arrays[entry] = node
        return {_ARRAY_MARKER: entry}
    if isinstance(node, dict):
        if _ARRAY_MARKER in node:
            raise CheckpointError(f"state dict at {path!r} uses the reserved key {_ARRAY_MARKER!r}")
        return {str(key): _flatten(value, arrays, f"{path}.{key}") for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten(value, arrays, f"{path}[{i}]") for i, value in enumerate(node)]
    if isinstance(node, (np.integer, np.floating, np.bool_)):
        return node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise CheckpointError(
        f"state at {path!r} has unserializable type {type(node).__name__!r}; "
        f"checkpoint state must be scalars, strings, None, lists/dicts, or "
        f"numpy arrays"
    )


def _restore(node, archive):
    if isinstance(node, dict):
        if set(node) == {_ARRAY_MARKER}:
            return archive[node[_ARRAY_MARKER]]
        return {key: _restore(value, archive) for key, value in node.items()}
    if isinstance(node, list):
        return [_restore(value, archive) for value in node]
    return node


def dumps(kind: str, state: dict) -> bytes:
    """Encode one state tree as a schema-versioned NPZ payload."""
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "schema": SCHEMA_VERSION,
        "kind": str(kind),
        "state": _flatten(state, arrays, "state"),
    }
    encoded = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, manifest=encoded, **arrays)
    return buffer.getvalue()


def loads(data: bytes) -> tuple[str, dict]:
    """Decode a payload produced by :func:`dumps`; returns ``(kind, state)``."""
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            if "manifest" not in archive:
                raise CheckpointError("payload has no manifest; not a repro checkpoint")
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
            schema = manifest.get("schema")
            if schema != SCHEMA_VERSION:
                raise CheckpointError(
                    f"checkpoint schema version {schema!r} is not supported by "
                    f"this reader (version {SCHEMA_VERSION}); re-checkpoint with "
                    f"a matching version of the library"
                )
            state = _restore(manifest["state"], archive)
    except (zipfile.BadZipFile, ValueError, KeyError) as exc:
        raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
    return manifest["kind"], state


#: First bytes of every wire message; garbage (an HTTP request, say, or a
#: random port scan) is rejected on the first 4 bytes instead of being
#: buffered until some bogus length prefix is satisfied.
WIRE_MAGIC = b"ASNP"

#: Magic (4 bytes) + big-endian uint32 payload length.
WIRE_HEADER_SIZE = 8

#: Default per-message payload ceiling (64 MiB).  Large enough for a
#: checkpoint of a busy hub, small enough that a hostile or corrupt length
#: prefix cannot make a peer allocate without bound.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_WIRE_HEADER = struct.Struct(">4sI")


def frame_message(kind: str, state: dict, *, limit: int = MAX_MESSAGE_BYTES) -> bytes:
    """One wire message: the 8-byte header plus a :func:`dumps` envelope.

    Raises :class:`~repro.errors.WireProtocolError` when the encoded payload
    exceeds *limit* — the sender's half of the bound :func:`parse_header`
    enforces on receipt, so an oversized message fails loudly at its source
    instead of poisoning the peer's connection.
    """
    payload = dumps(kind, state)
    if len(payload) > limit:
        raise WireProtocolError(
            f"message payload is {len(payload)} bytes, over the "
            f"{limit}-byte wire limit"
        )
    return _WIRE_HEADER.pack(WIRE_MAGIC, len(payload)) + payload


def parse_header(header: bytes, *, limit: int = MAX_MESSAGE_BYTES) -> int:
    """Validate one 8-byte wire header; returns the payload length to read.

    Raises :class:`~repro.errors.WireProtocolError` on a short header, a bad
    magic (the peer is not speaking this protocol), or a length over *limit*
    (a corrupt or hostile prefix must never drive allocation).
    """
    if len(header) != WIRE_HEADER_SIZE:
        raise WireProtocolError(
            f"truncated wire header: got {len(header)} of {WIRE_HEADER_SIZE} bytes"
        )
    magic, length = _WIRE_HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise WireProtocolError(
            f"bad wire magic {magic!r}; peer is not speaking the ASAP protocol"
        )
    if length > limit:
        raise WireProtocolError(
            f"declared payload of {length} bytes exceeds the {limit}-byte wire limit"
        )
    return int(length)


def dump(kind: str, state: dict, path) -> Path:
    """Encode and write a payload; returns the path written."""
    path = Path(path)
    path.write_bytes(dumps(kind, state))
    return path


def load(source) -> tuple[str, dict]:
    """Decode a payload from raw ``bytes`` or a filesystem path."""
    if isinstance(source, (bytes, bytearray)):
        return loads(bytes(source))
    return loads(Path(source).read_bytes())
