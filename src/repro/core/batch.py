"""Batch ASAP: the public one-call smoothing API (Algorithm 2 end to end).

Given a series and a target resolution, :func:`smooth`:

1. preaggregates to the point-to-pixel ratio (Section 4.4),
2. searches for the best window with the requested strategy (ASAP by
   default; the baselines are available for comparison), and
3. applies the simple moving average and returns a
   :class:`~repro.core.result.SmoothingResult`.

Configuration flows through one object: every call builds (or is handed) an
:class:`~repro.spec.AsapSpec`, so the knob spelling, validation, and defaults
are identical across ``smooth``, ``find_window``, the reusable :class:`ASAP`
operator, the batch engine, and the serving tiers — invalid knobs raise
:class:`~repro.errors.SpecError` (a ``ValueError``) naming the field.  The
kwarg signatures remain as shims that delegate to the spec path.

:class:`ASAP` wraps the same pipeline as a configured, reusable object.  For
smoothing *many* series per refresh — the dashboard workload — see
:func:`repro.engine.smooth_many`, which drives this exact pipeline with
shared caches and batched kernels and therefore returns bit-identical
results.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataQualityError
from ..quality.normalize import normalize_series
from ..spec import DEFAULT_RESOLUTION, AsapSpec, resolve_spec, spec_backed
from ..timeseries.series import TimeSeries
from .acf import ACFAnalysis
from .preaggregation import expected_ratio, prepare_search_input
from .result import SmoothingResult
from .search import SearchResult, run_strategy
from .smoothing import EvaluationCache, sma

__all__ = ["smooth", "find_window", "ASAP", "DEFAULT_RESOLUTION"]


def _coerce_series(data) -> TimeSeries:
    if isinstance(data, TimeSeries):
        return data
    return TimeSeries(np.asarray(data, dtype=np.float64))


def _input_series(data, spec: AsapSpec) -> TimeSeries:
    """Coerce the batch input, applying the spec's quality stage if enabled.

    With ``spec.normalize`` off (the default) this is exactly
    :func:`_coerce_series`.  On, the *raw* values and timestamps run through
    :func:`repro.quality.normalize_series` with the spec's cadence and gap
    policy first — before :class:`TimeSeries` construction, because NaN
    dropping is part of the stage and ``TimeSeries`` rejects non-finite
    values.  Dense regular input returns the same arrays (normalize's no-op
    guarantee), so the coerced series is value-identical and the smoothing
    output bit-identical.  The ``"split"`` policy yields multiple disjoint
    segments — one smooth over them is not well defined, so it is rejected
    here with a pointer to the explicit per-segment path.
    """
    if not spec.normalize:
        return _coerce_series(data)
    if spec.gap_policy == "split":
        raise DataQualityError(
            "gap_policy='split' yields disjoint segments, which a single "
            "smooth/find_window pass cannot represent; call "
            "repro.quality.normalize_series directly and smooth each "
            "segment, or use 'interpolate'/'ffill'"
        )
    if isinstance(data, TimeSeries):
        raw_vs, raw_ts, name = data.values, data.timestamps, data.name
    else:
        raw_vs, raw_ts, name = np.asarray(data, dtype=np.float64), None, None
    norm = normalize_series(raw_vs, raw_ts, cadence=spec.cadence, gap_policy=spec.gap_policy)
    if norm.values is raw_vs and (raw_ts is None or norm.timestamps is raw_ts):
        return _coerce_series(data)  # dense no-op: keep the caller's arrays
    return TimeSeries(norm.values, norm.timestamps, name=name)


def _prepare(
    series: TimeSeries,
    spec: AsapSpec,
    cache: EvaluationCache | None,
) -> tuple[np.ndarray, int, EvaluationCache]:
    """The search input: (aggregated values, point-to-pixel ratio, cache).

    The aggregation itself is the shared pipeline stage
    (:func:`repro.core.preaggregation.prepare_search_input`) — the one
    definition every consumer of "the searched series" goes through.  With a
    caller-supplied cache (the batch engine pre-fills one per series from
    batched kernel calls), the cache's values *are* the search input — the
    engine computed them with the same stage — so the pass is skipped; the
    expected output shape is still verified, and the engine's equivalence
    tests pin the values themselves.
    """
    if cache is not None:
        ratio = expected_ratio(len(series), spec.resolution, spec.use_preaggregation)
        expected_size = len(series) // ratio if ratio > 1 else len(series)
        if cache.values.size != expected_size:
            raise ValueError(
                f"supplied EvaluationCache holds {cache.values.size} values but the "
                f"pipeline would search {expected_size}; pass the preaggregated "
                "values the pipeline produces"
            )
        return cache.values, ratio, cache
    staged = prepare_search_input(series.values, spec.resolution, spec.use_preaggregation)
    return staged.values, staged.ratio, EvaluationCache(staged.values, kernel=spec.kernel)


def find_window(
    data,
    resolution: int | None = None,
    max_window: int | None = None,
    strategy: str | None = None,
    use_preaggregation: bool | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
    kernel: str | None = None,
    spec: AsapSpec | None = None,
) -> tuple[SearchResult, int]:
    """Search for the best window without producing the smoothed series.

    Returns ``(search_result, preaggregation_ratio)``; the window in the
    result is in aggregated units.  Configuration resolves exactly as in
    :func:`smooth`.
    """
    spec = resolve_spec(
        spec,
        resolution=resolution,
        max_window=max_window,
        strategy=strategy,
        use_preaggregation=use_preaggregation,
        kernel=kernel,
    )
    series = _input_series(data, spec)
    values, ratio, cache = _prepare(series, spec, cache)
    result = run_strategy(spec.strategy, values, spec.max_window, cache=cache, acf=acf)
    return result, ratio


def smooth(
    data,
    resolution: int | None = None,
    max_window: int | None = None,
    strategy: str | None = None,
    use_preaggregation: bool | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
    kernel: str | None = None,
    spec: AsapSpec | None = None,
) -> SmoothingResult:
    """Automatically smooth a time series for visualization.

    Parameters
    ----------
    data:
        A :class:`~repro.timeseries.TimeSeries` or 1-D array-like.
    resolution:
        Target display width in pixels; drives preaggregation and the final
        point budget.  Defaults to the spec's (800).
    max_window:
        Optional cap on candidate windows (aggregated units).  Defaults to
        one tenth of the searched series, the paper's setting.
    strategy:
        ``"asap"`` (default) or one of the baselines
        (``exhaustive``/``grid2``/``grid10``/``binary``).
    use_preaggregation:
        Disable to search the raw series — exact but orders of magnitude
        slower on large inputs (the paper's `ASAPno-agg` configuration).
    cache:
        Optional pre-filled :class:`~repro.core.smoothing.EvaluationCache`
        over the (preaggregated) search input; the batch engine uses this to
        charge a whole batch's candidate evaluations to one kernel call.
    acf:
        Optional precomputed ACF analysis of the search input (consumed by
        the ASAP strategy only); the batch engine's LRU cache passes it to
        amortize the FFT across refreshes.
    kernel:
        Candidate-evaluation kernel: ``"grid"`` (vectorized, default) or
        ``"scalar"`` (the reference loop, kept for benchmarking).
    spec:
        An :class:`~repro.spec.AsapSpec` carrying the configuration whole.
        Explicit kwargs override the spec field-by-field
        (``smooth(x, strategy="grid2", spec=s)`` runs
        ``s.merge(strategy="grid2")``); with no spec the kwargs build one,
        so both spellings validate identically.  ``None`` kwargs mean "not
        provided" — to clear a spec's ``max_window`` cap, pass
        ``spec=s.merge(max_window=None)``.

    Examples
    --------
    >>> from repro import smooth
    >>> from repro.timeseries import load
    >>> result = smooth(load("taxi", scale=0.5).series, resolution=400)
    >>> result.window >= 1
    True
    """
    spec = resolve_spec(
        spec,
        resolution=resolution,
        max_window=max_window,
        strategy=strategy,
        use_preaggregation=use_preaggregation,
        kernel=kernel,
    )
    series = _input_series(data, spec)
    searched_values, ratio, cache = _prepare(series, spec, cache)

    search = run_strategy(spec.strategy, searched_values, spec.max_window, cache=cache, acf=acf)

    smoothed_values = sma(searched_values, search.window)
    n_buckets = searched_values.size
    bucket_starts = np.arange(n_buckets) * ratio
    bucket_timestamps = series.timestamps[bucket_starts]
    out_timestamps = bucket_timestamps[: smoothed_values.size]
    name = f"{series.name}:asap" if series.name else "asap"
    smoothed = TimeSeries(smoothed_values, out_timestamps, name=name)

    # The search already measured the chosen window (and the window-1
    # incumbent is the original series), so the result's output moments come
    # from the shared cache instead of a redundant rescan.
    if search.window == 1:
        out_roughness = cache.original_roughness
        out_kurtosis = cache.original_kurtosis
    else:
        chosen = cache.evaluate(search.window)
        out_roughness = chosen.roughness
        out_kurtosis = chosen.kurtosis

    return SmoothingResult(
        series=smoothed,
        window=search.window,
        window_original_units=search.window * ratio,
        preaggregation_ratio=ratio,
        search=search,
        original_roughness=cache.original_roughness,
        original_kurtosis=cache.original_kurtosis,
        roughness=out_roughness,
        kurtosis=out_kurtosis,
    )


@spec_backed(*AsapSpec.OPERATOR_FIELDS)
class ASAP:
    """A configured smoothing operator, reusable across series.

    A thin, attribute-compatible wrapper around an
    :class:`~repro.spec.AsapSpec`: every knob the functions take, the
    operator takes (including ``kernel``), and per-call search state
    (``cache``/``acf``) forwards through — the operator and the functions
    accept exactly the same inputs and produce bit-identical results.

    >>> operator = ASAP(resolution=1200)
    >>> result = operator.smooth([1.0, 2.0, 1.0, 2.0] * 50)
    >>> result.window >= 1
    True
    """

    def __init__(
        self,
        resolution: int | None = None,
        max_window: int | None = None,
        strategy: str | None = None,
        use_preaggregation: bool | None = None,
        kernel: str | None = None,
        spec: AsapSpec | None = None,
    ) -> None:
        self.spec = resolve_spec(
            spec,
            resolution=resolution,
            max_window=max_window,
            strategy=strategy,
            use_preaggregation=use_preaggregation,
            kernel=kernel,
        )

    @classmethod
    def from_spec(cls, spec: AsapSpec) -> "ASAP":
        return cls(spec=spec)

    # The knob attributes (resolution/max_window/strategy/use_preaggregation/
    # kernel) are installed by @spec_backed: reads come from self.spec, and
    # assignment — historically a plain attribute write — re-merges the spec,
    # so `operator.resolution = 0` now raises SpecError instead of lingering.

    def smooth(self, data, *, cache=None, acf=None) -> SmoothingResult:
        """Smooth one series with this operator's configuration."""
        return smooth(data, cache=cache, acf=acf, spec=self.spec)

    def find_window(self, data, *, cache=None, acf=None) -> tuple[SearchResult, int]:
        """Search only; see :func:`find_window`."""
        return find_window(data, cache=cache, acf=acf, spec=self.spec)

    def __repr__(self) -> str:
        return (
            f"ASAP(resolution={self.resolution}, strategy={self.strategy!r}, "
            f"max_window={self.max_window}, "
            f"use_preaggregation={self.use_preaggregation}, "
            f"kernel={self.kernel!r})"
        )
