"""Batch ASAP: the public one-call smoothing API (Algorithm 2 end to end).

Given a series and a target resolution, :func:`smooth`:

1. preaggregates to the point-to-pixel ratio (Section 4.4),
2. searches for the best window with the requested strategy (ASAP by
   default; the baselines are available for comparison), and
3. applies the simple moving average and returns a
   :class:`~repro.core.result.SmoothingResult`.

:class:`ASAP` wraps the same pipeline as a configured, reusable object.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.series import TimeSeries
from ..timeseries.stats import kurtosis, roughness
from .preaggregation import preaggregate
from .result import SmoothingResult
from .search import SearchResult, run_strategy
from .smoothing import sma

__all__ = ["smooth", "find_window", "ASAP", "DEFAULT_RESOLUTION"]

#: The paper's user-study rendering width; a sensible dashboard default.
DEFAULT_RESOLUTION = 800


def _coerce_series(data) -> TimeSeries:
    if isinstance(data, TimeSeries):
        return data
    return TimeSeries(np.asarray(data, dtype=np.float64))


def find_window(
    data,
    resolution: int = DEFAULT_RESOLUTION,
    max_window: int | None = None,
    strategy: str = "asap",
    use_preaggregation: bool = True,
) -> tuple[SearchResult, int]:
    """Search for the best window without producing the smoothed series.

    Returns ``(search_result, preaggregation_ratio)``; the window in the
    result is in aggregated units.
    """
    series = _coerce_series(data)
    if use_preaggregation:
        agg = preaggregate(series.values, resolution)
        values, ratio = agg.values, agg.ratio
    else:
        values, ratio = series.values, 1
    result = run_strategy(strategy, values, max_window)
    return result, ratio


def smooth(
    data,
    resolution: int = DEFAULT_RESOLUTION,
    max_window: int | None = None,
    strategy: str = "asap",
    use_preaggregation: bool = True,
) -> SmoothingResult:
    """Automatically smooth a time series for visualization.

    Parameters
    ----------
    data:
        A :class:`~repro.timeseries.TimeSeries` or 1-D array-like.
    resolution:
        Target display width in pixels; drives preaggregation and the final
        point budget.
    max_window:
        Optional cap on candidate windows (aggregated units).  Defaults to
        one tenth of the searched series, the paper's setting.
    strategy:
        ``"asap"`` (default) or one of the baselines
        (``exhaustive``/``grid2``/``grid10``/``binary``).
    use_preaggregation:
        Disable to search the raw series — exact but orders of magnitude
        slower on large inputs (the paper's `ASAPno-agg` configuration).

    Examples
    --------
    >>> from repro import smooth
    >>> from repro.timeseries import load
    >>> result = smooth(load("taxi", scale=0.5).series, resolution=400)
    >>> result.window >= 1
    True
    """
    series = _coerce_series(data)
    if use_preaggregation:
        agg = preaggregate(series.values, resolution)
        searched_values, ratio = agg.values, agg.ratio
    else:
        searched_values, ratio = np.asarray(series.values, dtype=np.float64), 1

    search = run_strategy(strategy, searched_values, max_window)

    smoothed_values = sma(searched_values, search.window)
    n_buckets = searched_values.size
    bucket_starts = np.arange(n_buckets) * ratio
    bucket_timestamps = series.timestamps[bucket_starts]
    out_timestamps = bucket_timestamps[: smoothed_values.size]
    name = f"{series.name}:asap" if series.name else "asap"
    smoothed = TimeSeries(smoothed_values, out_timestamps, name=name)

    return SmoothingResult(
        series=smoothed,
        window=search.window,
        window_original_units=search.window * ratio,
        preaggregation_ratio=ratio,
        search=search,
        original_roughness=roughness(searched_values),
        original_kurtosis=kurtosis(searched_values),
        roughness=roughness(smoothed_values),
        kurtosis=kurtosis(smoothed_values),
    )


class ASAP:
    """A configured smoothing operator, reusable across series.

    >>> operator = ASAP(resolution=1200)
    >>> result = operator.smooth([1.0, 2.0, 1.0, 2.0] * 50)
    >>> result.window >= 1
    True
    """

    def __init__(
        self,
        resolution: int = DEFAULT_RESOLUTION,
        max_window: int | None = None,
        strategy: str = "asap",
        use_preaggregation: bool = True,
    ) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.resolution = resolution
        self.max_window = max_window
        self.strategy = strategy
        self.use_preaggregation = use_preaggregation

    def smooth(self, data) -> SmoothingResult:
        """Smooth one series with this operator's configuration."""
        return smooth(
            data,
            resolution=self.resolution,
            max_window=self.max_window,
            strategy=self.strategy,
            use_preaggregation=self.use_preaggregation,
        )

    def find_window(self, data) -> tuple[SearchResult, int]:
        """Search only; see :func:`find_window`."""
        return find_window(
            data,
            resolution=self.resolution,
            max_window=self.max_window,
            strategy=self.strategy,
            use_preaggregation=self.use_preaggregation,
        )

    def __repr__(self) -> str:
        return (
            f"ASAP(resolution={self.resolution}, strategy={self.strategy!r}, "
            f"max_window={self.max_window}, "
            f"use_preaggregation={self.use_preaggregation})"
        )
