"""Result types for the public smoothing API."""

from __future__ import annotations

from dataclasses import dataclass

from ..timeseries.series import TimeSeries
from .search import SearchResult

__all__ = ["SmoothingResult"]


@dataclass(frozen=True)
class SmoothingResult:
    """Everything a caller learns from one ASAP smoothing pass.

    Attributes
    ----------
    series:
        The smoothed series, ready to plot (at most ~resolution points when
        preaggregation applies).
    window:
        Chosen SMA window, in units of *aggregated* points.
    window_original_units:
        The same window expressed in raw input points
        (``window * preaggregation_ratio``).
    preaggregation_ratio:
        Point-to-pixel bucket size that was applied (1 = no preaggregation).
    search:
        The underlying :class:`~repro.core.search.SearchResult`, including
        how many candidates were evaluated and by which strategy.
    original_roughness / original_kurtosis:
        Metrics of the (aggregated) input the search ran on.
    roughness / kurtosis:
        Metrics of the smoothed output series.
    """

    series: TimeSeries
    window: int
    window_original_units: int
    preaggregation_ratio: int
    search: SearchResult
    original_roughness: float
    original_kurtosis: float
    roughness: float
    kurtosis: float

    @property
    def smoothed(self) -> bool:
        """False when ASAP decided the series is best left unsmoothed."""
        return self.window > 1

    @property
    def roughness_reduction(self) -> float:
        """Factor by which roughness dropped (>= 1.0; 1.0 when unsmoothed)."""
        if self.roughness == 0.0:
            return float("inf") if self.original_roughness > 0.0 else 1.0
        return self.original_roughness / self.roughness

    def summary(self) -> str:
        """One-line human-readable description, for logs and examples."""
        return (
            f"window={self.window} (x{self.preaggregation_ratio} raw="
            f"{self.window_original_units}) roughness {self.original_roughness:.4g}"
            f"->{self.roughness:.4g} kurtosis {self.original_kurtosis:.3g}"
            f"->{self.kurtosis:.3g} candidates={self.search.candidates_evaluated}"
        )
