"""Streaming ASAP (Section 4.5, Algorithm 3) with incremental refresh state.

The streaming operator folds arrivals into panes sized by the point-to-pixel
ratio, keeps a bounded buffer of completed panes (the visualized window), and
re-runs the window search only every ``refresh_interval`` aggregated points —
on-demand updates at human-perceptible timescales rather than per arrival.

On each refresh the operator:

1. recomputes the ACF over the in-window aggregates (``UPDATEACF``);
2. revalidates the previous frame's window (``CHECKLASTWINDOW``): if that
   window still satisfies the kurtosis constraint it seeds the new search,
   so the roughness-estimate pruning can reject candidates immediately;
3. runs ``FINDWINDOW`` (Algorithm 2) and emits a freshly smoothed frame.

The three optimizations can be disabled independently — pane size 1 turns
off pixel-aware aggregation, ``strategy="exhaustive"`` turns off
autocorrelation pruning, ``refresh_interval=1`` turns off on-demand updates —
which is exactly the grid the Figure 11 factor/lesion analysis sweeps.

**Incremental refreshes.**  The original operator recomputed the full ACF
(two FFTs) and the window's moment statistics from scratch on every refresh —
O(window log window) work per refresh even when only a handful of panes
changed.  With ``incremental=True`` the operator instead maintains a
:class:`RollingWindowState`: lagged cross-product sums (the ACF's sufficient
statistics), raw power sums (kurtosis), and first-difference sums (roughness)
updated in O(max_lag) per completed pane, so the per-refresh fixed cost is
proportional to the *new* panes, not the window.  Two guardrails keep the
numerics honest:

* every ``recompute_every`` refreshes the sums are rebuilt from the window
  contents (and the anchor re-centered), bounding the drift the add/subtract
  updates can accumulate;
* ``verify_incremental=True`` is the exact-recompute escape hatch: every
  refresh also runs the from-scratch path and raises if any statistic
  disagrees beyond the 1e-9 discipline used throughout the repo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import IncrementalDriftError, SpecError
from ..pyramid.rollup import Pyramid
from ..quality import FrameQuality, ReorderBuffer, StreamNormalizer
from ..pyramid.view import PyramidView, ViewSpec
from ..spectral import accel
from ..spectral.convolution import cross_product_sums, sma_probe_moments
from ..stream.operators import StreamOperator
from ..stream.panes import PaneBuffer, RollingArray
from ..stream.sources import StreamPoint
from ..timeseries.series import TimeSeries
from ..timeseries.stats import kurtosis as _scalar_kurtosis
from ..timeseries.stats import roughness as _scalar_roughness
from .acf import (
    ACFAnalysis,
    analysis_from_correlations,
    analyze_acf,
    autocorrelation,
    default_max_lag,
)
from .search import (
    ADAPTIVE_STRATEGIES,
    SearchResult,
    SearchState,
    asap_search,
    plan_warm_probes,
    resolve_max_window,
    run_strategy,
)
from .smoothing import EvaluationCache, WindowEvaluation, sma

__all__ = [
    "BackfillResult",
    "Frame",
    "StreamingASAP",
    "RollingWindowState",
    "IncrementalDriftError",
    "MIN_PANES_FOR_SEARCH",
]

#: Below this many completed panes a search is statistically meaningless.
MIN_PANES_FOR_SEARCH = 8

#: Agreement required between incremental and from-scratch statistics when
#: ``verify_incremental`` is on: |incremental - exact| <= TOL * max(1, |exact|).
INCREMENTAL_AGREEMENT_TOL = 1e-9


#: Rebuild the rolling sums when cancellation threatens the 1e-9 discipline:
#: either the window mean drifted too far from the anchor
#: (``E[y^2] > limit * Var[y]`` — the raw-sum expansions lose precision like
#: ``eps * ratio^2``), or far more magnitude has *flowed through* a sum than
#: remains in it (``flow > limit * current`` — sliding-window add/subtract
#: chains carry absolute error proportional to the largest values ever seen,
#: which swamps a window that has since shrunk to a smaller scale).  An exact
#: re-anchored recomputation resets both ratios to ~1.
_CONDITIONING_LIMIT = 256.0

#: Above this ``|window mean| / window std`` ratio the *from-scratch* scalar
#: kernels themselves wobble by more than 1e-9 (their two-pass centering
#: rounds at the ulp of the offset, an ``eps * ratio`` relative error), so no
#: incrementally maintained formulation can agree with them to the
#: discipline.  The streaming operator detects the ratio in O(1) and runs
#: such refreshes through the exact from-scratch path instead — agreement by
#: construction, at O(window log window) only for pathologically offset
#: windows (e.g. epoch-timestamps with sub-second jitter).
_EXACT_FALLBACK_RATIO = 1e6


@dataclass(frozen=True)
class Frame:
    """One rendered refresh: the smoothed window ready for display.

    ``quality`` reports per-window data quality (completeness, fill and
    late-data counters); it is the all-clean default whenever the quality
    stage is disabled, so dense-path frames are unchanged.
    """

    series: TimeSeries
    window: int
    search: SearchResult
    refresh_index: int
    points_ingested: int
    quality: FrameQuality = FrameQuality()


@dataclass(frozen=True)
class BackfillResult:
    """What one :meth:`StreamingASAP.backfill` call did.

    ``points`` counts raw points folded into panes (after the quality
    stages — dropped non-finite arrivals are excluded, synthetic gap fills
    included); ``panes`` the panes completed; ``frames_elided`` the refresh
    boundaries replayed without materializing a frame (their
    ``refresh_index`` slots are preserved, so the next streamed frame
    numbers exactly as if every interior frame had been emitted);
    ``searches_run`` the window searches actually executed (1 for the fast
    lane when a boundary lands in the archive, one per boundary for the
    replay lane); ``mode`` which lane ran (``"fast"``, ``"replay"``, or
    ``"stream"``); ``frames`` the frames that *were* emitted — any refresh
    that was already due, plus the closing refresh of the archive.
    """

    points: int
    panes: int
    frames_elided: int
    searches_run: int
    mode: str
    frames: tuple[Frame, ...] = ()

    @property
    def frame(self) -> Frame | None:
        """The final frame of the backfill, if a refresh boundary was reached."""
        return self.frames[-1] if self.frames else None


class RollingWindowState:
    """Incrementally maintained statistics of a sliding window of aggregates.

    Maintains, over a window of at most ``capacity`` values:

    * ``s[k] = sum_i y_i * y_{i+k}`` for lags ``0..lag_budget`` — the
      sufficient statistics of the autocorrelation estimator;
    * the raw power sums ``sum y, sum y^2, sum y^3, sum y^4`` — kurtosis;
    * the first-difference sums ``sum d, sum d^2`` — roughness.

    Each appended value costs O(lag_budget); eviction (automatic once the
    window exceeds capacity) costs the same.  All sums are kept over values
    shifted by an *anchor* (the first value of the current epoch): every
    statistic derived here is shift-invariant, and anchoring keeps the sums
    small so the add/subtract updates stay well conditioned.  :meth:`rebuild`
    recomputes everything from the retained window (re-centering the anchor),
    which is the periodic drift bound of the streaming operator.
    """

    __slots__ = (
        "capacity",
        "lag_budget",
        "_ring",
        "_s",
        "_t",
        "_q",
        "_c3",
        "_c4",
        "_dsum",
        "_dsq",
        "_danchor",
        "_flow2",
        "_flow4",
        "_flowd2",
        "_anchor",
        "appended",
        "rebuilds",
    )

    def __init__(self, capacity: int, lag_budget: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if lag_budget < 0:
            raise ValueError(f"lag_budget must be >= 0, got {lag_budget}")
        self.capacity = capacity
        self.lag_budget = lag_budget
        self._ring = RollingArray(capacity)
        self._s = np.zeros(lag_budget + 1, dtype=np.float64)
        self._t = 0.0
        self._q = 0.0
        self._c3 = 0.0
        self._c4 = 0.0
        self._dsum = 0.0
        self._dsq = 0.0
        self._danchor = 0.0
        self._flow2 = 0.0
        self._flow4 = 0.0
        self._flowd2 = 0.0
        self._anchor: float | None = None
        self.appended = 0
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._ring)

    def values(self) -> np.ndarray:
        """The anchored (shifted) window contents, oldest first (no copy)."""
        return self._ring.view()

    # -- maintenance ---------------------------------------------------------

    def append(self, value: float) -> None:
        """Fold one new window value in, evicting the oldest past capacity."""
        if self._anchor is None:
            self._anchor = float(value)
        y = float(value) - self._anchor
        n_before = len(self._ring)
        self._ring.append(y)
        view = self._ring.view()
        k_max = min(self.lag_budget, n_before)
        segment = view[n_before - k_max :]
        self._s[: k_max + 1] += y * segment[::-1]
        y2 = y * y
        y4 = y2 * y2
        self._t += y
        self._q += y2
        self._c3 += y2 * y
        self._c4 += y4
        self._flow2 += y2
        self._flow4 += y4
        if n_before >= 1:
            d = (y - view[-2]) - self._danchor
            self._dsum += d
            self._dsq += d * d
            self._flowd2 += d * d
        self.appended += 1
        if n_before + 1 > self.capacity:
            self._evict()

    def extend(self, values) -> None:
        """Fold a batch of window values in with vectorized sum updates.

        Mathematically identical to appending one value at a time — the
        cross-product sums are pure pair sums over the final window, so gains
        (pairs whose right element is new) and losses (pairs touching evicted
        elements) can each be computed by one ``np.correlate`` against the
        extended window — at O(batch * lag_budget) array work instead of
        O(batch) Python-level appends.
        """
        block = np.asarray(values, dtype=np.float64)
        if block.ndim != 1:
            raise ValueError(f"expected a 1-D batch, got shape {block.shape}")
        # Chunk so the extended window always fits the fixed backing buffer.
        for start in range(0, block.size, self.capacity):
            self._extend_chunk(block[start : start + self.capacity])

    def _extend_chunk(self, block: np.ndarray) -> None:
        r = block.size
        if r == 0:
            return
        if r == 1:
            self.append(float(block[0]))
            return
        if self._anchor is None:
            self._anchor = float(block[0])
        fresh = block - self._anchor
        n0 = len(self._ring)
        self._ring.append_many(fresh)
        n1 = n0 + r
        view = self._ring.view()

        # Gains: every pair whose right element lies in the new block.  With
        # the partner region left-padded by zeros to a fixed length, one
        # valid-mode correlation yields the K+1 lag sums at once.
        k_max = min(self.lag_budget, n1 - 1)
        partner_start = max(n0 - k_max, 0)
        padded = np.zeros(k_max + r, dtype=np.float64)
        padded[k_max - (n0 - partner_start) :] = view[partner_start:n1]
        gains = np.correlate(padded, fresh, mode="valid")
        self._s[: k_max + 1] += gains[::-1]

        squared = fresh * fresh
        sum2 = float(squared.sum())
        sum4 = float((squared * squared).sum())
        self._t += float(fresh.sum())
        self._q += sum2
        self._c3 += float((squared * fresh).sum())
        self._c4 += sum4
        self._flow2 += sum2
        self._flow4 += sum4
        diffs = np.diff(view[max(n0 - 1, 0) : n1]) - self._danchor
        diff_sq = float((diffs * diffs).sum())
        self._dsum += float(diffs.sum())
        self._dsq += diff_sq
        self._flowd2 += diff_sq
        self.appended += r

        overflow = n1 - self.capacity
        if overflow > 0:
            self._evict_many(overflow)

    def _evict_many(self, count: int) -> None:
        n = len(self._ring)
        view = self._ring.view()
        evicted = view[:count]
        # Losses: every pair whose left element is evicted (evicted indices
        # are the smallest, so any pair touching one has its left end here).
        k_max = min(self.lag_budget, n - 1)
        padded = np.zeros(count + k_max, dtype=np.float64)
        span = min(count + k_max, n)
        padded[:span] = view[:span]
        losses = np.correlate(padded, evicted, mode="valid")
        self._s[: k_max + 1] -= losses
        squared = evicted * evicted
        self._t -= float(evicted.sum())
        self._q -= float(squared.sum())
        self._c3 -= float((squared * evicted).sum())
        self._c4 -= float((squared * squared).sum())
        diffs = np.diff(view[: count + 1]) - self._danchor
        self._dsum -= float(diffs.sum())
        self._dsq -= float((diffs * diffs).sum())
        self._ring.popleft(count)

    def _evict(self) -> None:
        n = len(self._ring)
        view = self._ring.view()
        y0 = view[0]
        k_max = min(self.lag_budget, n - 1)
        self._s[: k_max + 1] -= y0 * view[: k_max + 1]
        y0_2 = y0 * y0
        self._t -= y0
        self._q -= y0_2
        self._c3 -= y0_2 * y0
        self._c4 -= y0_2 * y0_2
        d0 = (view[1] - y0) - self._danchor
        self._dsum -= d0
        self._dsq -= d0 * d0
        self._ring.popleft()

    def _ensure_conditioned(self) -> None:
        """Exact-rebuild when the window mean drifted too far from the anchor.

        The raw-sum expansions lose precision like ``eps * (E[y^2]/Var[y])^2``;
        past :data:`_CONDITIONING_LIMIT` that threatens the 1e-9 discipline,
        so the statistics auto-recompute from the retained window (anchored at
        its mean, restoring a ratio of ~1) before being read.
        """
        n = len(self._ring)
        if n < 2:
            return
        energy = self._q / n
        mean = self._t / n
        variance = energy - mean * mean
        limit = _CONDITIONING_LIMIT
        if energy > 0.0 and (variance <= 0.0 or energy > limit * variance):
            self.rebuild()
            return
        diff_count = n - 1
        diff_energy = self._dsq / diff_count
        diff_mean = self._dsum / diff_count
        diff_variance = diff_energy - diff_mean * diff_mean
        if diff_energy > 0.0 and (
            diff_variance <= 0.0 or diff_energy > limit * diff_variance
        ):
            self.rebuild()
            return
        if (
            self._flow2 > limit * max(self._q, 0.0)
            or self._flow4 > limit * max(self._c4, 0.0)
            or self._flowd2 > limit * max(self._dsq, 0.0)
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Recompute every sum from the retained window, re-centering the anchor.

        This is the periodic exact recomputation that bounds incremental
        drift: after a rebuild the sums are exactly the one-shot statistics of
        the current window contents, anchored at the window mean (the
        best-conditioned shift for the raw-sum moment expansions).
        """
        n = len(self._ring)
        if n == 0:
            self.clear()
            return
        self.rebuilds += 1
        window = self._ring.view().copy()
        shift = float(window.mean())
        window -= shift
        self._anchor = (self._anchor or 0.0) + shift
        self._ring.clear()
        self._ring.append_many(window)
        k_max = min(self.lag_budget, n - 1)
        self._s[:] = 0.0
        self._s[: k_max + 1] = cross_product_sums(window, k_max)
        squared = window * window
        self._t = float(window.sum())
        self._q = float(squared.sum())
        self._c3 = float((squared * window).sum())
        self._c4 = float((squared * squared).sum())
        diffs = np.diff(window)
        # Diffs get their own anchor (their mean): ramps have a diff mean far
        # above the diff spread, and the one-pass variance formula is only
        # conditioned about a shift near that mean.
        self._danchor = float(diffs.mean()) if diffs.size else 0.0
        shifted = diffs - self._danchor
        self._dsum = float(shifted.sum())
        self._dsq = float((shifted * shifted).sum())
        # Flows reset to the freshly computed sums: the flow/current ratio is
        # back to 1 until new magnitude passes through.
        self._flow2 = self._q
        self._flow4 = self._c4
        self._flowd2 = self._dsq

    def clear(self) -> None:
        self._ring.clear()
        self._s[:] = 0.0
        self._t = self._q = self._c3 = self._c4 = 0.0
        self._dsum = self._dsq = 0.0
        self._danchor = 0.0
        self._flow2 = self._flow4 = self._flowd2 = 0.0
        self._anchor = None
        self.appended = 0

    # -- serialization ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Every maintained sum, flow, anchor, and the anchored window itself.

        A state restored by :meth:`from_state` continues the add/subtract
        chains from the exact same float values, so every subsequently derived
        statistic is bit-identical to an uninterrupted instance
        (see :mod:`repro.persist`).
        """
        return {
            "capacity": self.capacity,
            "lag_budget": self.lag_budget,
            "values": self._ring.view().copy(),
            "s": self._s.copy(),
            "t": self._t,
            "q": self._q,
            "c3": self._c3,
            "c4": self._c4,
            "dsum": self._dsum,
            "dsq": self._dsq,
            "danchor": self._danchor,
            "flow2": self._flow2,
            "flow4": self._flow4,
            "flowd2": self._flowd2,
            "anchor": self._anchor,
            "appended": self.appended,
            "rebuilds": self.rebuilds,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RollingWindowState":
        """Rebuild rolling statistics from :meth:`state_dict` output."""
        rolling = cls(capacity=int(state["capacity"]), lag_budget=int(state["lag_budget"]))
        rolling._ring.append_many(np.asarray(state["values"], dtype=np.float64))
        rolling._s[:] = np.asarray(state["s"], dtype=np.float64)
        rolling._t = float(state["t"])
        rolling._q = float(state["q"])
        rolling._c3 = float(state["c3"])
        rolling._c4 = float(state["c4"])
        rolling._dsum = float(state["dsum"])
        rolling._dsq = float(state["dsq"])
        rolling._danchor = float(state["danchor"])
        rolling._flow2 = float(state["flow2"])
        rolling._flow4 = float(state["flow4"])
        rolling._flowd2 = float(state["flowd2"])
        rolling._anchor = None if state["anchor"] is None else float(state["anchor"])
        rolling.appended = int(state["appended"])
        rolling.rebuilds = int(state["rebuilds"])
        return rolling

    @classmethod
    def from_bulk(
        cls, values, capacity: int, lag_budget: int
    ) -> "RollingWindowState":
        """One-shot construction over a full history — O(n), no per-chunk sums.

        Bit-identical to ``extend()``-ing *values* through a fresh instance
        (under **any** chunking) and then calling :meth:`rebuild`: extension
        stores each retained value as ``value - values[0]`` regardless of
        batching, and a rebuild recomputes every sum from exactly those ring
        contents, so the two paths converge on the same floats.  This is the
        cold-start constructor for batch consumers; note that an instance
        that streamed the same history *without* a closing rebuild holds
        chunk-accumulated sums instead — which is why the streaming
        operator's backfill replays chunk cadence rather than calling this.
        """
        state = cls(capacity=capacity, lag_budget=lag_budget)
        block = np.asarray(values, dtype=np.float64)
        if block.ndim != 1:
            raise ValueError(f"expected a 1-D history, got shape {block.shape}")
        if block.size == 0:
            return state
        state._anchor = float(block[0])
        state._ring.append_many(block[-capacity:] - state._anchor)
        state.appended = block.size
        state.rebuild()
        return state

    # -- derived statistics ---------------------------------------------------

    def correlations(self, max_lag: int) -> np.ndarray:
        """ACF estimates for lags ``0..max_lag`` from the maintained sums.

        Evaluates the same estimator as :func:`repro.core.acf.autocorrelation`
        — ``sum (y_i - m)(y_{i+k} - m) / sum (y_i - m)^2`` with *m* the window
        mean — by expanding the centering against the cross-product sums.
        """
        self._ensure_conditioned()
        n = len(self)
        if n < 2:
            raise ValueError(f"correlations need >= 2 window values, got {n}")
        if not 0 <= max_lag <= min(self.lag_budget, n - 1):
            raise ValueError(
                f"max_lag must be in [0, {min(self.lag_budget, n - 1)}], got {max_lag}"
            )
        view = self._ring.view()
        mean = self._t / n
        first = np.concatenate(([0.0], np.cumsum(view[:max_lag])))
        last = np.concatenate(([0.0], np.cumsum(view[::-1][:max_lag])))
        left_sums = self._t - last
        right_sums = self._t - first
        counts = n - np.arange(max_lag + 1)
        centered = self._s[: max_lag + 1] - mean * (left_sums + right_sums) + counts * (mean * mean)
        energy = centered[0]
        if energy <= 0.0:
            out = np.zeros(max_lag + 1)
            out[0] = 1.0
            return out
        return centered / energy

    def offset_ratio(self) -> float:
        """``|window mean| / window std`` in raw units, O(1).

        This conditioning ratio bounds how closely *any* two float64
        formulations of the window's central moments can agree — the
        streaming operator falls back to exact recomputation above
        :data:`_EXACT_FALLBACK_RATIO`.  Returns ``inf`` for degenerate
        (zero-variance) windows.
        """
        self._ensure_conditioned()
        n = len(self)
        if n < 2:
            return 0.0
        mean_shifted = self._t / n
        variance = self._q / n - mean_shifted * mean_shifted
        mean_raw = (self._anchor or 0.0) + mean_shifted
        if variance <= 0.0:
            return 0.0 if mean_raw == 0.0 else math.inf
        return abs(mean_raw) / math.sqrt(variance)

    def roughness(self) -> float:
        """Population std of the window's first differences (one-pass form)."""
        self._ensure_conditioned()
        n = len(self)
        if n < 2:
            return 0.0
        diff_count = n - 1
        mean_d = self._dsum / diff_count
        variance = self._dsq / diff_count - mean_d * mean_d
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def kurtosis(self) -> float:
        """Non-excess kurtosis of the window (0.0 when degenerate)."""
        self._ensure_conditioned()
        n = len(self)
        if n == 0:
            return 0.0
        mean = self._t / n
        mean2 = mean * mean
        m2 = self._q / n - mean2
        if m2 <= 0.0:
            return 0.0
        m4 = (
            self._c4 / n
            - 4.0 * mean * (self._c3 / n)
            + 6.0 * mean2 * (self._q / n)
            - 3.0 * mean2 * mean2
        )
        return m4 / (m2 * m2)


def _check_agreement(label: str, incremental: float, exact: float) -> None:
    if abs(incremental - exact) > INCREMENTAL_AGREEMENT_TOL * max(1.0, abs(exact)):
        raise IncrementalDriftError(
            f"incremental {label} drifted: {incremental!r} vs exact {exact!r}"
        )


class StreamingASAP(StreamOperator[StreamPoint, Frame]):
    """Continuously smooth a stream, refreshing at human timescales.

    Parameters
    ----------
    pane_size:
        Raw arrivals per aggregated point (the point-to-pixel ratio).  Use 1
        to disable pixel-aware preaggregation.
    resolution:
        Number of aggregated points kept in the visualized window (the
        display width in pixels).
    refresh_interval:
        How many *aggregated* points to collect between searches.  1 refreshes
        for every aggregated point (the paper's inefficient baseline); larger
        values are the on-demand optimization.
    strategy:
        Search strategy per refresh: ``"asap"`` (default) or a baseline name.
    max_window:
        Optional cap on candidate windows, in aggregated units.
    seed_from_previous:
        Reuse the previous refresh's feasible window to seed pruning
        (``CHECKLASTWINDOW``).  Only meaningful for the ASAP strategy.
    incremental:
        Maintain the window's ACF and moment statistics incrementally
        (O(new panes) per refresh) instead of recomputing them from scratch
        (O(window log window)).  Results agree with the from-scratch path to
        the 1e-9 discipline; selected windows are identical in practice.
    recompute_every:
        With ``incremental=True``, rebuild the rolling sums from the window
        contents every this-many refreshes to bound floating-point drift.
    verify_incremental:
        Exact-recompute escape hatch: with ``incremental=True``, also run the
        from-scratch statistics on every refresh and raise
        :class:`IncrementalDriftError` on disagreement beyond 1e-9.
    keep_pane_sketches:
        Retain per-pane :class:`~repro.stream.aggregates.MomentSketch` state
        (raw-point window statistics via ``PaneBuffer.window_sketch``).  The
        operator itself never needs them; serving layers turn this off to
        halve batch-ingest cost.  Pane means — and therefore every frame —
        are bit-identical either way.
    pyramid:
        Attach a multi-resolution rollup pyramid
        (:class:`~repro.pyramid.Pyramid`) fed every completed pane, so the
        same window can be served at many pixel widths via
        :meth:`pyramid_view` without duplicating sessions.  Pass ``True`` to
        build one sized to this operator's window (capacity ``resolution``,
        default level ratios), or a pre-built pyramid of matching capacity.
        The pyramid observes completions only — frames are bit-identical with
        or without it.
    warm_start:
        Seed each refresh's search with the previous refresh's *probe trace*:
        every window the last search touched (plus the previous winner's
        neighborhood) is prefetched in **one** stacked kernel call before the
        search runs, so a stable stream's refresh collapses from a long run
        of single-window kernel dispatches to a single batched one plus cache
        hits.  The search logic itself is untouched and the prefetched values
        come from a kernel bit-identical to the cold path's, so frames are
        bit-identical to ``warm_start=False`` — only the dispatch count
        changes.  When the stream drifts and the search leaves the prefetched
        trace, the extra probes fall through as ordinary cache misses (a
        counted *fallback*, see :attr:`warm_fallbacks`).  Only adaptive
        strategies (``"asap"``, ``"binary"``) participate; grid strategies
        already evaluate their whole candidate grid in one call.
    kernel:
        Moment-kernel backend for per-refresh candidate evaluation
        (``"grid"``, ``"scalar"``, or ``"numba"`` — see
        :class:`~repro.core.smoothing.EvaluationCache`).  ``None`` resolves
        through :func:`repro.spec.default_kernel` at each refresh, honoring
        the ``ASAP_KERNEL`` environment variable.
    watermark:
        Depth (in points) of a :class:`~repro.quality.ReorderBuffer` placed
        in front of the pane buffer.  Late arrivals within the watermark are
        reordered into their correct pane (counted as
        :attr:`late_accepted`); arrivals older than the newest released
        point are counted-and-dropped (:attr:`late_dropped`), never
        corrupting rolling state.  0 (the default) disables reordering —
        arrivals bucket in arrival order exactly as before.
    normalize:
        Enable the stateful quality stage
        (:class:`~repro.quality.StreamNormalizer`): non-finite values are
        dropped and counted, cadence gaps are handled per ``gap_policy``,
        and every frame reports per-window completeness.  On dense, ordered,
        regular input the stage is a bit-identical no-op.
    cadence / gap_policy:
        Gap detection parameters for ``normalize=True``; see
        :func:`repro.quality.normalize_series`.
    backfill:
        Lane selection for :meth:`backfill` (archive replay).  ``"auto"``
        (the default) picks the vectorized fast lane — bulk pane folding,
        chunk-cadence rolling replay, a single closing search — whenever
        eliding the interior searches cannot change any frame (every
        strategy except seeded ASAP, because ``CHECKLASTWINDOW``'s seed can
        change the *selected* window), and otherwise the replay lane, which
        runs every interior search but skips warm prefetch and frame
        materialization.  ``"replay"`` forces the replay lane; ``"stream"``
        forces plain batched streaming (the debug baseline).  Every lane
        leaves the operator in a state whose subsequent frames are
        bit-identical to having streamed the archive point by point.
    """

    def __init__(
        self,
        pane_size: int,
        resolution: int = 800,
        refresh_interval: int = 10,
        strategy: str = "asap",
        max_window: int | None = None,
        seed_from_previous: bool = True,
        incremental: bool = False,
        recompute_every: int = 64,
        verify_incremental: bool = False,
        keep_pane_sketches: bool = True,
        pyramid: Pyramid | bool | None = None,
        warm_start: bool = True,
        kernel: str | None = None,
        watermark: int = 0,
        normalize: bool = False,
        cadence: float | None = None,
        gap_policy: str = "interpolate",
        backfill: str = "auto",
    ) -> None:
        if refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        if recompute_every < 1:
            raise ValueError(f"recompute_every must be >= 1, got {recompute_every}")
        if kernel is not None and kernel not in ("grid", "scalar", "numba"):
            raise SpecError(f"kernel must be 'grid', 'scalar', or 'numba', got {kernel!r}")
        if watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {watermark}")
        if backfill not in ("auto", "replay", "stream"):
            raise SpecError(
                f"backfill must be 'auto', 'replay', or 'stream', got {backfill!r}"
            )
        self.backfill_mode = backfill
        self.watermark = int(watermark)
        self.normalize = bool(normalize)
        self.cadence = None if cadence is None else float(cadence)
        self.gap_policy = gap_policy
        self._reorder = ReorderBuffer(watermark) if watermark > 0 else None
        self._normalizer = (
            StreamNormalizer(cadence=cadence, gap_policy=gap_policy) if normalize else None
        )
        self.incremental = bool(incremental or verify_incremental)
        self.recompute_every = recompute_every
        self.verify_incremental = verify_incremental
        if pyramid is True:
            pyramid = Pyramid(capacity=resolution)
        elif pyramid is False:
            pyramid = None
        if pyramid is not None and pyramid.capacity != resolution:
            raise ValueError(
                f"attached pyramid capacity {pyramid.capacity} must equal the "
                f"operator resolution {resolution} (the pyramid mirrors the window)"
            )
        self.pyramid = pyramid
        self._buffer = PaneBuffer(
            pane_size=pane_size,
            capacity=resolution,
            journal=self.incremental or pyramid is not None,
            keep_sketches=keep_pane_sketches,
            track_quality=self.normalize,
        )
        self.refresh_interval = refresh_interval
        self.strategy = strategy
        self.max_window = max_window
        self.seed_from_previous = seed_from_previous
        self.warm_start = bool(warm_start)
        self.kernel = kernel
        self._warm_trace: tuple[int, ...] | None = None
        self._warm_prefetches = 0
        self._warm_fallbacks = 0
        # Reused (2, k, n) buffer for the prefetch kernel — scratch only,
        # never serialized; results are independent of its contents.
        self._probe_workspace: np.ndarray | None = None
        # Lag sums are only ever read by the ASAP strategy's ACF; other
        # strategies keep just the O(1)-per-pane moment sums.
        self._rolling = (
            RollingWindowState(
                capacity=resolution,
                lag_budget=(
                    self._lag_budget(resolution, max_window) if strategy == "asap" else 0
                ),
            )
            if self.incremental
            else None
        )
        self._panes_since_refresh = 0
        self._previous_window: int | None = None
        self._refresh_due = False
        self._refresh_count = 0
        self._searches_run = 0
        self._candidates_evaluated = 0
        self._refreshes_since_rebuild = 0
        self._full_recomputes = 0
        self._exact_fallbacks = 0
        self._backfills = 0
        self._backfill_points = 0
        self._backfill_elided = 0

    @classmethod
    def from_spec(cls, spec) -> "StreamingASAP":
        """Build an operator from an :class:`~repro.spec.AsapSpec`.

        The one spec -> operator constructor, shared by the service tier's
        sessions, the cluster tier, and the client façade (duck-typed on the
        spec's streaming and serving fields, so this module needs no import
        of the spec layer).  The spec's only batch-only knob
        (``use_preaggregation``) does not apply here: the streaming path
        aggregates through ``pane_size``.
        """
        return cls(
            pane_size=spec.pane_size,
            resolution=spec.resolution,
            refresh_interval=spec.refresh_interval,
            strategy=spec.strategy,
            max_window=spec.max_window,
            seed_from_previous=spec.seed_from_previous,
            incremental=spec.incremental,
            recompute_every=spec.recompute_every,
            verify_incremental=spec.verify_incremental,
            keep_pane_sketches=spec.keep_pane_sketches,
            pyramid=spec.pyramid,
            warm_start=spec.warm_start,
            kernel=spec.kernel,
            watermark=spec.watermark,
            normalize=spec.normalize,
            cadence=spec.cadence,
            gap_policy=spec.gap_policy,
            backfill=getattr(spec, "backfill", "auto"),
        )

    @staticmethod
    def _lag_budget(resolution: int, max_window: int | None) -> int:
        """The largest ACF lag any refresh can need (window never exceeds
        ``resolution`` panes, and the search ceiling caps the lag further)."""
        ceiling = max(default_max_lag(resolution), 2)
        if max_window is not None:
            ceiling = max(min(max_window, resolution - 1), 2)
        return ceiling

    # -- counters used by the performance experiments -------------------------

    @property
    def refresh_count(self) -> int:
        """Frames emitted so far."""
        return self._refresh_count

    @property
    def searches_run(self) -> int:
        """Window searches executed (one per emitted frame)."""
        return self._searches_run

    @property
    def candidates_evaluated(self) -> int:
        """Total SMA evaluations across all searches."""
        return self._candidates_evaluated

    @property
    def points_ingested(self) -> int:
        """Raw points pushed so far."""
        return self._buffer.total_points

    @property
    def full_recomputes(self) -> int:
        """Periodic exact rebuilds of the incremental state so far."""
        return self._full_recomputes

    @property
    def exact_fallbacks(self) -> int:
        """Refreshes routed through the exact path because the window was too
        ill-conditioned (offset far exceeding spread) for any incremental
        formulation to match the scalar kernels to 1e-9."""
        return self._exact_fallbacks

    @property
    def warm_prefetches(self) -> int:
        """Refreshes whose search was seeded by a warm-start trace prefetch."""
        return self._warm_prefetches

    @property
    def warm_fallbacks(self) -> int:
        """Warm-started refreshes whose search left the prefetched trace
        (the stream drifted), paying ordinary single-probe kernel calls for
        the uncovered candidates.  Frames are unaffected — this counts lost
        speedup, not lost accuracy."""
        return self._warm_fallbacks

    @property
    def backfills(self) -> int:
        """Archive replays performed via :meth:`backfill`."""
        return self._backfills

    @property
    def backfill_points(self) -> int:
        """Raw points ingested through the backfill lane (post-quality)."""
        return self._backfill_points

    @property
    def backfill_elided(self) -> int:
        """Interior refresh boundaries replayed without materializing a frame.

        Each still occupies its ``refresh_index`` slot, so frame numbering
        is unchanged — this counts saved work, not skipped state."""
        return self._backfill_elided

    # -- data-quality counters (0 whenever the quality stage is off) -----------

    @property
    def gaps_filled(self) -> int:
        """Synthetic points emitted by the normalizer across the stream."""
        return self._normalizer.gaps_filled if self._normalizer is not None else 0

    @property
    def nan_dropped(self) -> int:
        """Non-finite arrivals filtered out by the normalizer."""
        return self._normalizer.nan_dropped if self._normalizer is not None else 0

    @property
    def late_accepted(self) -> int:
        """Out-of-order arrivals placed correctly within the watermark."""
        return self._reorder.late_accepted if self._reorder is not None else 0

    @property
    def late_dropped(self) -> int:
        """Arrivals beyond the watermark, counted-and-dropped."""
        return self._reorder.late_dropped if self._reorder is not None else 0

    @property
    def window_completeness(self) -> float:
        """Fraction of the current aggregated window built from observed
        (non-synthetic) points; 1.0 whenever normalization is off."""
        return self._buffer.window_completeness

    def _frame_quality(self) -> FrameQuality:
        if self._normalizer is None and self._reorder is None:
            return FrameQuality()
        return FrameQuality(
            completeness=self._buffer.window_completeness,
            synthetic_in_window=self._buffer.window_synthetic_points,
            gaps_filled=self.gaps_filled,
            nan_dropped=self.nan_dropped,
            late_accepted=self.late_accepted,
            late_dropped=self.late_dropped,
        )

    # -- serving-layer accessors (used by repro.service.StreamHub) ------------

    @property
    def pane_count(self) -> int:
        """Completed panes currently in the window."""
        return len(self._buffer)

    @property
    def last_window(self) -> int | None:
        """Window selected by the most recent search, if any."""
        return self._previous_window

    @property
    def refresh_due(self) -> bool:
        """True when a deferred refresh boundary is pending (see push_many)."""
        return self._refresh_due

    @property
    def panes_completed(self) -> int:
        """Panes ever completed — monotone version counter for view caches."""
        return self._buffer.panes_completed

    def aggregated_values(self) -> np.ndarray:
        """The aggregated window the next search would run over (a copy)."""
        return self._buffer.aggregated_values()

    def pyramid_view(
        self, spec: ViewSpec | int, sync: bool = True
    ) -> PyramidView:
        """Resolve a multi-resolution view of the current window.

        Requires a pyramid attached at construction.  With *sync* (the
        default) any panes completed since the last refresh are folded into
        the pyramid first, so the view always reflects every completed pane —
        exactly the window :meth:`aggregated_values` exposes.
        """
        if self.pyramid is None:
            raise ValueError(
                "no pyramid attached; construct StreamingASAP(..., pyramid=True) "
                "to serve multi-resolution views"
            )
        if sync:
            self._sync_pane_state()
        return self.pyramid.view(spec)

    # -- operator contract ----------------------------------------------------

    def push(self, item: StreamPoint):
        """Ingest one arrival; yields a :class:`Frame` on refresh boundaries."""
        if self._reorder is not None or self._normalizer is not None:
            # Quality stages are batch-shaped; route the point through the
            # same pipeline so per-point and batched ingestion stay
            # bit-identical (the boundary loop splits at the same states).
            return tuple(self.push_many([item.timestamp], [item.value]))
        frames: list[Frame] = []
        self._run_due_refresh(frames)
        completed = self._buffer.push(item.timestamp, item.value)
        if completed is not None:
            self._panes_since_refresh += 1
            if self._panes_since_refresh >= self.refresh_interval:
                self._panes_since_refresh = 0
                frame = self._refresh()
                if frame is not None:
                    frames.append(frame)
        return tuple(frames)

    def push_many(self, timestamps, values, defer_boundary: bool = False):
        """Ingest a batch of arrivals; returns the frames it produced.

        Equivalent to pushing the points one at a time — refresh boundaries
        that fall *inside* the batch trigger refreshes at exactly the same
        buffer states — but whole panes are folded with vectorized kernels.
        With ``defer_boundary=True``, a refresh boundary landing exactly at
        the end of the batch is *deferred*: the operator marks itself
        :attr:`refresh_due` instead of refreshing, so a serving layer can
        coalesce the refresh with other streams (the deferred refresh runs
        before any further data is folded, preserving per-point semantics).

        With a ``watermark`` the batch first passes through the reordering
        buffer (only released points are folded); with ``normalize=True`` the
        released points then pass through the normalizer (which may drop
        non-finite values and synthesize gap fills).  Both stages are
        prefix-deterministic over the released sequence, so batching
        granularity never changes the frames.
        """
        frames: list[Frame] = []
        self._run_due_refresh(frames)
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        synth = None
        if self._reorder is not None:
            ts, vs = self._reorder.push_many(ts, vs)
        if self._normalizer is not None:
            ts, vs, synth = self._normalizer.process(ts, vs)
        self._fold(ts, vs, synth, frames, defer_boundary=defer_boundary)
        return frames

    def _fold(
        self,
        ts,
        vs,
        synth,
        frames: list[Frame],
        defer_boundary: bool = False,
        elide_interior: bool = False,
    ) -> None:
        """The boundary loop: fold normalized points, refreshing on interval.

        With ``elide_interior=True`` (the backfill replay lane), refresh
        boundaries that another boundary will follow *within this batch* run
        the full search but skip warm prefetch and frame materialization —
        both frame-neutral — so only the batch's closing boundary pays for a
        rendered frame.
        """
        i = 0
        n = vs.size
        while i < n:
            pane_size = self._buffer.pane_size
            panes_needed = self.refresh_interval - self._panes_since_refresh
            points_to_boundary = (
                pane_size - self._buffer.open_pane_points + (panes_needed - 1) * pane_size
            )
            take = min(points_to_boundary, n - i)
            self._panes_since_refresh += self._buffer.extend(
                ts[i : i + take],
                vs[i : i + take],
                synthetic=None if synth is None else synth[i : i + take],
            )
            i += take
            if self._panes_since_refresh >= self.refresh_interval:
                self._panes_since_refresh = 0
                if defer_boundary and i == n:
                    self._refresh_due = True
                elif elide_interior and n - i >= self.refresh_interval * pane_size:
                    self._refresh(materialize=False)
                else:
                    frame = self._refresh()
                    if frame is not None:
                        frames.append(frame)

    def refresh_if_due(self, cache: EvaluationCache | None = None) -> Frame | None:
        """Run a refresh deferred by ``push_many(..., defer_boundary=True)``.

        *cache* may carry pre-filled candidate evaluations for the current
        window (the StreamHub coalesces grid-strategy refreshes this way); it
        is ignored unless it matches the window contents exactly.
        """
        if not self._refresh_due:
            return None
        self._refresh_due = False
        return self._refresh(cache=cache)

    def backfill(self, timestamps, values) -> BackfillResult:
        """Replay an archive through batch machinery, then stream seamlessly.

        Ingests the whole history at batch-kernel speed: one batched pass
        through the quality stages, bulk pane folding, chunk-cadence replay
        of the rolling statistics, one bulk pyramid feed, and a single real
        search at the archive's closing refresh boundary (the fast lane; see
        the ``backfill`` constructor knob for lane selection).  Interior
        refresh boundaries are *elided* — no frame is rendered for them —
        but every piece of carried state (pane window, rolling sums and
        their conditioning-rebuild schedule, pyramid levels, refresh ledger,
        quality counters) advances exactly as if the archive had been
        streamed point by point, so **every subsequently streamed frame is
        bit-identical** to the stream-everything run.  Equivalently: a
        backfill emits exactly the frames ``push_many(archive)`` would have
        emitted at the final boundary, and elides the rest.

        Pair with :func:`repro.persist.checkpoint` for fast provisioning:
        ``backfill → checkpoint`` writes a state whose restore streams on
        bit-identically.
        """
        frames: list[Frame] = []
        refreshes_before = self._refresh_count
        searches_before = self._searches_run
        points_before = self._buffer.total_points
        panes_before = self._buffer.panes_completed
        self._run_due_refresh(frames)
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.ndim != 1 or vs.ndim != 1 or ts.size != vs.size:
            raise ValueError(
                f"backfill expects equal-length 1-D timestamps and values, "
                f"got shapes {ts.shape} and {vs.shape}"
            )
        synth = None
        if self._reorder is not None:
            ts, vs = self._reorder.push_many(ts, vs)
        if self._normalizer is not None:
            ts, vs, synth = self._normalizer.process(ts, vs)
        mode = self.backfill_mode
        if mode == "auto":
            # Eliding searches is frame-exact unless the search is seeded
            # from the previous winner (CHECKLASTWINDOW can change the
            # *selected* window, which then seeds the next boundary — a
            # chain only a real per-boundary search reproduces) or every
            # refresh is contractually a verification point.
            fast = (
                self.strategy != "asap" or not self.seed_from_previous
            ) and not self.verify_incremental
            mode = "fast" if fast else "replay"
        if mode == "stream":
            self._fold(ts, vs, synth, frames)
        elif mode == "replay":
            self._fold(ts, vs, synth, frames, elide_interior=True)
        else:
            self._backfill_fast(ts, vs, synth, frames)
        self._backfills += 1
        ingested = self._buffer.total_points - points_before
        self._backfill_points += ingested
        elided = (self._refresh_count - refreshes_before) - len(frames)
        self._backfill_elided += elided
        return BackfillResult(
            points=ingested,
            panes=self._buffer.panes_completed - panes_before,
            frames_elided=elided,
            searches_run=self._searches_run - searches_before,
            mode=mode,
            frames=tuple(frames),
        )

    def _backfill_fast(self, ts, vs, synth, frames: list[Frame]) -> None:
        """The vectorized lane: bulk-fold panes, replay statistics cadence,
        search once at the archive's closing boundary.

        Bit-exactness argument, piece by piece: pane folding is
        batch-granularity-independent (``PaneBuffer.extend`` pins this), so
        one bulk extend reproduces the streamed window and journal.  The
        rolling sums are *not* granularity-independent (they accumulate in
        chunks between rebuilds), so the journal is drained once and
        re-fed to the rolling state in exactly the chunks the streamed
        refreshes would have drained, with the per-boundary conditioning
        reads replayed in :meth:`_refresh`'s order between chunks.  The
        pyramid *is* granularity-independent, so it takes one bulk feed.
        The final chunk is requeued so the closing (real) refresh drains
        precisely what its streamed counterpart would have.
        """
        n = vs.size
        if n == 0:
            return
        pane_size = self._buffer.pane_size
        interval = self.refresh_interval
        capacity = self._buffer.capacity
        p0 = self._panes_since_refresh
        pend0 = self._buffer.pending_completed if self._buffer.journal else 0
        completed_before = self._buffer.panes_completed
        first_need = (
            pane_size - self._buffer.open_pane_points + (interval - p0 - 1) * pane_size
        )
        if n < first_need:
            # No boundary inside the archive: plain bulk fold, nothing due.
            self._panes_since_refresh += self._buffer.extend(ts, vs, synthetic=synth)
            return
        boundaries = 1 + (n - first_need) // (interval * pane_size)
        last_i = first_need + (boundaries - 1) * (interval * pane_size)
        self._buffer.extend(
            ts[:last_i],
            vs[:last_i],
            synthetic=None if synth is None else synth[:last_i],
        )
        if self._buffer.journal and boundaries > 1:
            means, times = self._buffer.drain_completed()
            chunk1 = pend0 + (interval - p0)
            split = chunk1 + (boundaries - 2) * interval
            if self.pyramid is not None and split > 0:
                self.pyramid.extend(means[:split], times[:split])
            start = 0
            for b in range(boundaries - 1):
                end = chunk1 if b == 0 else start + interval
                if self._rolling is not None:
                    self._rolling.extend(means[start:end])
                total = completed_before + (interval - p0) + b * interval
                self._replay_refresh_stats(min(total, capacity))
                start = end
            self._buffer.requeue_completed(means[split:], times[split:])
        else:
            # Either a single boundary (the journal, if any, stays intact
            # for the closing refresh to drain) or no journal consumers;
            # the refresh ledger still advances for elided boundaries.
            for b in range(boundaries - 1):
                total = completed_before + (interval - p0) + b * interval
                self._replay_refresh_stats(min(total, capacity))
        self._panes_since_refresh = 0
        frame = self._refresh()
        if frame is not None:
            frames.append(frame)
        if last_i < n:
            self._panes_since_refresh += self._buffer.extend(
                ts[last_i:],
                vs[last_i:],
                synthetic=None if synth is None else synth[last_i:],
            )

    def _replay_refresh_stats(self, window_len: int) -> None:
        """Advance per-refresh bookkeeping for one elided fast-lane boundary.

        Mirrors the exact *sequence* of rolling-state reads :meth:`_refresh`
        performs — each read may trigger a conditioning rebuild, so matching
        the final sums is not enough; the read order must match too — while
        skipping the search and the frame.  The refresh ledger advances so
        later frames' ``refresh_index`` is unchanged.
        """
        if window_len < MIN_PANES_FOR_SEARCH:
            return
        if self._rolling is not None:
            use_incremental = self._rolling.offset_ratio() <= _EXACT_FALLBACK_RATIO
            if not use_incremental:
                self._exact_fallbacks += 1
            else:
                self._refreshes_since_rebuild += 1
                if self._refreshes_since_rebuild >= self.recompute_every:
                    self._refreshes_since_rebuild = 0
                    self._rolling.rebuild()
                    self._full_recomputes += 1
                self._rolling.roughness()
                self._rolling.kurtosis()
                if self.strategy == "asap":
                    max_lag = self._resolved_max_lag(window_len)
                    if self._rolling.lag_budget >= max_lag:
                        self._rolling.correlations(max_lag)
        self._refresh_count += 1

    def flush(self):
        """Emit one final frame for any aggregates since the last refresh.

        With a ``watermark``, the reordering buffer is drained first (its
        held points fold in sorted order, possibly crossing refresh
        boundaries), so no data is stranded behind the watermark.
        """
        frames: list[Frame] = []
        self._run_due_refresh(frames)
        if self._reorder is not None and len(self._reorder) > 0:
            ts, vs = self._reorder.drain()
            synth = None
            if self._normalizer is not None:
                ts, vs, synth = self._normalizer.process(ts, vs)
            self._fold(ts, vs, synth, frames)
        if self._panes_since_refresh > 0:
            self._panes_since_refresh = 0
            frame = self._refresh()
            if frame is not None:
                frames.append(frame)
        return tuple(frames)

    def reset(self) -> None:
        """Drop all window state (e.g. the user scrolled to a new range)."""
        self._buffer.clear()
        if self._rolling is not None:
            self._rolling.clear()
        if self.pyramid is not None:
            self.pyramid.clear()
        if self._reorder is not None:
            self._reorder.clear()
        if self._normalizer is not None:
            self._normalizer.clear()
        self._panes_since_refresh = 0
        self._previous_window = None
        self._warm_trace = None
        self._refresh_due = False
        self._refreshes_since_rebuild = 0

    # -- serialization ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Full operator state: configuration, pane buffer, rolling sums, pyramid.

        The schema (documented in :mod:`repro.persist`) is everything a
        restored operator needs to emit **bit-identical** subsequent frames:
        the refresh countdown, the previous window (``CHECKLASTWINDOW``'s
        seed), the deferred-refresh flag, and every counter — plus the nested
        state of the pane buffer, the incremental statistics, and the attached
        pyramid.  Per-refresh evaluation caches are *not* persisted; they are
        rebuilt lazily on the next refresh.
        """
        return {
            "pane_size": self._buffer.pane_size,
            "resolution": self._buffer.capacity,
            "refresh_interval": self.refresh_interval,
            "strategy": self.strategy,
            "max_window": self.max_window,
            "seed_from_previous": self.seed_from_previous,
            "incremental": self.incremental,
            "recompute_every": self.recompute_every,
            "verify_incremental": self.verify_incremental,
            "keep_pane_sketches": self._buffer.keep_sketches,
            "warm_start": self.warm_start,
            "kernel": self.kernel,
            "watermark": self.watermark,
            "normalize": self.normalize,
            "cadence": self.cadence,
            "gap_policy": self.gap_policy,
            "reorder": None if self._reorder is None else self._reorder.state_dict(),
            "normalizer": (
                None if self._normalizer is None else self._normalizer.state_dict()
            ),
            "panes_since_refresh": self._panes_since_refresh,
            "previous_window": self._previous_window,
            "warm_trace": None if self._warm_trace is None else list(self._warm_trace),
            "warm_prefetches": self._warm_prefetches,
            "warm_fallbacks": self._warm_fallbacks,
            "refresh_due": self._refresh_due,
            "refresh_count": self._refresh_count,
            "searches_run": self._searches_run,
            "candidates_evaluated": self._candidates_evaluated,
            "refreshes_since_rebuild": self._refreshes_since_rebuild,
            "full_recomputes": self._full_recomputes,
            "exact_fallbacks": self._exact_fallbacks,
            "backfill": self.backfill_mode,
            "backfills": self._backfills,
            "backfill_points": self._backfill_points,
            "backfill_elided": self._backfill_elided,
            "buffer": self._buffer.state_dict(),
            "rolling": None if self._rolling is None else self._rolling.state_dict(),
            "pyramid": None if self.pyramid is None else self.pyramid.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingASAP":
        """Rebuild an operator from :meth:`state_dict` output (exact resume)."""
        operator = cls(
            pane_size=int(state["pane_size"]),
            resolution=int(state["resolution"]),
            refresh_interval=int(state["refresh_interval"]),
            strategy=str(state["strategy"]),
            max_window=None if state["max_window"] is None else int(state["max_window"]),
            seed_from_previous=bool(state["seed_from_previous"]),
            incremental=bool(state["incremental"]),
            recompute_every=int(state["recompute_every"]),
            verify_incremental=bool(state["verify_incremental"]),
            keep_pane_sketches=bool(state["keep_pane_sketches"]),
            pyramid=False,
            warm_start=bool(state["warm_start"]),
            kernel=None if state["kernel"] is None else str(state["kernel"]),
            watermark=int(state["watermark"]),
            normalize=bool(state["normalize"]),
            cadence=None if state["cadence"] is None else float(state["cadence"]),
            gap_policy=str(state["gap_policy"]),
            backfill=str(state.get("backfill", "auto")),
        )
        operator._reorder = (
            None if state["reorder"] is None else ReorderBuffer.from_state(state["reorder"])
        )
        operator._normalizer = (
            None
            if state["normalizer"] is None
            else StreamNormalizer.from_state(state["normalizer"])
        )
        operator._buffer = PaneBuffer.from_state(state["buffer"])
        operator._rolling = (
            None if state["rolling"] is None else RollingWindowState.from_state(state["rolling"])
        )
        operator.pyramid = (
            None if state["pyramid"] is None else Pyramid.from_state(state["pyramid"])
        )
        operator._panes_since_refresh = int(state["panes_since_refresh"])
        operator._previous_window = (
            None if state["previous_window"] is None else int(state["previous_window"])
        )
        operator._warm_trace = (
            None
            if state["warm_trace"] is None
            else tuple(int(w) for w in state["warm_trace"])
        )
        operator._warm_prefetches = int(state["warm_prefetches"])
        operator._warm_fallbacks = int(state["warm_fallbacks"])
        operator._refresh_due = bool(state["refresh_due"])
        operator._refresh_count = int(state["refresh_count"])
        operator._searches_run = int(state["searches_run"])
        operator._candidates_evaluated = int(state["candidates_evaluated"])
        operator._refreshes_since_rebuild = int(state["refreshes_since_rebuild"])
        operator._full_recomputes = int(state["full_recomputes"])
        operator._exact_fallbacks = int(state["exact_fallbacks"])
        operator._backfills = int(state.get("backfills", 0))
        operator._backfill_points = int(state.get("backfill_points", 0))
        operator._backfill_elided = int(state.get("backfill_elided", 0))
        return operator

    # -- Algorithm 3 internals --------------------------------------------------

    def _run_due_refresh(self, frames: list[Frame]) -> None:
        if self._refresh_due:
            self._refresh_due = False
            frame = self._refresh()
            if frame is not None:
                frames.append(frame)

    def _check_last_window(
        self, values: np.ndarray, cache: EvaluationCache
    ) -> SearchState:
        """``CHECKLASTWINDOW``: seed the search from the previous window.

        If the previous window still satisfies the kurtosis constraint on the
        updated aggregates, adopt it as the incumbent (enabling the roughness
        pruning to discard weaker candidates without smoothing them);
        otherwise start from scratch.  The evaluation lands in the shared
        cache, so the follow-up search re-examines it for free.
        """
        state = SearchState.from_cache(cache)
        previous = self._previous_window
        if previous is None or previous < 2 or previous > values.size - 1:
            return state
        evaluation = cache.evaluate(previous)
        if evaluation.kurtosis >= state.original_kurtosis:
            state.window = previous
            state.roughness = evaluation.roughness
            state.candidates_evaluated += 1
        return state

    def _resolved_max_lag(self, n: int) -> int:
        lag = default_max_lag(n) if self.max_window is None else min(self.max_window, n - 1)
        return min(lag, n - 1)

    def _sync_pane_state(self) -> None:
        """Fan journaled pane completions out to every derived-state consumer.

        One journal drain feeds both the rolling statistics (incremental
        refresh) and the attached pyramid (multi-resolution views), so the
        two can never observe different completion histories.
        """
        if self._rolling is None and self.pyramid is None:
            return
        means, times = self._buffer.drain_completed()
        if means.size:
            if self._rolling is not None:
                self._rolling.extend(means)
            if self.pyramid is not None:
                self.pyramid.extend(means, times)

    def _incremental_acf(self, values: np.ndarray) -> ACFAnalysis:
        assert self._rolling is not None
        max_lag = self._resolved_max_lag(values.size)
        correlations = self._rolling.correlations(max_lag)
        if self.verify_incremental:
            exact = autocorrelation(values, max_lag)
            worst = int(np.argmax(np.abs(correlations - exact)))
            _check_agreement(
                f"ACF at lag {worst}", float(correlations[worst]), float(exact[worst])
            )
        return analysis_from_correlations(correlations)

    def _refresh(
        self, cache: EvaluationCache | None = None, materialize: bool = True
    ) -> Frame | None:
        """Run one refresh; with ``materialize=False`` (backfill replay lane)
        the search, statistics, and every piece of carried state advance
        exactly as usual, but the warm prefetch and the rendered frame —
        the two frame-neutral costs — are skipped and ``None`` returned."""
        self._sync_pane_state()
        values = self._buffer.aggregated_values()
        if values.size < MIN_PANES_FOR_SEARCH:
            return None
        if cache is not None and (
            cache.values.size != values.size or not np.array_equal(cache.values, values)
        ):
            cache = None  # stale pre-fill (data raced in); fall back to fresh state
        # Above the conditioning ratio no float64 formulation can agree with
        # the scalar kernels to 1e-9, so such refreshes run the exact
        # from-scratch path — agreement by construction.
        use_incremental = (
            self._rolling is not None
            and self._rolling.offset_ratio() <= _EXACT_FALLBACK_RATIO
        )
        if self._rolling is not None and not use_incremental:
            self._exact_fallbacks += 1
        if cache is None:
            cache = EvaluationCache(values, kernel=self.kernel)
            if use_incremental:
                self._refreshes_since_rebuild += 1
                if self._refreshes_since_rebuild >= self.recompute_every:
                    self._refreshes_since_rebuild = 0
                    self._rolling.rebuild()
                    self._full_recomputes += 1
                rolling_roughness = self._rolling.roughness()
                rolling_kurtosis = self._rolling.kurtosis()
                if self.verify_incremental:
                    _check_agreement(
                        "roughness", rolling_roughness, _scalar_roughness(values)
                    )
                    _check_agreement(
                        "kurtosis", rolling_kurtosis, _scalar_kurtosis(values)
                    )
                cache.seed_original(rolling_roughness, rolling_kurtosis)
        # Warm-started search: prefetch the previous refresh's probe trace
        # (plus the previous winner's neighborhood) in one stacked kernel
        # call, then let the unchanged search replay over cache hits.  The
        # prefetched values come from a kernel bit-identical to the cold
        # path's single-window probes, so the search makes identical
        # decisions and frames are bit-identical — only dispatch count
        # changes.  Scalar backend is excluded (different rounding path);
        # grid strategies are excluded (they already batch their grid).
        warm_prefetched = False
        warm_eligible = (
            self.warm_start
            and self.strategy in ADAPTIVE_STRATEGIES
            and cache.backend in ("grid", "numba")
        )
        if materialize and warm_eligible and self._warm_trace is not None:
            probes = plan_warm_probes(
                self._warm_trace,
                self._previous_window,
                resolve_max_window(values, self.max_window),
            )
            if len(probes) >= 2:
                if cache.backend == "numba":
                    rough, kurt = accel.sma_grid_moments_numba(values, probes)
                else:
                    workspace = self._probe_workspace
                    if (
                        workspace is None
                        or workspace.shape[1] < len(probes)
                        or workspace.shape[2] != values.size
                    ):
                        workspace = np.empty(
                            (2, max(len(probes) + 8, 16), values.size),
                            dtype=np.float64,
                        )
                        self._probe_workspace = workspace
                    rough, kurt = sma_probe_moments(values, probes, workspace=workspace)
                cache.seed(
                    WindowEvaluation(window=w, roughness=float(r), kurtosis=float(k))
                    for w, r, k in zip(probes, rough, kurt)
                )
                warm_prefetched = True
                self._warm_prefetches += 1
        if self.strategy == "asap":
            max_lag = self._resolved_max_lag(values.size)
            if use_incremental and self._rolling.lag_budget >= max_lag:
                acf = self._incremental_acf(values)
            else:
                acf = analyze_acf(values, max_lag=max_lag)
            state = (
                self._check_last_window(values, cache)
                if self.seed_from_previous
                else SearchState.from_cache(cache)
            )
            search = asap_search(
                values, max_window=self.max_window, acf=acf, state=state, cache=cache
            )
        else:
            search = run_strategy(self.strategy, values, self.max_window, cache=cache)
        if warm_prefetched and cache.misses > 0:
            # The search left the prefetched trace (stream drift / regime
            # change) and paid single-probe kernel calls for the rest.
            self._warm_fallbacks += 1
        if warm_eligible:
            self._warm_trace = cache.touched_windows()
        self._searches_run += 1
        self._candidates_evaluated += search.candidates_evaluated
        self._previous_window = search.window

        if not materialize:
            self._refresh_count += 1
            return None
        smoothed_values = sma(values, search.window)
        timestamps = self._buffer.aggregated_timestamps()[: smoothed_values.size]
        self._refresh_count += 1
        return Frame(
            series=TimeSeries(smoothed_values, timestamps, name="asap-stream"),
            window=search.window,
            search=search,
            refresh_index=self._refresh_count - 1,
            points_ingested=self._buffer.total_points,
            quality=self._frame_quality(),
        )
