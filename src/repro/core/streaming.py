"""Streaming ASAP (Section 4.5, Algorithm 3).

The streaming operator folds arrivals into panes sized by the point-to-pixel
ratio, keeps a bounded buffer of completed panes (the visualized window), and
re-runs the window search only every ``refresh_interval`` aggregated points —
on-demand updates at human-perceptible timescales rather than per arrival.

On each refresh the operator:

1. recomputes the ACF over the in-window aggregates (``UPDATEACF``);
2. revalidates the previous frame's window (``CHECKLASTWINDOW``): if that
   window still satisfies the kurtosis constraint it seeds the new search,
   so the roughness-estimate pruning can reject candidates immediately;
3. runs ``FINDWINDOW`` (Algorithm 2) and emits a freshly smoothed frame.

The three optimizations can be disabled independently — pane size 1 turns
off pixel-aware aggregation, ``strategy="exhaustive"`` turns off
autocorrelation pruning, ``refresh_interval=1`` turns off on-demand updates —
which is exactly the grid the Figure 11 factor/lesion analysis sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stream.operators import StreamOperator
from ..stream.panes import PaneBuffer
from ..stream.sources import StreamPoint
from ..timeseries.series import TimeSeries
from .acf import analyze_acf
from .search import SearchResult, SearchState, asap_search, run_strategy
from .smoothing import EvaluationCache, sma

__all__ = ["Frame", "StreamingASAP"]

#: Below this many completed panes a search is statistically meaningless.
_MIN_PANES_FOR_SEARCH = 8


@dataclass(frozen=True)
class Frame:
    """One rendered refresh: the smoothed window ready for display."""

    series: TimeSeries
    window: int
    search: SearchResult
    refresh_index: int
    points_ingested: int


class StreamingASAP(StreamOperator[StreamPoint, Frame]):
    """Continuously smooth a stream, refreshing at human timescales.

    Parameters
    ----------
    pane_size:
        Raw arrivals per aggregated point (the point-to-pixel ratio).  Use 1
        to disable pixel-aware preaggregation.
    resolution:
        Number of aggregated points kept in the visualized window (the
        display width in pixels).
    refresh_interval:
        How many *aggregated* points to collect between searches.  1 refreshes
        for every aggregated point (the paper's inefficient baseline); larger
        values are the on-demand optimization.
    strategy:
        Search strategy per refresh: ``"asap"`` (default) or a baseline name.
    max_window:
        Optional cap on candidate windows, in aggregated units.
    seed_from_previous:
        Reuse the previous refresh's feasible window to seed pruning
        (``CHECKLASTWINDOW``).  Only meaningful for the ASAP strategy.
    """

    def __init__(
        self,
        pane_size: int,
        resolution: int = 800,
        refresh_interval: int = 10,
        strategy: str = "asap",
        max_window: int | None = None,
        seed_from_previous: bool = True,
    ) -> None:
        if refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        self._buffer = PaneBuffer(pane_size=pane_size, capacity=resolution)
        self.refresh_interval = refresh_interval
        self.strategy = strategy
        self.max_window = max_window
        self.seed_from_previous = seed_from_previous
        self._panes_since_refresh = 0
        self._previous_window: int | None = None
        self._refresh_count = 0
        self._searches_run = 0
        self._candidates_evaluated = 0

    # -- counters used by the performance experiments -------------------------

    @property
    def refresh_count(self) -> int:
        """Frames emitted so far."""
        return self._refresh_count

    @property
    def searches_run(self) -> int:
        """Window searches executed (one per emitted frame)."""
        return self._searches_run

    @property
    def candidates_evaluated(self) -> int:
        """Total SMA evaluations across all searches."""
        return self._candidates_evaluated

    @property
    def points_ingested(self) -> int:
        """Raw points pushed so far."""
        return self._buffer.total_points

    # -- operator contract ----------------------------------------------------

    def push(self, item: StreamPoint):
        """Ingest one arrival; yields a :class:`Frame` on refresh boundaries."""
        completed = self._buffer.push(item.timestamp, item.value)
        if completed is None:
            return ()
        self._panes_since_refresh += 1
        if self._panes_since_refresh < self.refresh_interval:
            return ()
        self._panes_since_refresh = 0
        frame = self._refresh()
        return (frame,) if frame is not None else ()

    def flush(self):
        """Emit one final frame for any aggregates since the last refresh."""
        if self._panes_since_refresh == 0:
            return ()
        self._panes_since_refresh = 0
        frame = self._refresh()
        return (frame,) if frame is not None else ()

    def reset(self) -> None:
        """Drop all window state (e.g. the user scrolled to a new range)."""
        self._buffer.clear()
        self._panes_since_refresh = 0
        self._previous_window = None

    # -- Algorithm 3 internals --------------------------------------------------

    def _check_last_window(
        self, values: np.ndarray, cache: EvaluationCache
    ) -> SearchState:
        """``CHECKLASTWINDOW``: seed the search from the previous window.

        If the previous window still satisfies the kurtosis constraint on the
        updated aggregates, adopt it as the incumbent (enabling the roughness
        pruning to discard weaker candidates without smoothing them);
        otherwise start from scratch.  The evaluation lands in the shared
        cache, so the follow-up search re-examines it for free.
        """
        state = SearchState.from_cache(cache)
        previous = self._previous_window
        if previous is None or previous < 2 or previous > values.size - 1:
            return state
        evaluation = cache.evaluate(previous)
        if evaluation.kurtosis >= state.original_kurtosis:
            state.window = previous
            state.roughness = evaluation.roughness
            state.candidates_evaluated += 1
        return state

    def _refresh(self) -> Frame | None:
        values = self._buffer.aggregated_values()
        if values.size < _MIN_PANES_FOR_SEARCH:
            return None
        cache = EvaluationCache(values)
        if self.strategy == "asap":
            acf = analyze_acf(
                values,
                max_lag=(
                    min(self.max_window, values.size - 1)
                    if self.max_window is not None
                    else None
                ),
            )
            state = (
                self._check_last_window(values, cache)
                if self.seed_from_previous
                else SearchState.from_cache(cache)
            )
            search = asap_search(
                values, max_window=self.max_window, acf=acf, state=state, cache=cache
            )
        else:
            search = run_strategy(self.strategy, values, self.max_window, cache=cache)
        self._searches_run += 1
        self._candidates_evaluated += search.candidates_evaluated
        self._previous_window = search.window

        smoothed_values = sma(values, search.window)
        timestamps = self._buffer.aggregated_timestamps()[: smoothed_values.size]
        self._refresh_count += 1
        return Frame(
            series=TimeSeries(smoothed_values, timestamps, name="asap-stream"),
            window=search.window,
            search=search,
            refresh_index=self._refresh_count - 1,
            points_ingested=self._buffer.total_points,
        )
