"""Window-search strategies (Section 4, Algorithms 1 and 2).

All strategies solve the same problem:

    minimize  roughness(SMA(X, w))
    subject to  Kurt[SMA(X, w)] >= Kurt[X]

over integer windows ``w`` in ``[1, max_window]`` (``w = 1`` is the always-
feasible "leave it unsmoothed" answer).  They differ in which candidates they
evaluate:

* :func:`exhaustive_search` — every window (the O(N^2) strawman, Section 4.1);
* :func:`grid_search` — every ``step``-th window (Grid2/Grid10 in Figure 8);
* :func:`binary_search` — bisection on the kurtosis constraint, justified for
  IID data by Equations 2 and 4 (Section 4.2);
* :func:`asap_search` — Algorithm 2: evaluate autocorrelation peaks from
  large to small with the two pruning rules of Algorithm 1 (lower-bound via
  Equation 6, roughness-estimate via Equation 5), then binary-search the gap
  above the largest feasible peak; falls back to plain binary search for
  aperiodic series.

Candidate evaluation flows through a shared
:class:`~repro.core.smoothing.EvaluationCache`: the grid-shaped strategies
(exhaustive, grid) hand their entire candidate list to one vectorized kernel
call, the adaptive strategies (binary, ASAP) evaluate on demand through the
same kernel, and callers (:func:`repro.core.batch.smooth`, the streaming
operator, the batch engine) may pass a pre-filled cache to share work.

Every strategy reports how many candidates it actually considered
(``candidates_evaluated``), the quantity Table 2 compares; memoization never
changes that count — it only removes redundant kernel work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..timeseries.stats import kurtosis, roughness
from .acf import ACFAnalysis, analyze_acf, default_max_lag
from .metrics import estimate_is_rougher
from .smoothing import EvaluationCache

__all__ = [
    "SearchResult",
    "SearchState",
    "exhaustive_search",
    "grid_search",
    "binary_search",
    "asap_search",
    "search_periodic",
    "resolve_max_window",
    "plan_warm_probes",
    "ADAPTIVE_STRATEGIES",
    "STRATEGIES",
    "run_strategy",
]

#: Strategies whose candidate set is data-dependent (bisection paths, ACF
#: peaks) rather than a fixed grid.  These are the strategies that benefit
#: from warm-started probe prefetching: a fixed-grid strategy already charges
#: its whole candidate set to one vectorized kernel call.
ADAPTIVE_STRATEGIES = ("asap", "binary")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a window search over one series."""

    window: int
    roughness: float
    kurtosis: float
    candidates_evaluated: int
    strategy: str
    max_window: int

    @property
    def smoothed(self) -> bool:
        """Whether any smoothing beyond the identity window was selected."""
        return self.window > 1


@dataclass
class SearchState:
    """Mutable search state — the ``opt`` record threaded through Algorithm 1.

    ``window = 1`` (the unsmoothed series) is the initial incumbent: it is
    always feasible because ``Kurt[X] >= Kurt[X]``.  ``lower_bound`` is the
    Equation 6 pruning floor; ``largest_feasible_peak`` tracks where the
    follow-up binary search should start.
    """

    window: int = 1
    roughness: float = math.inf
    lower_bound: int = 1
    largest_feasible_idx: int = -1
    candidates_evaluated: int = 0
    original_kurtosis: float = 0.0

    @classmethod
    def for_series(cls, values) -> "SearchState":
        return cls(
            window=1,
            roughness=roughness(values),
            original_kurtosis=kurtosis(values),
        )

    @classmethod
    def from_cache(cls, cache: EvaluationCache) -> "SearchState":
        """Initial state whose incumbent moments come from the shared cache."""
        return cls(
            window=1,
            roughness=cache.original_roughness,
            original_kurtosis=cache.original_kurtosis,
        )

    def consider(self, evaluation) -> bool:
        """Record one evaluated candidate; return True if it became the best."""
        self.candidates_evaluated += 1
        if not evaluation.is_feasible(self.original_kurtosis):
            return False
        if evaluation.roughness < self.roughness:
            self.window = evaluation.window
            self.roughness = evaluation.roughness
            return True
        return False

    def to_result(self, strategy: str, max_window: int) -> SearchResult:
        return SearchResult(
            window=self.window,
            roughness=self.roughness,
            kurtosis=self.original_kurtosis,
            candidates_evaluated=self.candidates_evaluated,
            strategy=strategy,
            max_window=max_window,
        )


def resolve_max_window(values, max_window: int | None) -> int:
    """The searchable window ceiling: the paper's n/10 default, capped at n-1.

    Shared by every strategy and by the batch engine (which must replicate
    the exact ceiling to pre-compute ACF analyses the searches will accept).
    """
    n = np.asarray(values).size
    if n < 4:
        raise ValueError(f"search needs at least 4 points, got {n}")
    resolved = default_max_lag(n) if max_window is None else max_window
    if resolved < 2:
        raise ValueError(f"max_window must be >= 2, got {resolved}")
    return min(resolved, n - 1)


def _resolve_cache(values, cache: EvaluationCache | None) -> EvaluationCache:
    return EvaluationCache(values) if cache is None else cache


def plan_warm_probes(
    trace, previous_window: int | None, limit: int
) -> list[int]:
    """The candidate windows a warm-started search should prefetch.

    *trace* is the previous refresh's touched-window trace
    (:meth:`~repro.core.smoothing.EvaluationCache.touched_windows`);
    *previous_window* the window it selected; *limit* the current search
    ceiling (:func:`resolve_max_window`).  The plan is the trace plus the
    previous window and its immediate neighbors — streaming windows drift
    slowly, so the new search's bisection path and peak probes almost always
    land inside this set — clipped to the valid range ``[2, limit]`` and
    deduplicated, sorted ascending.

    Prefetching these through one stacked kernel call
    (:func:`~repro.spectral.convolution.sma_probe_moments`) and replaying the
    ordinary search over the pre-filled cache leaves the search's decisions —
    and therefore the selected window and emitted frame — bit-identical to a
    cold search; only the kernel dispatch count changes.  A probe the new
    search does not request is a few wasted rows in the stacked call; a probe
    it needs but the plan lacks falls through to an ordinary single-window
    evaluation (the fallback the streaming operator counts).
    """
    candidates: set[int] = set()
    if trace is not None:
        candidates.update(int(w) for w in trace)
    if previous_window is not None:
        candidates.update((previous_window - 1, previous_window, previous_window + 1))
    return sorted(w for w in candidates if 2 <= w <= limit)


# -- baseline strategies -----------------------------------------------------


def exhaustive_search(
    values,
    max_window: int | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
) -> SearchResult:
    """Evaluate every window in ``[2, max_window]`` (Section 4.1 strawman).

    All candidates are evaluated by one vectorized kernel call; *acf* is
    accepted for strategy-signature uniformity and ignored.
    """
    cache = _resolve_cache(values, cache)
    limit = resolve_max_window(cache.values, max_window)
    state = SearchState.from_cache(cache)
    for evaluation in cache.evaluate_many(range(2, limit + 1)):
        state.consider(evaluation)
    return state.to_result("exhaustive", limit)


def grid_search(
    values,
    step: int,
    max_window: int | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
) -> SearchResult:
    """Evaluate every *step*-th window — Grid2/Grid10 of Figure 8.

    Roughness is not monotonic in window length for periodic data, so a
    coarse grid can (and in the paper's Figure 8, does) miss the optimum.
    The whole grid is evaluated by one vectorized kernel call.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    cache = _resolve_cache(values, cache)
    limit = resolve_max_window(cache.values, max_window)
    state = SearchState.from_cache(cache)
    for evaluation in cache.evaluate_many(range(2, limit + 1, step)):
        state.consider(evaluation)
    return state.to_result(f"grid{step}", limit)


def binary_search(
    values,
    max_window: int | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
) -> SearchResult:
    """Bisect on the kurtosis constraint (Section 4.2).

    Sound for IID data, where roughness decreases and kurtosis moves
    monotonically toward 3 with window size; used by ASAP as the fallback
    for aperiodic series and as Figure 8's `Binary` baseline.
    """
    cache = _resolve_cache(values, cache)
    limit = resolve_max_window(cache.values, max_window)
    state = SearchState.from_cache(cache)
    _binary_search_range(cache, 2, limit, state)
    return state.to_result("binary", limit)


def _binary_search_range(
    cache: EvaluationCache, head: int, tail: int, state: SearchState
) -> None:
    """Shared bisection: feasible midpoints push the search to larger windows."""
    while head <= tail:
        window = (head + tail) // 2
        evaluation = cache.evaluate(window)
        state.consider(evaluation)
        if evaluation.is_feasible(state.original_kurtosis):
            head = window + 1
        else:
            tail = window - 1


# -- ASAP (Algorithms 1 and 2) ------------------------------------------------


def _update_lower_bound(state: SearchState, window: int, acf: ACFAnalysis) -> None:
    """Algorithm 1's ``UPDATELB`` — Equation 6.

    Once *window* is feasible with autocorrelation ``a``, any smaller window
    ``w'`` can only beat it if ``w' > window * sqrt((1 - maxACF) / (1 - a))``.
    """
    acf_here = acf.correlation_at(window)
    if acf_here >= 1.0:
        bound = window
    else:
        bound = int(window * math.sqrt((1.0 - acf.max_acf) / (1.0 - acf_here)))
    state.lower_bound = max(state.lower_bound, bound)


def search_periodic(
    values,
    candidates,
    acf: ACFAnalysis,
    state: SearchState,
    cache: EvaluationCache | None = None,
) -> SearchState:
    """Algorithm 1: evaluate candidate windows from large to small with pruning.

    Pruning rules:
    * **lower bound** (Equation 6) — stop once candidates fall below the
      floor established by earlier feasible windows;
    * **roughness estimate** (Equation 5 via ``ISROUGHER``) — skip candidates
      whose estimated roughness already exceeds the incumbent's.

    One deliberate refinement over the paper's printed pseudocode: kurtosis
    feasibility updates the lower bound and ``largest_feasible_idx`` even when
    the candidate does not improve on the incumbent roughness — feasibility
    and improvement are independent facts, and conflating them (as the
    printed conjunction does) weakens pruning without changing the result.
    """
    cache = _resolve_cache(values, cache)
    arr = cache.values
    candidate_list = list(candidates)
    for index in range(len(candidate_list) - 1, -1, -1):
        window = candidate_list[index]
        if window < state.lower_bound:
            break
        if window < 2 or window > arr.size - 1:
            continue
        if estimate_is_rougher(
            window,
            acf.correlation_at(window),
            state.window,
            acf.correlation_at(state.window),
        ):
            continue
        evaluation = cache.evaluate(window)
        state.consider(evaluation)
        if evaluation.is_feasible(state.original_kurtosis):
            _update_lower_bound(state, window, acf)
            state.largest_feasible_idx = max(state.largest_feasible_idx, index)
    return state


def asap_search(
    values,
    max_window: int | None = None,
    acf: ACFAnalysis | None = None,
    state: SearchState | None = None,
    *,
    cache: EvaluationCache | None = None,
) -> SearchResult:
    """Algorithm 2: ACF-peak search plus gap binary search.

    Parameters
    ----------
    values:
        The (typically preaggregated) series to search.
    max_window:
        Upper bound on windows; defaults to one tenth of the series length,
        the paper's experimental setting.
    acf:
        Precomputed ACF analysis, e.g. maintained incrementally by the
        streaming operator or shared across refreshes by the batch engine's
        LRU cache; computed here when absent.
    state:
        Seed search state, used by streaming ASAP to carry the previous
        frame's feasible window into the new search (Section 4.5).
    cache:
        Shared evaluation cache; created when absent.
    """
    cache = _resolve_cache(values, cache)
    arr = cache.values
    limit = resolve_max_window(arr, max_window)
    if acf is None:
        acf = analyze_acf(arr, max_lag=limit)
    if state is None:
        state = SearchState.from_cache(cache)

    peaks = [p for p in acf.peaks if 2 <= p <= limit]
    if acf.is_periodic and peaks:
        state = search_periodic(arr, peaks, acf, state, cache=cache)
        if state.largest_feasible_idx >= 0:
            feasible_peak = peaks[state.largest_feasible_idx]
            if state.largest_feasible_idx + 1 < len(peaks):
                tail = peaks[state.largest_feasible_idx + 1]
            else:
                tail = limit
            head = max(state.lower_bound, feasible_peak + 1)
        else:
            head, tail = 2, limit
        _binary_search_range(cache, head, min(tail, limit), state)
    else:
        _binary_search_range(cache, 2, limit, state)
    return state.to_result("asap", limit)


#: Strategy registry for the Figure 8/9 sweeps: name -> callable with the
#: uniform signature ``(values, max_window=None, *, cache=None, acf=None)``.
STRATEGIES = {
    "exhaustive": exhaustive_search,
    "grid2": lambda values, max_window=None, **kwargs: grid_search(
        values, 2, max_window, **kwargs
    ),
    "grid10": lambda values, max_window=None, **kwargs: grid_search(
        values, 10, max_window, **kwargs
    ),
    "binary": binary_search,
    "asap": lambda values, max_window=None, *, cache=None, acf=None: asap_search(
        values, max_window, acf=acf, cache=cache
    ),
}


def run_strategy(
    name: str,
    values,
    max_window: int | None = None,
    *,
    cache: EvaluationCache | None = None,
    acf: ACFAnalysis | None = None,
) -> SearchResult:
    """Run a registered strategy by name.

    *cache* and *acf* are forwarded to the strategy: a shared
    :class:`~repro.core.smoothing.EvaluationCache` avoids re-evaluating
    candidates across calls, and a precomputed ACF analysis (only consumed by
    the ASAP strategy) lets the batch engine amortize the FFT across
    refreshes.
    """
    try:
        strategy = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {', '.join(STRATEGIES)}"
        ) from None
    return strategy(values, max_window, cache=cache, acf=acf)
