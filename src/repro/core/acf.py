"""Autocorrelation analysis (Section 4.3).

ASAP prunes its window search using the autocorrelation function (ACF) of the
input series: windows aligned with periods of high autocorrelation produce
smoother moving averages (Equation 5), so only ACF *peaks* need to be
examined as candidates.  Computing the ACF naively is O(n^2); the paper uses
"two Fast Fourier Transforms" for O(n log n), which is what
:func:`autocorrelation` does (via :mod:`repro.spectral.fft` by default, or
numpy's FFT for speed).

Peak detection follows the reference behaviour: scan the correlogram for
interior local maxima above a correlation threshold; if at most one peak
exists the series is treated as aperiodic and ASAP falls back to binary
search (Section 4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spectral.fft import fft as _fft
from ..spectral.fft import ifft as _ifft
from ..spectral.fft import rfft_autocorrelation_lengths

__all__ = [
    "autocorrelation",
    "autocorrelation_bruteforce",
    "find_acf_peaks",
    "ACFAnalysis",
    "analyze_acf",
    "analysis_from_correlations",
    "DEFAULT_CORRELATION_THRESHOLD",
]

#: Minimum peak correlation for a lag to count as a period (reference value).
DEFAULT_CORRELATION_THRESHOLD = 0.2


def _validated(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if arr.size < 2:
        raise ValueError(f"autocorrelation needs >= 2 points, got {arr.size}")
    return arr


def default_max_lag(n: int) -> int:
    """The search's default maximum lag/window: one tenth of the series."""
    return max(n // 10, 2)


def autocorrelation(values, max_lag: int | None = None, backend: str = "numpy") -> np.ndarray:
    """ACF estimates for lags ``0..max_lag`` via FFT, O(n log n).

    Uses the estimator the paper derives Equation 5 from:
    ``ACF(X, k) = sum_{i<=N-k} (x_i - mean)(x_{i+k} - mean) / sum (x_i - mean)^2``
    so ``acf[0] == 1``.  A zero-variance series has undefined ACF; we return
    zeros past lag 0, which makes every pruning rule degrade safely.
    """
    arr = _validated(values)
    n = arr.size
    lag = default_max_lag(n) if max_lag is None else max_lag
    if not 0 <= lag < n:
        raise ValueError(f"max_lag must be in [0, {n}), got {lag}")
    centered = arr - arr.mean()
    energy = float(np.dot(centered, centered))
    if energy == 0.0:
        out = np.zeros(lag + 1)
        out[0] = 1.0
        return out
    padded_len = rfft_autocorrelation_lengths(n)
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[:n] = centered
    spectrum = _fft(padded, backend=backend)
    correlation = _ifft(spectrum * np.conj(spectrum), backend=backend)
    return np.real(correlation[: lag + 1]) / energy


def autocorrelation_bruteforce(values, max_lag: int | None = None) -> np.ndarray:
    """O(n * max_lag) direct ACF — the oracle the FFT path is tested against."""
    arr = _validated(values)
    n = arr.size
    lag = default_max_lag(n) if max_lag is None else max_lag
    if not 0 <= lag < n:
        raise ValueError(f"max_lag must be in [0, {n}), got {lag}")
    centered = arr - arr.mean()
    energy = float(np.dot(centered, centered))
    out = np.zeros(lag + 1)
    if energy == 0.0:
        out[0] = 1.0
        return out
    for k in range(lag + 1):
        out[k] = float(np.dot(centered[: n - k], centered[k:])) / energy
    return out


def find_acf_peaks(
    correlations: np.ndarray,
    threshold: float = DEFAULT_CORRELATION_THRESHOLD,
) -> tuple[list[int], float]:
    """Interior local maxima of the correlogram above *threshold*.

    Returns ``(peak_lags, max_peak_correlation)``.  Lags 0 and 1 are never
    peaks (lag-0 is trivially 1.0; lag-1 has no left neighbour beyond it).
    When no peaks qualify, ``max_peak_correlation`` is 0.0.
    """
    acf = np.asarray(correlations, dtype=np.float64)
    if acf.size < 4:
        return [], 0.0
    interior = acf[2:-1]
    qualifying = (interior > acf[1:-2]) & (interior >= acf[3:]) & (interior > threshold)
    peaks = [int(lag) + 2 for lag in np.nonzero(qualifying)[0]]
    max_acf = float(interior[qualifying].max()) if peaks else 0.0
    return peaks, max_acf


@dataclass(frozen=True)
class ACFAnalysis:
    """Everything the ASAP search needs to know about a series' ACF."""

    correlations: np.ndarray
    peaks: tuple[int, ...]
    max_acf: float
    max_lag: int

    @property
    def is_periodic(self) -> bool:
        """True when at least one qualifying ACF peak exists.

        Aperiodic series skip Algorithm 1 and go straight to binary search.
        """
        return len(self.peaks) > 0

    def correlation_at(self, lag: int) -> float:
        """ACF value at *lag*, clamped to the computed range."""
        if lag < 0:
            raise ValueError(f"lag must be non-negative, got {lag}")
        if lag >= self.correlations.size:
            return 0.0
        return float(self.correlations[lag])


def analysis_from_correlations(
    correlations,
    threshold: float = DEFAULT_CORRELATION_THRESHOLD,
) -> ACFAnalysis:
    """Assemble an :class:`ACFAnalysis` from an already-computed correlogram.

    ``correlations[k]`` must be the ACF estimate at lag *k* (so lag 0 is 1.0
    for any non-degenerate series).  This is the entry point for callers that
    obtain the correlogram some way other than :func:`autocorrelation` — the
    streaming operator's incrementally maintained cross-product sums produce
    exactly such an array — while sharing the peak-detection behaviour with
    :func:`analyze_acf`.
    """
    arr = np.asarray(correlations, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 1:
        raise ValueError(f"expected a non-empty 1-D correlogram, got shape {arr.shape}")
    peaks, max_acf = find_acf_peaks(arr, threshold)
    return ACFAnalysis(
        correlations=arr,
        peaks=tuple(peaks),
        max_acf=max_acf,
        max_lag=arr.size - 1,
    )


def analyze_acf(
    values,
    max_lag: int | None = None,
    threshold: float = DEFAULT_CORRELATION_THRESHOLD,
    backend: str = "numpy",
) -> ACFAnalysis:
    """Compute the correlogram and its peaks in one step."""
    arr = _validated(values)
    lag = default_max_lag(arr.size) if max_lag is None else max_lag
    lag = min(lag, arr.size - 1)
    return analysis_from_correlations(
        autocorrelation(arr, lag, backend=backend), threshold
    )
