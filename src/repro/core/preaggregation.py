"""Pixel-aware preaggregation (Section 4.4).

There is rarely benefit in smoothing parameters finer than the target
display can show: a plot wider than the screen's pixel count collapses many
points into each column anyway.  ASAP therefore buckets the input into
non-overlapping means of size equal to the *point-to-pixel ratio*
``floor(N / resolution)`` before searching, shrinking both the series and the
candidate space by that factor (Table 1).

Preaggregation is only applied when the series is at least twice the target
resolution — below that the plot already fits and bucketing would only throw
away information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PreaggregationResult", "point_to_pixel_ratio", "preaggregate"]

#: Only preaggregate when the series is at least this multiple of the target.
MIN_OVERSAMPLING = 2


@dataclass(frozen=True)
class PreaggregationResult:
    """The aggregated series plus the bookkeeping to map results back."""

    values: np.ndarray
    ratio: int
    original_length: int

    @property
    def applied(self) -> bool:
        """Whether any bucketing actually happened (ratio > 1)."""
        return self.ratio > 1

    def window_in_original_units(self, window: int) -> int:
        """Translate a window on the aggregate back to raw-point units."""
        return window * self.ratio


def point_to_pixel_ratio(n: int, resolution: int) -> int:
    """``floor(n / resolution)``, minimum 1 — the paper's bucket size."""
    if n < 0:
        raise ValueError(f"series length must be non-negative, got {n}")
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    return max(n // resolution, 1)


def preaggregate(values, resolution: int) -> PreaggregationResult:
    """Bucket *values* into point-to-pixel-ratio means when oversampled.

    Trailing points that do not fill a complete bucket are dropped, matching
    the pane semantics of the streaming implementation (a pane only becomes a
    plotted point once full).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    n = arr.size
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    if n < MIN_OVERSAMPLING * resolution:
        return PreaggregationResult(values=arr.copy(), ratio=1, original_length=n)
    ratio = point_to_pixel_ratio(n, resolution)
    buckets = n // ratio
    trimmed = arr[: buckets * ratio]
    aggregated = trimmed.reshape(buckets, ratio).mean(axis=1)
    return PreaggregationResult(values=aggregated, ratio=ratio, original_length=n)
