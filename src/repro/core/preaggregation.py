"""Pixel-aware preaggregation (Section 4.4) — the pipeline's first stage.

There is rarely benefit in smoothing parameters finer than the target
display can show: a plot wider than the screen's pixel count collapses many
points into each column anyway.  ASAP therefore buckets the input into
non-overlapping means of size equal to the *point-to-pixel ratio*
``floor(N / resolution)`` before searching, shrinking both the series and the
candidate space by that factor (Table 1).

Preaggregation is only applied when the series is at least twice the target
resolution — below that the plot already fits and bucketing would only throw
away information.

This module is the single home of that stage.  Every consumer — the batch
pipeline (:func:`repro.core.batch.smooth` / ``find_window``), the batch
engine's ratio cohorts, the experiment scripts, and the multi-resolution
pyramid (:mod:`repro.pyramid`) — goes through :func:`prepare_search_input`
or the :func:`bucket_means` primitive, so bucket values are defined in
exactly one place and a value computed anywhere in the system is
bit-identical to the same value computed anywhere else.

**Tail semantics.**  ``floor(N / resolution) * floor(N / ratio)`` rarely
equals ``N``: up to ``ratio - 1`` trailing points do not fill a complete
bucket.  By default that partial bucket is *dropped* — matching the pane
semantics of the streaming implementation, where a pane only becomes a
plotted point once full — and the result's ``original_length_used`` reports
exactly how many raw points the aggregate represents.  Pass
``include_partial=True`` to append the partial bucket's mean as one final
(under-weighted) point instead; the pyramid's views use the same switch, and
both paths produce bit-identical values for the same raw tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError

__all__ = [
    "PreaggregationResult",
    "point_to_pixel_ratio",
    "bucket_means",
    "preaggregate",
    "expected_ratio",
    "prepare_search_input",
]

#: Only preaggregate when the series is at least this multiple of the target.
MIN_OVERSAMPLING = 2


@dataclass(frozen=True)
class PreaggregationResult:
    """The aggregated series plus the bookkeeping to map results back."""

    values: np.ndarray
    ratio: int
    original_length: int
    #: Raw points represented by the trailing *partial* bucket: 0 when the
    #: series divided evenly or the partial bucket was dropped (the default),
    #: ``original_length mod ratio`` when ``include_partial=True`` kept it.
    partial_bucket_points: int = 0

    @property
    def applied(self) -> bool:
        """Whether any bucketing actually happened (ratio > 1)."""
        return self.ratio > 1

    @property
    def original_length_used(self) -> int:
        """Raw points actually represented by :attr:`values`.

        Equals ``len(values) * ratio`` for complete buckets plus the points
        of an included partial bucket; the difference to
        :attr:`original_length` is the silently-invisible dropped tail.
        """
        if self.ratio == 1:
            return self.values.size
        complete = self.values.size - (1 if self.partial_bucket_points else 0)
        return complete * self.ratio + self.partial_bucket_points

    def window_in_original_units(self, window: int) -> int:
        """Translate a window on the aggregate back to raw-point units."""
        return window * self.ratio


def point_to_pixel_ratio(n: int, resolution: int) -> int:
    """``floor(n / resolution)``, minimum 1 — the paper's bucket size."""
    if n < 0:
        raise ValueError(f"series length must be non-negative, got {n}")
    if resolution < 1:
        raise SpecError(f"resolution must be >= 1, got {resolution}")
    return max(n // resolution, 1)


def bucket_means(values, ratio: int, include_partial: bool = False) -> np.ndarray:
    """Means of consecutive non-overlapping *ratio*-point buckets.

    The primitive every aggregation path shares: ``preaggregate``, the
    pyramid's rollup levels, and the equivalence checks all call this, so
    "the bucketed series" has exactly one definition.  The trailing partial
    bucket (fewer than *ratio* points) is dropped unless *include_partial*,
    in which case its mean is appended as one final point.

    The reduction is a row-wise ``mean`` over the reshaped contiguous
    buffer, which does not depend on how many buckets are reduced at once —
    bucketing a stream chunk by chunk (as the pyramid does) produces values
    bit-identical to bucketing the concatenated whole.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if ratio < 1:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    if ratio == 1:
        return arr.copy()
    full = arr.size // ratio
    aggregated = arr[: full * ratio].reshape(full, ratio).mean(axis=1)
    if include_partial and arr.size > full * ratio:
        aggregated = np.append(aggregated, arr[full * ratio :].mean())
    return aggregated


def preaggregate(
    values, resolution: int, include_partial: bool = False
) -> PreaggregationResult:
    """Bucket *values* into point-to-pixel-ratio means when oversampled.

    By default, trailing points that do not fill a complete bucket are
    dropped, matching the pane semantics of the streaming implementation (a
    pane only becomes a plotted point once full); ``include_partial=True``
    appends their mean as one final point instead (see the module docstring
    for the full tail-semantics contract).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    n = arr.size
    if resolution < 1:
        raise SpecError(f"resolution must be >= 1, got {resolution}")
    if n < MIN_OVERSAMPLING * resolution:
        return PreaggregationResult(values=arr.copy(), ratio=1, original_length=n)
    ratio = point_to_pixel_ratio(n, resolution)
    remainder = n % ratio
    aggregated = bucket_means(arr, ratio, include_partial=include_partial)
    return PreaggregationResult(
        values=aggregated,
        ratio=ratio,
        original_length=n,
        partial_bucket_points=remainder if include_partial else 0,
    )


def expected_ratio(n: int, resolution: int, use_preaggregation: bool = True) -> int:
    """The ratio :func:`preaggregate` would apply, without doing the work.

    Used by the batch pipeline to validate caller-supplied caches and by the
    engine to predict cohort shapes before aggregating.
    """
    ratio = point_to_pixel_ratio(n, resolution)  # also validates resolution
    if not use_preaggregation or n < MIN_OVERSAMPLING * resolution:
        return 1
    return ratio


def prepare_search_input(
    values,
    resolution: int,
    use_preaggregation: bool = True,
    include_partial: bool = False,
) -> PreaggregationResult:
    """The pre-aggregation pipeline stage: raw series -> searched series.

    Every search-shaped consumer calls this instead of hand-rolling the
    aggregate: with *use_preaggregation* it is :func:`preaggregate`, without
    it the identity representation (ratio 1) — so "what does the search run
    over" has a single answer across :func:`repro.core.batch.smooth`, the
    batch engine, the streaming operator's pyramid views, and the experiment
    scripts, and turning the stage off is a configuration choice rather than
    a different code path.
    """
    if not use_preaggregation:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
        if resolution < 1:
            raise SpecError(f"resolution must be >= 1, got {resolution}")
        return PreaggregationResult(values=arr.copy(), ratio=1, original_length=arr.size)
    return preaggregate(values, resolution, include_partial=include_partial)
