"""Core ASAP: metrics, search, preaggregation, batch and streaming operators."""

from .metrics import (
    estimate_is_rougher,
    kurtosis,
    kurtosis_iid,
    roughness,
    roughness_estimate,
    roughness_iid,
)
from .acf import (
    ACFAnalysis,
    DEFAULT_CORRELATION_THRESHOLD,
    analysis_from_correlations,
    analyze_acf,
    autocorrelation,
    autocorrelation_bruteforce,
    find_acf_peaks,
)
from .smoothing import (
    EvaluationCache,
    WindowEvaluation,
    evaluate_window,
    evaluate_window_grid,
    sma,
    sma_with_slide,
    smooth_series,
)
from .preaggregation import PreaggregationResult, point_to_pixel_ratio, preaggregate
from .search import (
    STRATEGIES,
    SearchResult,
    SearchState,
    asap_search,
    binary_search,
    exhaustive_search,
    grid_search,
    resolve_max_window,
    run_strategy,
    search_periodic,
)
from .result import SmoothingResult
from .batch import ASAP, DEFAULT_RESOLUTION, find_window, smooth
from .streaming import Frame, RollingWindowState, StreamingASAP

__all__ = [
    "estimate_is_rougher",
    "kurtosis",
    "kurtosis_iid",
    "roughness",
    "roughness_estimate",
    "roughness_iid",
    "ACFAnalysis",
    "DEFAULT_CORRELATION_THRESHOLD",
    "analyze_acf",
    "autocorrelation",
    "autocorrelation_bruteforce",
    "find_acf_peaks",
    "EvaluationCache",
    "WindowEvaluation",
    "evaluate_window",
    "evaluate_window_grid",
    "sma",
    "sma_with_slide",
    "smooth_series",
    "PreaggregationResult",
    "point_to_pixel_ratio",
    "preaggregate",
    "STRATEGIES",
    "SearchResult",
    "SearchState",
    "asap_search",
    "binary_search",
    "exhaustive_search",
    "grid_search",
    "resolve_max_window",
    "run_strategy",
    "search_periodic",
    "SmoothingResult",
    "ASAP",
    "DEFAULT_RESOLUTION",
    "find_window",
    "smooth",
    "Frame",
    "RollingWindowState",
    "StreamingASAP",
    "analysis_from_correlations",
]
