"""The smoothing function: simple moving average (Section 3.3).

ASAP fixes its smoothing function to the simple moving average and tunes only
its window size.  This module wraps the O(n) prefix-sum kernel from the
spectral substrate with the slide policy the paper uses: slide 1 during the
search (every candidate window's roughness/kurtosis must be exact) and a
display-resolution slide when emitting final plots.
"""

from __future__ import annotations

import numpy as np

from ..spectral.convolution import sma, sma_with_slide
from ..timeseries.series import TimeSeries
from ..timeseries.stats import kurtosis, roughness

__all__ = ["sma", "sma_with_slide", "smooth_series", "evaluate_window", "WindowEvaluation"]

from dataclasses import dataclass


@dataclass(frozen=True)
class WindowEvaluation:
    """Quality metrics of one candidate window — one row of the search."""

    window: int
    roughness: float
    kurtosis: float

    def is_feasible(self, original_kurtosis: float) -> bool:
        """The paper's preservation constraint: ``Kurt[Y] >= Kurt[X]``."""
        return self.kurtosis >= original_kurtosis


def evaluate_window(values, window: int) -> WindowEvaluation:
    """Smooth at *window* (slide 1) and measure roughness and kurtosis."""
    smoothed = sma(values, window)
    return WindowEvaluation(
        window=window,
        roughness=roughness(smoothed),
        kurtosis=kurtosis(smoothed),
    )


def smooth_series(series: TimeSeries, window: int, slide: int = 1) -> TimeSeries:
    """Apply SMA to a :class:`TimeSeries`, carrying window-start timestamps."""
    values = sma_with_slide(series.values, window, slide)
    n_out = values.size
    starts = np.arange(n_out) * slide
    return TimeSeries(
        values,
        series.timestamps[starts],
        name=f"{series.name}:sma({window})" if series.name else f"sma({window})",
    )
