"""The smoothing function: simple moving average (Section 3.3).

ASAP fixes its smoothing function to the simple moving average and tunes only
its window size.  This module wraps the O(n) prefix-sum kernel from the
spectral substrate with the slide policy the paper uses: slide 1 during the
search (every candidate window's roughness/kurtosis must be exact) and a
display-resolution slide when emitting final plots.

Candidate evaluation — "smooth at window *w*, measure roughness and
kurtosis" — is the inner loop of every search strategy, so it has two
implementations sharing one result type:

* :func:`evaluate_window` — the scalar reference: one ``sma`` call plus the
  scalar moment kernels.  Kept as the correctness oracle (and the benchmark
  baseline for the pre-vectorization behaviour).
* :func:`evaluate_window_grid` — the vectorized kernel
  (:func:`repro.spectral.convolution.sma_grid_moments`): a whole grid of
  candidates in one array-ops pass, with results for any window independent
  of which grid it was evaluated in.

:class:`EvaluationCache` memoizes evaluations per series and is threaded
through every strategy, so repeated candidates cost nothing, all strategies
share one numeric path (keeping, e.g., ASAP's selected window comparable with
exhaustive search's), and the batch engine can pre-fill a whole search's
candidates with one batched kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from ..spectral import accel
from ..spectral.convolution import sma, sma_grid_moments, sma_window_moments, sma_with_slide
from ..timeseries.series import TimeSeries
from ..timeseries.stats import kurtosis, roughness

__all__ = [
    "sma",
    "sma_with_slide",
    "smooth_series",
    "evaluate_window",
    "evaluate_window_grid",
    "EvaluationCache",
    "WindowEvaluation",
]


@dataclass(frozen=True)
class WindowEvaluation:
    """Quality metrics of one candidate window — one row of the search."""

    window: int
    roughness: float
    kurtosis: float

    def is_feasible(self, original_kurtosis: float) -> bool:
        """The paper's preservation constraint: ``Kurt[Y] >= Kurt[X]``."""
        return self.kurtosis >= original_kurtosis


def evaluate_window(values, window: int) -> WindowEvaluation:
    """Smooth at *window* (slide 1) and measure roughness and kurtosis.

    Scalar reference implementation; the search strategies use the vectorized
    :class:`EvaluationCache` path instead.
    """
    smoothed = sma(values, window)
    return WindowEvaluation(
        window=window,
        roughness=roughness(smoothed),
        kurtosis=kurtosis(smoothed),
    )


def evaluate_window_grid(values, windows) -> list[WindowEvaluation]:
    """Evaluate a whole grid of candidate windows in one vectorized pass.

    Equivalent to ``[evaluate_window(values, w) for w in windows]`` up to
    floating-point roundoff, at a fraction of the cost: the padded SMA matrix
    and its moments are computed with numpy array ops
    (:func:`repro.spectral.convolution.sma_grid_moments`) instead of one
    Python iteration per candidate.  The numbers produced for a window do not
    depend on the rest of the grid, so searches that evaluate different
    candidate subsets stay numerically consistent with each other.
    """
    window_list = [int(w) for w in windows]
    rough, kurt = sma_grid_moments(values, window_list)
    return [
        WindowEvaluation(window=w, roughness=float(r), kurtosis=float(k))
        for w, r, k in zip(window_list, rough, kurt)
    ]


class EvaluationCache:
    """Memoized candidate evaluations for one (searched) series.

    Every search strategy routes its candidate evaluations through one of
    these, which provides:

    * one numeric path for all strategies (``kernel="grid"``: the vectorized
      numpy kernel; ``kernel="scalar"``: the reference loop, kept for
      benchmarking the pre-vectorization behaviour; ``kernel="numba"``: the
      compiled backend of :mod:`repro.spectral.accel`, silently degrading to
      ``"grid"`` when numba is not installed — :attr:`backend` reports the
      effective choice);
    * memoization, so re-examined candidates (seeded streaming searches, the
      ASAP gap binary search crossing an already-evaluated peak) cost
      nothing — note ``candidates_evaluated`` accounting is unaffected: it
      counts *considerations*, exactly as before;
    * a pre-fill hook (:meth:`seed`) used by the batch engine to charge a
      whole grid of candidates to one batched kernel call across many series;
    * the original series' roughness/kurtosis, computed once and shared by
      the search and the result assembly;
    * the *touched-window trace* — every window a search requested through
      :meth:`evaluate`/:meth:`evaluate_many` — which the streaming operator's
      warm-started search prefetches on the next refresh
      (:meth:`touched_windows`; pre-fills via :meth:`seed` do not count).

    ``kernel=None`` resolves through :func:`repro.spec.default_kernel`, so
    the ``ASAP_KERNEL`` environment variable selects the backend for every
    default-constructed cache (the search strategies' internal caches
    included).
    """

    __slots__ = (
        "values",
        "kernel",
        "backend",
        "_evaluations",
        "_original",
        "_touched",
        "hits",
        "misses",
    )

    def __init__(self, values, kernel: str | None = None) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
        if kernel is None:
            from ..spec import default_kernel

            kernel = default_kernel()
        if kernel not in ("grid", "scalar", "numba"):
            raise SpecError(f"kernel must be 'grid', 'scalar', or 'numba', got {kernel!r}")
        self.values = arr
        self.kernel = kernel
        # The effective backend: "numba" degrades gracefully to the numpy
        # grid kernels when the optional dependency is missing.
        self.backend = "grid" if kernel == "numba" and not accel.HAVE_NUMBA else kernel
        self._evaluations: dict[int, WindowEvaluation] = {}
        self._original: tuple[float, float] | None = None
        self._touched: set[int] = set()
        self.hits = 0
        self.misses = 0

    # -- original-series moments ------------------------------------------------

    def _original_moments(self) -> tuple[float, float]:
        if self._original is None:
            self._original = (roughness(self.values), kurtosis(self.values))
        return self._original

    @property
    def original_roughness(self) -> float:
        """Roughness of the unsmoothed series (the window-1 incumbent)."""
        return self._original_moments()[0]

    @property
    def original_kurtosis(self) -> float:
        """Kurtosis of the unsmoothed series (the preservation constraint)."""
        return self._original_moments()[1]

    def seed_original(self, roughness_value: float, kurtosis_value: float) -> None:
        """Install precomputed original moments (batch-engine pre-fill)."""
        self._original = (float(roughness_value), float(kurtosis_value))

    # -- candidate evaluations --------------------------------------------------

    def seed(self, evaluations) -> None:
        """Install precomputed evaluations (batch-engine pre-fill)."""
        for evaluation in evaluations:
            self._evaluations[evaluation.window] = evaluation

    def evaluate(self, window: int) -> WindowEvaluation:
        """Evaluation of one candidate window, memoized."""
        window = int(window)
        self._touched.add(window)
        cached = self._evaluations.get(window)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if self.backend == "scalar":
            evaluation = evaluate_window(self.values, window)
        elif self.backend == "numba":
            rough, kurt = accel.sma_window_moments_numba(self.values, window)
            evaluation = WindowEvaluation(window=window, roughness=rough, kurtosis=kurt)
        else:
            # Single-candidate probes take the lean kernel, which produces
            # bit-identical values to the grid kernel at a fraction of the
            # dispatch cost (binary search and streaming revalidation are
            # long runs of single-window misses).
            rough, kurt = sma_window_moments(self.values, window)
            evaluation = WindowEvaluation(window=window, roughness=rough, kurtosis=kurt)
        self._evaluations[window] = evaluation
        return evaluation

    def evaluate_many(self, windows) -> list[WindowEvaluation]:
        """Evaluations for a whole candidate grid, one kernel call for misses."""
        window_list = [int(w) for w in windows]
        self._touched.update(window_list)
        missing = sorted({w for w in window_list if w not in self._evaluations})
        if missing:
            self.misses += len(missing)
            if self.backend == "scalar":
                fresh = [evaluate_window(self.values, w) for w in missing]
            elif self.backend == "numba":
                rough, kurt = accel.sma_grid_moments_numba(self.values, missing)
                fresh = [
                    WindowEvaluation(window=w, roughness=float(r), kurtosis=float(k))
                    for w, r, k in zip(missing, rough, kurt)
                ]
            elif len(missing) == 1:
                rough, kurt = sma_window_moments(self.values, missing[0])
                fresh = [WindowEvaluation(window=missing[0], roughness=rough, kurtosis=kurt)]
            else:
                fresh = evaluate_window_grid(self.values, missing)
            self.seed(fresh)
        self.hits += len(window_list) - len(missing)
        return [self._evaluations[w] for w in window_list]

    def touched_windows(self) -> tuple[int, ...]:
        """Every window a search *requested*, sorted — the warm-start trace.

        Pre-fills via :meth:`seed` are excluded, so a trace replayed across
        refreshes stays tight: probes the previous search never consulted
        drop out instead of being prefetched forever.
        """
        return tuple(sorted(self._touched))

    def __len__(self) -> int:
        return len(self._evaluations)

    def __repr__(self) -> str:
        return (
            f"EvaluationCache(n={self.values.size}, kernel={self.kernel!r}, "
            f"cached={len(self)}, hits={self.hits}, misses={self.misses})"
        )


def smooth_series(series: TimeSeries, window: int, slide: int = 1) -> TimeSeries:
    """Apply SMA to a :class:`TimeSeries`, carrying window-start timestamps."""
    values = sma_with_slide(series.values, window, slide)
    n_out = values.size
    starts = np.arange(n_out) * slide
    return TimeSeries(
        values,
        series.timestamps[starts],
        name=f"{series.name}:sma({window})" if series.name else f"sma({window})",
    )
