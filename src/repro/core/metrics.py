"""ASAP's quality metrics and their closed-form estimates.

Section 3 defines the two measures the whole system optimizes:

* **roughness** — the standard deviation of the first-difference series
  (minimize);
* **kurtosis** — the fourth standardized moment (preserve:
  ``Kurt[smoothed] >= Kurt[original]``).

Section 4 derives two closed forms this module also provides:

* Equation 2 — for IID data, ``roughness(SMA(X, w)) = sqrt(2) * sigma / w``;
* Equation 5 — for weakly stationary data,
  ``roughness(SMA(X, w)) = sqrt(2)*sigma/w * sqrt(1 - N/(N-w) * ACF(X, w))``,
  the identity behind autocorrelation pruning (validated to ~1% in
  Figure A.1, which we reproduce).
"""

from __future__ import annotations

import math

from ..timeseries.stats import kurtosis, roughness

__all__ = [
    "roughness",
    "kurtosis",
    "roughness_iid",
    "roughness_estimate",
    "kurtosis_iid",
    "estimate_is_rougher",
]


def roughness_iid(sigma: float, window: int) -> float:
    """Equation 2: expected roughness of an IID series smoothed at *window*."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return math.sqrt(2.0) * sigma / window


def kurtosis_iid(kurtosis_x: float, window: int) -> float:
    """Equation 4: kurtosis of a window-*w* average of IID variables.

    ``Kurt[Y] - 3 = (Kurt[X] - 3) / w``: averaging drives kurtosis toward the
    normal value 3 from either side, which is why binary search on the
    kurtosis constraint is sound for IID data (Section 4.2).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return 3.0 + (kurtosis_x - 3.0) / window


def roughness_estimate(sigma: float, n: int, window: int, acf_at_window: float) -> float:
    """Equation 5: estimated roughness of ``SMA(X, window)`` from the ACF.

    ``sqrt(2)*sigma/w * sqrt(1 - N/(N-w) * ACF(X, w))``.  The radicand can go
    slightly negative for very high autocorrelation combined with large
    ``w/N`` (the estimator is approximate); we clamp at zero, which keeps the
    pruning rules conservative.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if not 0 < window < n:
        raise ValueError(f"window must be in (0, {n}), got {window}")
    radicand = 1.0 - (n / (n - window)) * acf_at_window
    radicand = max(radicand, 0.0)
    return math.sqrt(2.0) * sigma / window * math.sqrt(radicand)


def estimate_is_rougher(
    candidate_window: int,
    candidate_acf: float,
    best_window: int,
    best_acf: float,
) -> bool:
    """Algorithm 1's ``ISROUGHER``: compare estimated roughness of two windows.

    Drops the common ``sqrt(2)*sigma`` factor and the ``N/(N-w)`` correction
    (negligible for ``w << N``), leaving
    ``sqrt(1 - acf[w]) / w  >  sqrt(1 - acf[best]) / best``.
    True means the candidate's *estimated* roughness is strictly worse than
    the current best's, so the candidate can be skipped without smoothing.
    """
    if candidate_window < 1 or best_window < 1:
        raise ValueError("windows must be >= 1")
    candidate_score = math.sqrt(max(1.0 - candidate_acf, 0.0)) / candidate_window
    best_score = math.sqrt(max(1.0 - best_acf, 0.0)) / best_window
    return candidate_score > best_score
