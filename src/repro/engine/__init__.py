"""repro.engine — the multi-series batch execution engine.

ASAP's production workload is not one series but a dashboard of them: every
refresh re-smooths hundreds of metrics at the same target resolution.  This
package executes that workload through the single-series pipeline of
:mod:`repro.core` with the batch's shared work hoisted out:

* :func:`smooth_many` / :class:`BatchEngine` — smooth a 2-D array, a list of
  arrays or :class:`~repro.timeseries.TimeSeries`, or a dict of labeled
  series in one call, with batched preaggregation and candidate-evaluation
  kernels, an LRU cache of ACF analyses shared across refreshes, and
  optional thread/process fan-out;
* :class:`BatchResult` / :class:`BatchStats` — per-series
  :class:`~repro.core.result.SmoothingResult`\\ s in input order plus
  aggregate timing and cache accounting.

**Equivalence guarantee.**  ``smooth_many(batch, **config)`` returns results
bit-identical to ``[smooth(series, **config) for series in batch]`` for every
strategy and input shape.  The batched kernels the engine actually drives —
:func:`repro.spectral.convolution.sma_grid_moments` for the candidate grids
and the row-wise original-moment reductions — produce, row for row, exactly
the values the per-series pipeline computes through the same kernels, and
the ACF cache only ever returns analyses the per-series search would have
computed itself.  The engine therefore never
trades accuracy for speed — ``tests/engine`` asserts exact equality, and
every pre-filled evaluation cache is revalidated against the values the
pipeline derives on its own.
"""

from .batch_engine import (
    BatchEngine,
    BatchResult,
    BatchStats,
    prefill_grid_caches,
    smooth_many,
)
from .cache import ACFCache

__all__ = [
    "ACFCache",
    "BatchEngine",
    "BatchResult",
    "BatchStats",
    "prefill_grid_caches",
    "smooth_many",
]
