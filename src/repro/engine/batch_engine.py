"""The multi-series batch engine: ``smooth_many`` over dashboards of series.

The production setting ASAP targets — dashboards charting many metrics at
once — runs the paper's single-series pipeline over hundreds of series per
refresh.  :class:`BatchEngine` executes that workload through the exact
single-series pipeline (:func:`repro.core.batch.smooth`), organized so the
batch pays for its shared work once:

* **Batched kernels over ratio cohorts** — for the grid-shaped strategies
  (exhaustive, grid2, grid10), every series is first run through the shared
  pre-aggregation stage
  (:func:`repro.core.preaggregation.prepare_search_input`) and the batch is
  grouped into *ratio cohorts*: series whose searched representations have
  the same length share one candidate grid, so the original-series moments
  and the *entire candidate grid of every cohort member* are computed by
  2-D/3-D array kernels (:func:`repro.spectral.convolution.sma_grid_moments`)
  and handed to each series' search as a pre-filled
  :class:`~repro.core.smoothing.EvaluationCache`.  Ragged batches whose
  members land on the same point-to-pixel ratio — the common dashboard case
  of many same-resolution charts over different history lengths — batch just
  as well as rectangular ones.
* **Shared ACF analyses** — the ASAP strategy's FFT-based autocorrelation
  analyses are memoized in an :class:`~repro.engine.cache.ACFCache` keyed by
  series content, so refreshes that resubmit unchanged series skip the
  transforms.
* **Worker fan-out** — adaptive strategies and ragged batches can spread
  across a thread or process pool.

Because every path drives the same :func:`~repro.core.batch.smooth` code over
the same numbers (the batched kernels are bit-identical to their scalar
counterparts row by row), ``smooth_many`` returns exactly the results of the
equivalent Python loop — guaranteed by the equivalence tests in
``tests/engine``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.acf import ACFAnalysis
from ..core.batch import smooth
from ..spec import AsapSpec, resolve_spec, spec_backed
from ..core.preaggregation import expected_ratio, prepare_search_input
from ..core.result import SmoothingResult
from ..core.search import resolve_max_window
from ..core.smoothing import EvaluationCache, WindowEvaluation
from ..spectral.convolution import sma_grid_moments
from ..timeseries.series import TimeSeries
from .cache import ACFCache

__all__ = [
    "BatchEngine",
    "BatchResult",
    "BatchStats",
    "smooth_many",
    "prefill_grid_caches",
    "GRID_STRATEGY_STEPS",
]

#: Candidate-grid step per batchable strategy (exhaustive is a step-1 grid).
GRID_STRATEGY_STEPS = {"exhaustive": 1, "grid2": 2, "grid10": 10}


@dataclass(frozen=True)
class BatchStats:
    """Aggregate accounting for one ``smooth_many`` call."""

    n_series: int
    wall_seconds: float
    strategy: str
    workers: int
    executor: str
    used_fast_path: bool
    acf_cache_hits: int
    acf_cache_misses: int
    #: Ratio cohorts (groups of series sharing one searched length, and
    #: therefore one batched candidate-grid kernel call) in this batch; 0
    #: when the fast path did not run or nothing could be grouped.
    ratio_cohorts: int = 0

    @property
    def series_per_second(self) -> float:
        """Throughput of the call (inf for an instantaneous empty batch)."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.n_series / self.wall_seconds


@dataclass(frozen=True)
class BatchResult:
    """Per-series results plus aggregate stats from one ``smooth_many`` call.

    Results preserve input order; ``labels[i]`` names ``results[i]`` (dict
    keys for mapping inputs, series names or indices otherwise).
    """

    labels: tuple[str, ...]
    results: tuple[SmoothingResult, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SmoothingResult]:
        return iter(self.results)

    def __getitem__(self, key) -> SmoothingResult:
        if isinstance(key, str):
            try:
                return self.results[self.labels.index(key)]
            except ValueError:
                raise KeyError(key) from None
        return self.results[key]

    def as_dict(self) -> dict[str, SmoothingResult]:
        """Results keyed by label (mapping inputs round-trip through this)."""
        return dict(zip(self.labels, self.results))


def _normalize_batch(batch) -> tuple[list[str], list]:
    """Flatten any accepted batch shape into (labels, series items).

    Accepts a 2-D array (rows are series), a sequence of 1-D arrays or
    :class:`TimeSeries`, or a mapping of label -> series.
    """
    if isinstance(batch, Mapping):
        labels = [str(key) for key in batch.keys()]
        return labels, list(batch.values())
    if isinstance(batch, np.ndarray):
        if batch.ndim != 2:
            raise TypeError(
                f"array batches must be 2-D (rows are series), got shape {batch.shape}; "
                "wrap a single series in a list to smooth it"
            )
        return [str(i) for i in range(batch.shape[0])], list(batch)
    if isinstance(batch, (TimeSeries, str, bytes)) or not isinstance(batch, Sequence):
        raise TypeError(
            f"expected a 2-D array, a sequence of series, or a mapping, got "
            f"{type(batch).__name__}; wrap a single series in a list"
        )
    items = list(batch)
    labels = []
    for index, item in enumerate(items):
        if isinstance(item, TimeSeries) and item.name:
            labels.append(item.name)
        else:
            labels.append(str(index))
    return labels, items


def _item_values(item) -> np.ndarray:
    values = item.values if isinstance(item, TimeSeries) else item
    return np.asarray(values, dtype=np.float64)


def _labeled(label: str, index: int, exc: Exception) -> Exception:
    return type(exc)(f"series {label!r} (batch index {index}): {exc}")


def _row_roughness(rows: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.timeseries.stats.roughness`, bit for bit."""
    if rows.shape[1] < 2:
        return np.zeros(rows.shape[0], dtype=np.float64)
    diffs = np.diff(rows, axis=1)
    centered = diffs - diffs.mean(axis=1, keepdims=True)
    return np.sqrt(np.mean(centered * centered, axis=1))


def _row_kurtosis(rows: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.timeseries.stats.kurtosis`, bit for bit."""
    centered = rows - rows.mean(axis=1, keepdims=True)
    second = np.mean(centered * centered, axis=1)
    fourth = np.mean(centered ** 4, axis=1)
    degenerate = second == 0.0
    safe = np.where(degenerate, 1.0, second)
    return np.where(degenerate, 0.0, fourth / (safe * safe))


def _smooth_one(payload) -> SmoothingResult:
    """Process-pool task: smooth one series with the given configuration."""
    item, kwargs = payload
    return smooth(item, **kwargs)


def prefill_grid_caches(
    searched2d: np.ndarray,
    strategy: str,
    max_window: int | None = None,
    kernel: str = "grid",
) -> list[EvaluationCache]:
    """One pre-filled :class:`EvaluationCache` per row of a rectangular batch.

    For a grid-shaped strategy, the original-series moments and *every*
    candidate evaluation of every row are computed by three batched kernels
    (:func:`~repro.spectral.convolution.sma_grid_moments` and the row-wise
    moment reductions) and installed into per-row caches, so each row's
    subsequent search runs entirely on cache hits.  Values are bit-identical
    to what per-row evaluation would produce (the batched kernels are
    row-independent).  Shared by :class:`BatchEngine`'s fast path and the
    StreamHub's coalesced tick refreshes.

    ``searched2d`` must already be the *searched* representation (i.e. after
    any preaggregation), with at least 4 columns.
    """
    rows = np.asarray(searched2d, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got shape {rows.shape}")
    if strategy not in GRID_STRATEGY_STEPS:
        raise ValueError(
            f"strategy {strategy!r} has no fixed candidate grid; "
            f"expected one of {', '.join(GRID_STRATEGY_STEPS)}"
        )
    limit = resolve_max_window(rows[0], max_window)
    grid = list(range(2, limit + 1, GRID_STRATEGY_STEPS[strategy]))

    original_roughness = _row_roughness(rows)
    original_kurtosis = _row_kurtosis(rows)
    grid_roughness, grid_kurtosis = sma_grid_moments(rows, grid)

    caches: list[EvaluationCache] = []
    for index in range(rows.shape[0]):
        cache = EvaluationCache(rows[index], kernel=kernel)
        cache.seed_original(original_roughness[index], original_kurtosis[index])
        cache.seed(
            WindowEvaluation(
                window=window,
                roughness=float(grid_roughness[index, position]),
                kurtosis=float(grid_kurtosis[index, position]),
            )
            for position, window in enumerate(grid)
        )
        caches.append(cache)
    return caches


@spec_backed(*AsapSpec.OPERATOR_FIELDS)
class BatchEngine:
    """A configured multi-series smoothing engine, reusable across refreshes.

    Parameters
    ----------
    resolution, max_window, strategy, use_preaggregation, kernel, spec:
        Per-series pipeline configuration, exactly as
        :func:`repro.core.batch.smooth` takes it — kwargs build an
        :class:`~repro.spec.AsapSpec` (or override one passed via ``spec=``),
        so validation and defaults are identical to the single-series path.
    workers:
        Fan the per-series work across this many workers.  ``None``/``0``/
        ``1`` run serially.  Parallelism applies to the strategies the engine
        cannot pre-batch (``asap``/``binary``) and to ragged batches; the
        grid-shaped strategies on equal-length batches use the batched
        kernels instead, which beat thread fan-out on any core count.
    executor:
        ``"thread"`` (default; shares the ACF cache) or ``"process"``
        (bypasses the shared cache, worth it only for very large per-series
        work).
    acf_cache_size:
        Capacity of the ACF LRU shared across this engine's calls.
    kernel:
        Candidate-evaluation kernel, ``"grid"`` or ``"scalar"`` (reference).
    """

    def __init__(
        self,
        resolution: int | None = None,
        max_window: int | None = None,
        strategy: str | None = None,
        use_preaggregation: bool | None = None,
        workers: int | None = None,
        executor: str = "thread",
        acf_cache_size: int = 256,
        kernel: str | None = None,
        spec: AsapSpec | None = None,
    ) -> None:
        self.spec = resolve_spec(
            spec,
            resolution=resolution,
            max_window=max_window,
            strategy=strategy,
            use_preaggregation=use_preaggregation,
            kernel=kernel,
        )
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.executor = executor
        self.acf_cache = ACFCache(maxsize=acf_cache_size)

    @classmethod
    def from_spec(cls, spec: AsapSpec, **engine_options) -> "BatchEngine":
        """An engine whose pipeline configuration is *spec*; engine-only
        options (``workers``/``executor``/``acf_cache_size``) ride along."""
        return cls(spec=spec, **engine_options)

    # The knob attributes are installed by @spec_backed: reads come from
    # self.spec, assignment re-merges (and validates).  Every call reads
    # self.spec, so a mutated engine behaves like a freshly constructed one.

    # -- public API -------------------------------------------------------------

    def smooth_many(self, batch) -> BatchResult:
        """Smooth every series in *batch*; results preserve input order.

        Output is bit-identical to ``[smooth(s, ...) for s in batch]`` with
        this engine's configuration, for every strategy and input shape.
        """
        started = time.perf_counter()
        labels, items = _normalize_batch(batch)
        acf_hits_before = self.acf_cache.hits
        acf_misses_before = self.acf_cache.misses

        fast = self._try_fast_path(labels, items)
        if fast is not None:
            (results, cohorts), used_fast_path = fast, True
        else:
            results, cohorts = self._fallback_path(labels, items), 0
            used_fast_path = False

        stats = BatchStats(
            n_series=len(items),
            wall_seconds=time.perf_counter() - started,
            strategy=self.strategy,
            workers=self._effective_workers(),
            executor=self.executor,
            used_fast_path=used_fast_path,
            acf_cache_hits=self.acf_cache.hits - acf_hits_before,
            acf_cache_misses=self.acf_cache.misses - acf_misses_before,
            ratio_cohorts=cohorts,
        )
        return BatchResult(labels=tuple(labels), results=tuple(results), stats=stats)

    def __repr__(self) -> str:
        return (
            f"BatchEngine(resolution={self.resolution}, strategy={self.strategy!r}, "
            f"max_window={self.max_window}, workers={self.workers}, "
            f"executor={self.executor!r}, kernel={self.kernel!r})"
        )

    # -- internals --------------------------------------------------------------

    def _effective_workers(self) -> int:
        return self.workers if self.workers and self.workers > 1 else 1

    def _smooth_kwargs(self) -> dict:
        return {"spec": self.spec}

    def _try_fast_path(self, labels, items) -> tuple[list[SmoothingResult], int] | None:
        """Batched-kernel execution over ratio cohorts.

        Eligible when the strategy's candidates form a fixed grid and
        execution is serial.  Every series is run through the shared
        pre-aggregation stage, then grouped by *searched length* (its ratio
        cohort): all members of a cohort share one candidate grid, so their
        original moments and entire candidate evaluations are computed by
        three batched kernels per cohort and installed into pre-filled
        caches.  Cohorts of one get a plain cache (their search evaluates
        through the ordinary kernel — identical values either way); if no
        cohort has at least two members there is nothing to batch and the
        fallback path runs instead.  Returns ``(results, shared_cohorts)``.
        """
        if (
            self.strategy not in GRID_STRATEGY_STEPS
            or self.kernel != "grid"
            or self._effective_workers() > 1
            or not items
        ):
            return None
        # Cohort shapes are a pure function of each series' length, so the
        # grouping decision costs no data pass: when nothing would batch, the
        # fallback path runs without having aggregated anything here.
        value_rows: list[np.ndarray] = []
        sizes: list[int] = []
        for item in items:
            values = _item_values(item)
            if values.ndim != 1 or values.size < 4:
                return None
            ratio = expected_ratio(values.size, self.resolution, self.use_preaggregation)
            searched_size = values.size // ratio if ratio > 1 else values.size
            if searched_size < 4:
                return None
            value_rows.append(values)
            sizes.append(searched_size)

        cohorts: dict[int, list[int]] = {}
        for index, size in enumerate(sizes):
            cohorts.setdefault(size, []).append(index)
        if max(len(indices) for indices in cohorts.values()) < 2:
            return None

        # The shared pipeline stage — bit-identical to the pass smooth()
        # itself would run, which is what lets the pre-filled caches be
        # handed straight to the per-series pipeline.
        searched_rows = [
            prepare_search_input(values, self.resolution, self.use_preaggregation).values
            for values in value_rows
        ]
        caches: dict[int, EvaluationCache] = {}
        shared_cohorts = 0
        for indices in cohorts.values():
            if len(indices) < 2:
                index = indices[0]
                caches[index] = EvaluationCache(searched_rows[index], kernel=self.kernel)
                continue
            stacked = np.vstack([searched_rows[i] for i in indices])
            cohort_caches = prefill_grid_caches(
                stacked, self.strategy, max_window=self.max_window, kernel=self.kernel
            )
            for index, cache in zip(indices, cohort_caches):
                caches[index] = cache
            shared_cohorts += 1

        results: list[SmoothingResult] = []
        kwargs = self._smooth_kwargs()
        for index, (label, item) in enumerate(zip(labels, items)):
            try:
                results.append(smooth(item, cache=caches[index], **kwargs))
            except ValueError as exc:
                raise _labeled(label, index, exc) from exc
        return results, shared_cohorts

    def _fallback_path(self, labels, items) -> list[SmoothingResult]:
        """Per-series execution: serial, thread pool, or process pool."""
        kwargs = self._smooth_kwargs()
        workers = self._effective_workers()

        if workers <= 1:
            return [
                self._smooth_labeled(label, index, item, kwargs)
                for index, (label, item) in enumerate(zip(labels, items))
            ]

        if self.executor == "process":
            payloads = [(item, kwargs) for item in items]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_smooth_one, payload) for payload in payloads]
                return self._collect(labels, futures)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._smooth_labeled, label, index, item, kwargs)
                for index, (label, item) in enumerate(zip(labels, items))
            ]
            return [future.result() for future in futures]

    def _collect(self, labels, futures: list[Future]) -> list[SmoothingResult]:
        results = []
        for index, (label, future) in enumerate(zip(labels, futures)):
            try:
                results.append(future.result())
            except ValueError as exc:
                raise _labeled(label, index, exc) from exc
        return results

    def _smooth_labeled(self, label, index, item, kwargs) -> SmoothingResult:
        try:
            cache, acf = self._prepared_search_state(item)
            return smooth(item, cache=cache, acf=acf, **kwargs)
        except ValueError as exc:
            raise _labeled(label, index, exc) from exc

    def _prepared_search_state(
        self, item
    ) -> tuple[EvaluationCache | None, ACFAnalysis | None]:
        """Per-series search inputs computed once: the cache and (asap) ACF.

        Preaggregation runs here exactly as the pipeline would run it; handing
        the result to :func:`smooth` as a cache skips the duplicate pass, and
        the ACF comes from the engine-wide LRU so refreshes that resubmit a
        series skip the FFTs.  Both are precisely the values the search would
        derive on its own, preserving the equivalence guarantee.
        """
        values = _item_values(item)
        if values.ndim != 1 or values.size < 4:
            return None, None
        searched = prepare_search_input(
            values, self.resolution, self.use_preaggregation
        ).values
        cache = EvaluationCache(searched, kernel=self.kernel)
        if self.strategy != "asap" or searched.size < 4:
            return cache, None
        limit = resolve_max_window(searched, self.max_window)
        return cache, self.acf_cache.get_or_compute(searched, limit)


def smooth_many(
    batch,
    resolution: int | None = None,
    max_window: int | None = None,
    strategy: str | None = None,
    use_preaggregation: bool | None = None,
    workers: int | None = None,
    executor: str = "thread",
    kernel: str | None = None,
    spec: AsapSpec | None = None,
) -> BatchResult:
    """Smooth a whole batch of series in one call.

    Accepts a 2-D array (rows are series), a list of arrays or
    :class:`~repro.timeseries.TimeSeries`, or a dict of label -> series, and
    returns a :class:`BatchResult` whose per-series
    :class:`~repro.core.result.SmoothingResult`\\ s are bit-identical to
    calling :func:`repro.core.batch.smooth` on each series in a loop — at a
    fraction of the cost for grid-shaped strategies, whose candidate
    evaluations are batched into single vectorized kernel calls.

    Construct a :class:`BatchEngine` directly to keep the ACF cache warm
    across refreshes.

    >>> import numpy as np
    >>> from repro.engine import smooth_many
    >>> batch = np.sin(np.arange(2000) / 20.0) + np.zeros((3, 1))
    >>> result = smooth_many(batch, resolution=200)
    >>> [r.window >= 1 for r in result]
    [True, True, True]
    """
    engine = BatchEngine(
        resolution=resolution,
        max_window=max_window,
        strategy=strategy,
        use_preaggregation=use_preaggregation,
        workers=workers,
        executor=executor,
        kernel=kernel,
        spec=spec,
    )
    return engine.smooth_many(batch)
