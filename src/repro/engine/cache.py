"""Shared analysis caches for the batch engine.

Dashboards re-smooth largely unchanged series on every refresh; the expensive
per-series artifact is the ACF analysis (two FFTs plus peak detection).  The
:class:`ACFCache` memoizes analyses by content fingerprint so a refresh that
re-submits a series it has seen before pays O(n) hashing instead of
O(n log n) transforms — and, because :func:`repro.core.acf.analyze_acf` is
deterministic, a cached analysis is exactly the analysis the search would
have computed itself.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core.acf import ACFAnalysis, analyze_acf

__all__ = ["ACFCache"]


def _fingerprint(values: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(values.tobytes())
    return digest.digest()


class ACFCache:
    """A bounded LRU cache of ACF analyses keyed by series content.

    Thread-safe: the engine's thread pool may probe it concurrently.  Keys
    combine a content fingerprint with the analysis parameters, so the same
    series analyzed at two different lag ceilings occupies two slots.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, ACFAnalysis] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, values, max_lag: int) -> ACFAnalysis:
        """The ACF analysis of *values* at *max_lag*, computed at most once."""
        arr = np.ascontiguousarray(values, dtype=np.float64)
        key = (_fingerprint(arr), int(max_lag), arr.size)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        analysis = analyze_acf(arr, max_lag=max_lag)
        with self._lock:
            self.misses += 1
            self._entries[key] = analysis
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return analysis

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached analysis (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"ACFCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
