"""repro.client — one façade over every serving tier.

Programs used to choose a serving tier by *import path*: ``repro.core`` for
one series, ``repro.engine`` for a dashboard batch, ``repro.service`` for
live streams, ``repro.cluster`` for multi-process serving — each with its own
configuration spelling.  :func:`connect` replaces that with one argument::

    import repro

    client = repro.connect("local")             # in-process
    client = repro.connect("hub")               # explicit serving tier
    client = repro.connect("sharded", shards=4, shard_backend="process")
    client = repro.connect("tcp://10.0.0.5:7450")   # a repro.serve() server

    result = client.smooth(values, resolution=800)      # SmoothingResult
    batch = client.smooth_many(dashboard)               # BatchResult
    stream = client.stream(pane_size=4)                 # StreamHandle
    stream.ingest(timestamps, values)                   # list[Frame]
    client.tick()                                       # {stream_id: [Frame, ...]}
    client.checkpoint("state.npz")                      # durable snapshot
    client = repro.client.restore("state.npz")          # resume, bit-identical

The same program scales from one in-process series to a multi-process
sharded cluster to a networked server by changing the *backend* argument;
nothing else in the lifecycle changes.  A ``tcp://host:port`` backend
additionally offers **server-push subscriptions**
(:meth:`Client.subscribe` / :meth:`Client.pushes`): the server delivers
each refresh boundary's frames — or a chosen-resolution view — without
polling.

**Uniform result envelope.**  Every backend returns the same types:
``smooth`` a :class:`~repro.core.result.SmoothingResult`, ``smooth_many`` a
:class:`~repro.engine.BatchResult`, ingestion a ``list`` of
:class:`~repro.core.streaming.Frame`, ``tick`` a ``dict`` of stream id to
frame list, ``snapshot`` a ``SessionSnapshot``/``ResolutionSnapshot``.  The
frames themselves are **bit-identical across backends** for the same inputs
(sessions are partitioned, never split — the repo-wide equivalence law,
pinned in ``tests/client``).

**Configuration** flows through :class:`~repro.spec.AsapSpec`: ``connect``
takes a spec (or spec fields) as the session default; ``smooth`` /
``smooth_many`` / ``stream`` accept a spec or per-call field overrides.
"""

from __future__ import annotations

from . import persist
from .cluster import ShardedHub
from .engine.batch_engine import BatchEngine, BatchResult
from .errors import NetError, SpecError
from .service import StreamHub
from .spec import AsapSpec, resolve_spec

__all__ = ["connect", "restore", "Client", "StreamHandle", "BACKENDS"]

#: Serving tiers :func:`connect` can hand back, in escalation order; a
#: ``tcp://host:port`` URL (the network tier, :mod:`repro.net`) also works.
BACKENDS = ("local", "hub", "sharded")


def connect(
    backend: str = "local",
    spec: AsapSpec | None = None,
    *,
    max_sessions: int = 1024,
    max_panes_per_session: int = 4096,
    eviction_policy: str = "lru",
    idle_ticks_before_eviction: int | None = None,
    shards: int = 4,
    shard_backend: str = "inprocess",
    replicas: int = 64,
    workers: int | None = None,
    executor: str = "thread",
    **spec_overrides,
) -> "Client":
    """Open a :class:`Client` on one of the serving tiers.

    Parameters
    ----------
    backend:
        ``"local"`` — everything in-process (streams run on a private
        :class:`~repro.service.StreamHub`, so the full lifecycle including
        checkpointing works with zero serving setup); ``"hub"`` — the same
        engine behind the explicitly provisioned multi-tenant tier (the
        serving options below are meant to be set here); ``"sharded"`` — a
        :class:`~repro.cluster.ShardedHub` fanning streams across *shards*
        workers; ``"tcp://host:port"`` — a remote :func:`repro.serve`
        server (frames stay bit-identical; the serving budgets below are
        the server's to set, and :meth:`Client.subscribe` becomes
        available).
    spec:
        Session-default :class:`~repro.spec.AsapSpec`; extra keyword
        arguments that name spec fields (``resolution=400``, ``pane_size=4``)
        override it — or build one when *spec* is omitted.
    max_sessions / max_panes_per_session / eviction_policy /
    idle_ticks_before_eviction:
        Serving-tier budgets, exactly as :class:`~repro.service.StreamHub`
        takes them (per shard on the sharded backend).
    shards / shard_backend / replicas:
        Sharded backend only: worker count, ``"inprocess"`` or ``"process"``
        workers, and virtual nodes per shard on the hash ring.
    workers / executor:
        Batch-engine fan-out for :meth:`Client.smooth_many`.
    """
    if backend.startswith("tcp://"):
        from .net.remote import RemoteBackend, parse_tcp_url

        host, port = parse_tcp_url(backend)
        resolved = resolve_spec(spec, **spec_overrides)
        hub = RemoteBackend(host, port, spec=resolved)
        return Client("tcp", resolved, hub, workers=workers, executor=executor)
    if backend not in BACKENDS:
        raise SpecError(
            f"backend must be one of {', '.join(BACKENDS)} or a tcp://host:port "
            f"URL; got {backend!r}"
        )
    resolved = resolve_spec(spec, **spec_overrides)
    serving = dict(
        max_panes_per_session=max_panes_per_session,
        default_config=resolved,
        eviction_policy=eviction_policy,
        idle_ticks_before_eviction=idle_ticks_before_eviction,
    )
    if backend == "sharded":
        hub = ShardedHub(
            shards=shards,
            backend=shard_backend,
            replicas=replicas,
            max_sessions_per_shard=max_sessions,
            **serving,
        )
    else:
        hub = StreamHub(max_sessions=max_sessions, **serving)
    return Client(backend, resolved, hub, workers=workers, executor=executor)


def restore(source, *, shard_backend: str | None = None) -> "Client":
    """Reopen a :class:`Client` from a checkpoint (``bytes`` or a path).

    The payload's kind picks the backend: ``"streamhub"`` payloads come back
    as a ``"hub"`` client, ``"sharded-hub"`` payloads as a ``"sharded"``
    client (*shard_backend* overrides the checkpointed worker backend).  The
    restored client's streams emit bit-identical subsequent frames to an
    uninterrupted client's — the :mod:`repro.persist` guarantee surfaced at
    the façade.
    """
    kwargs = {} if shard_backend is None else {"backend": shard_backend}
    hub = persist.restore(source, **kwargs)
    backend = "sharded" if isinstance(hub, ShardedHub) else "hub"
    return Client(backend, hub.default_config or AsapSpec(), hub)


class Client:
    """A connected session against one serving tier; see :func:`connect`."""

    def __init__(
        self,
        backend: str,
        spec: AsapSpec,
        hub,
        workers: int | None = None,
        executor: str = "thread",
    ) -> None:
        self.backend = backend
        self.spec = spec
        self._hub = hub
        self._workers = workers
        self._executor = executor
        self._engines: dict[AsapSpec, BatchEngine] = {}
        # Frames another stream's handle-level tick() surfaced but did not
        # own; they belong to the next tick()/close of their own stream.
        self._pending_frames: dict[str, list] = {}

    #: Engines (each holding an ACF cache) kept per distinct spec; least
    #: recently used beyond this are dropped, so per-call override sweeps
    #: (e.g. arbitrary client resolutions) cannot grow memory unboundedly.
    MAX_CACHED_ENGINES = 8

    # -- configuration ----------------------------------------------------------

    def _resolved(self, spec: AsapSpec | None, overrides: dict, hint: str = "") -> AsapSpec:
        return resolve_spec(self.spec if spec is None else spec, hint=hint, **overrides)

    def _engine_for(self, spec: AsapSpec) -> BatchEngine:
        engine = self._engines.pop(spec, None)
        if engine is None:
            engine = BatchEngine(spec=spec, workers=self._workers, executor=self._executor)
            while len(self._engines) >= self.MAX_CACHED_ENGINES:
                self._engines.pop(next(iter(self._engines)))
        self._engines[spec] = engine  # (re)insert at the LRU tail
        return engine

    # -- one-shot smoothing -----------------------------------------------------

    def smooth(self, data, spec: AsapSpec | None = None, **overrides):
        """Smooth one series; returns a :class:`~repro.core.result.SmoothingResult`.

        Runs at the coordinator on every backend — a single search is always
        cheapest in-process; the serving tiers exist for the *streaming* and
        *many-series* workloads.
        """
        from .core.batch import smooth

        return smooth(data, spec=self._resolved(spec, overrides))

    def smooth_many(self, batch, spec: AsapSpec | None = None, **overrides) -> BatchResult:
        """Smooth a whole batch; returns a :class:`~repro.engine.BatchResult`.

        Engines are kept per spec, so repeated refreshes with the same
        configuration share the ACF cache exactly as a hand-held
        :class:`~repro.engine.BatchEngine` would.
        """
        return self._engine_for(self._resolved(spec, overrides)).smooth_many(batch)

    # -- streaming lifecycle ----------------------------------------------------

    def stream(
        self,
        spec: AsapSpec | None = None,
        stream_id: str | None = None,
        history: tuple | None = None,
        **overrides,
    ) -> "StreamHandle":
        """Open one streaming session; returns a :class:`StreamHandle`.

        *history* is an optional ``(timestamps, values)`` archive bulk-folded
        into the fresh session via :meth:`backfill` before the handle is
        returned — the stream starts exactly where point-by-point replay
        would have left it, at batch-ingest speed.
        """
        resolved = self._resolved(spec, overrides, hint="to name the stream, pass stream_id=...")
        sid = self._hub.create_stream(stream_id, config=resolved, history=history)
        return StreamHandle(self, sid, resolved)

    def ingest(self, stream_id: str, timestamps, values) -> list:
        """Fold arrivals into one stream; returns the inline frames."""
        return list(self._hub.ingest(stream_id, timestamps, values))

    def backfill(self, stream_id: str, timestamps, values):
        """Replay an archive into one stream through the bulk lane; returns a
        :class:`~repro.core.streaming.BackfillResult`.

        Every frame the stream emits afterwards is bit-identical to having
        streamed the archive point by point (the repo-wide equivalence law);
        only the interior per-frame work is skipped.
        """
        return self._hub.backfill(stream_id, timestamps, values)

    def tick(self) -> dict:
        """Run every deferred refresh; frames keyed by stream id.

        Frames a handle-level :meth:`StreamHandle.tick` produced for *other*
        streams surface here first (they are older than anything this tick
        emits) — no frame is ever dropped between the two tick spellings,
        and a raising backend tick (e.g. ``ShardDownError``) leaves the
        stash intact for the retry after recovery.
        """
        emitted = self._hub.tick()  # may raise; the stash must survive that
        frames: dict[str, list] = self._pending_frames
        self._pending_frames = {}
        for stream_id, new in emitted.items():
            frames.setdefault(stream_id, []).extend(new)
        return frames

    def snapshot(
        self, stream_id: str, resolution: int | None = None, include_partial: bool = False
    ):
        """Point-in-time view of one stream (never triggers a refresh)."""
        return self._hub.snapshot(
            stream_id, resolution=resolution, include_partial=include_partial
        )

    def close_stream(self, stream_id: str, flush: bool = True) -> list:
        """Remove one stream; with *flush*, returns its final frame(s).

        Frames stashed for this stream by another handle's tick are
        delivered first when flushing, discarded otherwise — mirroring how
        the cluster tier treats its coordinator-stashed frames on close.  A
        raising close (the stream was already evicted, say) leaves the
        stash untouched rather than silently destroying it.
        """
        closed = list(self._hub.close(stream_id, flush=flush))  # may raise
        pending = self._pending_frames.pop(stream_id, [])
        return pending + closed if flush else closed

    # -- server push (tcp backend) ----------------------------------------------

    def _push_surface(self, what: str):
        method = getattr(self._hub, what, None)
        if method is None:
            raise NetError(
                f"{what} requires a tcp:// backend (server-push subscriptions "
                f"live on the network tier); this client is {self.backend!r}"
            )
        return method

    def subscribe(
        self, stream_id: str, resolution: int | None = None, include_partial: bool = False
    ) -> int:
        """Ask the server to push *stream_id*'s refresh boundaries; returns
        the subscription id.  With *resolution*, pushes carry the freshly
        served multi-resolution view instead of raw frames.  ``tcp://``
        backends only — the in-process tiers return frames from
        ``ingest``/``tick`` directly."""
        return self._push_surface("subscribe")(
            stream_id, resolution=resolution, include_partial=include_partial
        )

    def unsubscribe(self, subscription: int) -> bool:
        return self._push_surface("unsubscribe")(subscription)

    def pushes(self, timeout: float = 0.0) -> list:
        """Drain server-push deliveries (:class:`repro.net.PushEvent`);
        see :meth:`repro.net.RemoteBackend.pushes`."""
        return self._push_surface("pushes")(timeout=timeout)

    def stream_ids(self) -> list[str]:
        return self._hub.stream_ids()

    def __len__(self) -> int:
        return len(self._hub)

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._hub

    @property
    def stats(self):
        """Aggregate serving stats (:class:`~repro.service.HubStats`)."""
        return self._hub.stats

    @property
    def hub(self):
        """The underlying serving object, for tier-specific operations
        (shard membership on ``"sharded"``, session export on ``"hub"``)."""
        return self._hub

    # -- durability -------------------------------------------------------------

    def checkpoint(self, path=None):
        """Snapshot the serving state durably; ``bytes``, or the path written."""
        return persist.checkpoint(self._hub, path)

    restore = staticmethod(restore)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (stops sharded workers; in-process
        backends have nothing to stop).  Streams are not flushed."""
        shutdown = getattr(self._hub, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Client(backend={self.backend!r}, streams={len(self._hub)}, spec={self.spec!r})"


class StreamHandle:
    """One streaming session opened through :meth:`Client.stream`.

    The handle pairs a stream id with its client, so single-stream programs
    never touch ids; multi-stream programs can keep using
    ``client.ingest(sid, ...)`` / ``client.tick()`` directly.
    """

    def __init__(self, client: Client, stream_id: str, spec: AsapSpec) -> None:
        self.client = client
        self.stream_id = stream_id
        self.spec = spec
        self._closed = False

    def ingest(self, timestamps, values) -> list:
        """Fold a batch of arrivals in; returns inline frames."""
        return self.client.ingest(self.stream_id, timestamps, values)

    def ingest_point(self, timestamp: float, value: float) -> list:
        return self.client.ingest(self.stream_id, [timestamp], [value])

    def backfill(self, timestamps, values):
        """Bulk-replay an archive into this stream; see :meth:`Client.backfill`."""
        return self.client.backfill(self.stream_id, timestamps, values)

    def tick(self) -> list:
        """Run deferred refreshes and return *this* stream's frames.

        Ticks the whole backend (refreshes are coalesced across streams by
        design) and returns this stream's frames; frames other streams
        emitted on the same tick are stashed on the client and surface at
        *their* next tick/close — never dropped.  When driving several
        streams, call :meth:`Client.tick` once and split its dict instead.
        """
        emitted = self.client.tick()
        mine = emitted.pop(self.stream_id, [])
        for stream_id, frames in emitted.items():
            self.client._pending_frames.setdefault(stream_id, []).extend(frames)
        return mine

    def snapshot(self, resolution: int | None = None, include_partial: bool = False):
        return self.client.snapshot(
            self.stream_id, resolution=resolution, include_partial=include_partial
        )

    def subscribe(self, resolution: int | None = None, include_partial: bool = False) -> int:
        """Server-push subscription to this stream (``tcp://`` backends);
        see :meth:`Client.subscribe`."""
        return self.client.subscribe(
            self.stream_id, resolution=resolution, include_partial=include_partial
        )

    def close(self, flush: bool = True) -> list:
        """End the session; with *flush*, returns the final frame(s)."""
        if self._closed:
            return []
        self._closed = True
        return self.client.close_stream(self.stream_id, flush=flush)

    def __enter__(self) -> "StreamHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(flush=False)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"StreamHandle({self.stream_id!r}, backend={self.client.backend!r}, {state})"
