"""repro — a reproduction of ASAP: Prioritizing Attention via Time Series
Smoothing (Rong & Bailis, VLDB 2017).

ASAP automatically smooths a time series for visualization: it picks the
simple-moving-average window that minimizes roughness (the standard deviation
of first differences) while preserving kurtosis (so large-scale deviations
stay visible), and does so fast via autocorrelation pruning, pixel-aware
preaggregation, and on-demand streaming refresh.

Quickstart::

    from repro import smooth
    from repro.timeseries import load

    taxi = load("taxi")
    result = smooth(taxi.series, resolution=800)
    print(result.summary())

Packages:

* :mod:`repro.core` — the ASAP operator (metrics, search, streaming);
* :mod:`repro.engine` — the multi-series batch engine (``smooth_many``);
* :mod:`repro.pyramid` — the multi-resolution rollup tier (``Pyramid``);
* :mod:`repro.service` — the multi-tenant streaming service (``StreamHub``);
* :mod:`repro.cluster` — the sharded serving tier (``ShardedHub``: consistent
  hashing, process shards, live rebalancing, crash recovery);
* :mod:`repro.persist` — durable checkpoint/restore of serving state
  (bit-identical resumption, no pickle);
* :mod:`repro.timeseries` — series container, statistics, dataset
  reconstructions;
* :mod:`repro.spectral` — FFT, moving-average kernels, alternative filters;
* :mod:`repro.stream` — panes, windows, incremental aggregates;
* :mod:`repro.vis` — rasterization, pixel metrics, M4/PAA/simplification;
* :mod:`repro.perception` — the simulated-observer user-study harness;
* :mod:`repro.experiments` — regenerators for every table and figure.
"""

from .core import (
    ASAP,
    DEFAULT_RESOLUTION,
    Frame,
    SearchResult,
    SmoothingResult,
    StreamingASAP,
    find_window,
    smooth,
)
from .cluster import ShardedHub
from .engine import BatchEngine, BatchResult, smooth_many
from .persist import checkpoint, restore
from .pyramid import Pyramid, PyramidView, ViewSpec
from .service import StreamConfig, StreamHub
from .timeseries import TimeSeries

__version__ = "1.4.0"

__all__ = [
    "ASAP",
    "BatchEngine",
    "BatchResult",
    "DEFAULT_RESOLUTION",
    "Frame",
    "Pyramid",
    "PyramidView",
    "SearchResult",
    "ShardedHub",
    "SmoothingResult",
    "StreamConfig",
    "StreamHub",
    "StreamingASAP",
    "TimeSeries",
    "ViewSpec",
    "checkpoint",
    "find_window",
    "restore",
    "smooth",
    "smooth_many",
    "__version__",
]
