"""repro — a reproduction of ASAP: Prioritizing Attention via Time Series
Smoothing (Rong & Bailis, VLDB 2017).

ASAP automatically smooths a time series for visualization: it picks the
simple-moving-average window that minimizes roughness (the standard deviation
of first differences) while preserving kurtosis (so large-scale deviations
stay visible), and does so fast via autocorrelation pruning, pixel-aware
preaggregation, and on-demand streaming refresh.

One spec, one client.  Every tier is configured by a single validated,
JSON-round-trippable object (:class:`~repro.spec.AsapSpec`) and served
through a single façade (:func:`~repro.client.connect`), so the same program
scales from one in-process series to a multi-process sharded cluster to a
networked server by changing one argument::

    import repro

    client = repro.connect("local")        # or "hub", "sharded", "tcp://..."
    result = client.smooth(values, resolution=800)
    print(result.summary())

    stream = client.stream(pane_size=4, refresh_interval=25)
    stream.ingest(timestamps, values)
    frames = stream.tick()
    client.checkpoint("state.npz")         # durable; restores bit-identically

The direct entry points (``smooth``, ``smooth_many``, ``StreamHub``,
``ShardedHub``, ...) remain first-class — they are thin shims over the same
spec-driven path and produce bit-identical results.

Packages:

* :mod:`repro.spec` — :class:`AsapSpec`, the one configuration object;
* :mod:`repro.client` — :func:`connect` and the tier façade;
* :mod:`repro.errors` — the consolidated exception surface;
* :mod:`repro.core` — the ASAP operator (metrics, search, streaming);
* :mod:`repro.engine` — the multi-series batch engine (``smooth_many``);
* :mod:`repro.pyramid` — the multi-resolution rollup tier (``Pyramid``);
* :mod:`repro.service` — the multi-tenant streaming service (``StreamHub``);
* :mod:`repro.cluster` — the sharded serving tier (``ShardedHub``: consistent
  hashing, process shards, live rebalancing, crash recovery);
* :mod:`repro.persist` — durable checkpoint/restore of serving state
  (bit-identical resumption, no pickle);
* :mod:`repro.net` — the network serving tier (:func:`serve` /
  :class:`AsapServer`, ``connect("tcp://host:port")``, server-push frame
  subscriptions over a pickle-free schema-stamped wire protocol);
* :mod:`repro.quality` — data-quality normalization (gap/NaN policies,
  watermarked reordering, per-window completeness);
* :mod:`repro.timeseries` — series container, statistics, dataset
  reconstructions;
* :mod:`repro.spectral` — FFT, moving-average kernels, alternative filters;
* :mod:`repro.stream` — panes, windows, incremental aggregates;
* :mod:`repro.vis` — rasterization, pixel metrics, M4/PAA/simplification;
* :mod:`repro.perception` — the simulated-observer user-study harness;
* :mod:`repro.experiments` — regenerators for every table and figure.
"""

from .core import (
    ASAP,
    DEFAULT_RESOLUTION,
    BackfillResult,
    Frame,
    SearchResult,
    SmoothingResult,
    StreamingASAP,
    find_window,
    smooth,
)
from .client import Client, StreamHandle, connect
from .cluster import ShardedHub
from .engine import BatchEngine, BatchResult, smooth_many
from .errors import DataQualityError, NetError, SpecError
from .net import AsapServer, PushEvent, RemoteBackend, serve
from .persist import checkpoint, restore
from .pyramid import Pyramid, PyramidView, ViewSpec
from .quality import FrameQuality, normalize_series
from .service import StreamConfig, StreamHub
from .spec import AsapSpec
from .timeseries import TimeSeries

__version__ = "1.9.0"

__all__ = [
    "ASAP",
    "AsapServer",
    "AsapSpec",
    "BackfillResult",
    "BatchEngine",
    "BatchResult",
    "Client",
    "DEFAULT_RESOLUTION",
    "DataQualityError",
    "Frame",
    "FrameQuality",
    "NetError",
    "PushEvent",
    "RemoteBackend",
    "Pyramid",
    "PyramidView",
    "SearchResult",
    "ShardedHub",
    "SmoothingResult",
    "SpecError",
    "StreamConfig",
    "StreamHandle",
    "StreamHub",
    "StreamingASAP",
    "TimeSeries",
    "ViewSpec",
    "checkpoint",
    "connect",
    "find_window",
    "normalize_series",
    "restore",
    "serve",
    "smooth",
    "smooth_many",
    "__version__",
]
