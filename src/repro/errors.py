"""repro.errors — the one import for every failure the library raises.

Each tier historically defined its own exception types next to the code that
raised them (service errors in ``repro.service.hub``, cluster errors in
``repro.cluster.shard``, codec errors in ``repro.persist.codec``).  Those
spellings all still work — the defining modules re-export from here — but the
canonical home is this module, which depends on nothing, so any layer
(including :mod:`repro.spec`, which every tier consumes) can raise and catch
them without import cycles.

Hierarchy::

    ValueError
      ├── SpecError            — a configuration field failed validation
      └── DataQualityError     — the data itself broke a quality contract
    RuntimeError
      ├── HubError             — StreamHub serving failures
      │     ├── HubAtCapacityError
      │     └── UnknownStreamError (also a KeyError)
      ├── ClusterError         — sharded-tier failures
      │     ├── ShardDownError
      │     ├── ShardProtocolError
      │     └── RemoteShardError
      ├── NetError             — network serving tier failures
      │     ├── WireProtocolError
      │     └── ConnectionClosedError
      ├── CheckpointError      — persist-layer payload failures
      └── IncrementalDriftError — incremental statistics broke the 1e-9 law

``SpecError`` subclasses :class:`ValueError` deliberately: the core pipeline
raised bare ``ValueError`` for bad resolution/strategy/kernel for four
releases, and ``except ValueError`` call sites keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "SpecError",
    "DataQualityError",
    "HubError",
    "HubAtCapacityError",
    "UnknownStreamError",
    "ClusterError",
    "ShardDownError",
    "ShardProtocolError",
    "RemoteShardError",
    "NetError",
    "WireProtocolError",
    "ConnectionClosedError",
    "CheckpointError",
    "IncrementalDriftError",
]


class SpecError(ValueError):
    """A configuration field failed validation.

    Raised by :class:`repro.spec.AsapSpec` (and therefore by every entry
    point that builds its configuration through the spec: ``smooth``,
    ``find_window``, ``ASAP``, ``BatchEngine``, ``StreamConfig``,
    ``connect``).  The message always names the offending field.
    """


class DataQualityError(ValueError):
    """The data itself broke a quality contract (not the configuration).

    Raised by :mod:`repro.quality` when a cadence cannot be inferred, a gap
    appears under ``gap_policy="reject"``, or a fill would exceed the
    per-gap synthesis bound.  A ``ValueError`` because the offending input
    is an argument, even when it arrives point by point.
    """


class HubError(RuntimeError):
    """Base class for StreamHub failures."""


class HubAtCapacityError(HubError):
    """The hub is at ``max_sessions`` and its policy rejects new sessions."""


class UnknownStreamError(HubError, KeyError):
    """No session exists under the requested stream id."""


class ClusterError(RuntimeError):
    """Base class for cluster-tier failures."""


class ShardDownError(ClusterError):
    """A shard worker is not answering (crashed, killed, or shut down).

    ``shard_ids`` names the dead shard(s); ``partial_frames`` carries frames
    already collected from healthy shards when a fan-out operation failed
    part-way, so a recovering caller loses as little as possible.
    """

    def __init__(self, shard_ids, partial_frames=None) -> None:
        if isinstance(shard_ids, str):
            shard_ids = (shard_ids,)
        self.shard_ids = tuple(shard_ids)
        self.partial_frames = dict(partial_frames or {})
        super().__init__(f"shard(s) down: {', '.join(self.shard_ids)}")


class ShardProtocolError(ClusterError):
    """A shard was sent a command it does not understand."""


class RemoteShardError(ClusterError):
    """A shard worker failed in a way its hub did not anticipate.

    Wraps non-hub exceptions (bugs, not API errors) with the worker-side
    traceback, which would otherwise be lost at the pipe boundary.
    """


class NetError(RuntimeError):
    """Base class for network-serving-tier failures (:mod:`repro.net`)."""


class WireProtocolError(NetError):
    """A wire message could not be framed or understood.

    Raised for truncated, oversized, or garbage frames, for payloads that are
    not valid codec envelopes, and for handshake schema mismatches (the
    message mirrors the persist codec's schema error, naming both versions —
    protocol and checkpoint versioning are the same monotone integer).
    """


class ConnectionClosedError(NetError):
    """The peer went away mid-conversation (clean EOF or reset)."""


class CheckpointError(RuntimeError):
    """A checkpoint payload could not be produced or understood."""


class IncrementalDriftError(RuntimeError):
    """Incremental statistics drifted beyond the 1e-9 agreement discipline."""
