"""AsapSpec — one validated, wire-serializable configuration for every tier.

The ASAP paper presents one operator with a handful of knobs: target
resolution, window ceiling, search strategy, pixel-aware preaggregation, and
the streaming refresh cadence.  Before this module, each serving tier spelled
those knobs its own way — ``smooth()`` kwargs, the ``ASAP`` dataclass,
``StreamingASAP.__init__``, the service tier's ``StreamConfig``, the cluster
tier's forwarded config — duplicated by hand and drifting apart.

:class:`AsapSpec` is the single source of truth:

* **frozen and validated** — construction runs :meth:`validate`, which raises
  :class:`~repro.errors.SpecError` (a ``ValueError`` subclass) naming the
  offending field;
* **flat-constructible but grouped** — all knobs are top-level constructor
  arguments; :data:`~AsapSpec.OPERATOR_FIELDS`,
  :data:`~AsapSpec.STREAMING_FIELDS`, and :data:`~AsapSpec.SERVING_FIELDS`
  name which tier reads which;
* **wire-serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  exactly through JSON and through the :mod:`repro.persist` codec, so one
  spec travels unchanged from a client call through a checkpoint file or the
  cluster's IPC boundary (:data:`SCHEMA_VERSION` is the persist codec's —
  any field change that old readers would misinterpret bumps both);
* **composable** — :meth:`merge` returns a new validated spec with overrides
  applied, equal to constructing one from scratch.

Every tier consumes it: :func:`repro.core.batch.smooth` builds one from its
kwargs (or accepts one via ``spec=``), ``StreamConfig`` *is* this class,
:meth:`build_operator` is the one place a ``StreamingASAP`` is configured,
and :func:`repro.client.connect` carries one as the session default.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, fields

from .errors import SpecError
from .persist.codec import SCHEMA_VERSION
from .quality.normalize import GAP_POLICIES

__all__ = ["AsapSpec", "DEFAULT_RESOLUTION", "SpecError", "SCHEMA_VERSION", "default_kernel"]

#: The paper's user-study rendering width; a sensible dashboard default.
DEFAULT_RESOLUTION = 800

#: Valid candidate-evaluation kernels (see :class:`repro.core.smoothing.EvaluationCache`).
#: ``"numba"`` requires the optional numba dependency and falls back to
#: ``"grid"`` when it is missing.
_KERNELS = ("grid", "scalar", "numba")


def default_kernel() -> str:
    """The default candidate-evaluation kernel, overridable via ``ASAP_KERNEL``.

    Read at spec/cache construction time, so ``ASAP_KERNEL=numba pytest ...``
    reruns every default-configured code path through the compiled backend
    (CI's numba leg does exactly this).  Values are validated wherever they
    are consumed; an unknown name raises :class:`SpecError` naming the field.
    """
    return os.environ.get("ASAP_KERNEL", "").strip() or "grid"


def _strategy_names() -> tuple[str, ...]:
    """The registered strategy names — the one registry, read lazily.

    Imported at call time so the spec validates against exactly what
    :func:`repro.core.search.run_strategy` will accept (a strategy added to
    the registry is immediately constructible here) without a module-level
    spec <-> core cycle.
    """
    from .core.search import STRATEGIES

    return tuple(STRATEGIES)


def _require_int(name: str, value, minimum: int | None = None) -> int:
    """Validate one integer field; bools are rejected (they are ints in name only)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an int, got {value!r}")
    if minimum is not None and value < minimum:
        raise SpecError(f"{name} must be >= {minimum}, got {value}")
    return value


def _require_bool(name: str, value) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{name} must be a bool, got {value!r}")
    return value


@dataclass(frozen=True)
class AsapSpec:
    """One frozen, validated configuration object for the whole stack.

    Operator knobs (read by ``smooth``/``find_window``/``ASAP``/``BatchEngine``):

    resolution:
        Target display width in pixels; drives preaggregation, the streaming
        window capacity, and the final point budget.
    max_window:
        Optional cap on candidate windows (aggregated units); ``None`` means
        the paper's n/10 default.
    strategy:
        ``"asap"`` or one of the baselines
        (``"exhaustive"``/``"grid2"``/``"grid10"``/``"binary"``).
    use_preaggregation:
        Disable to search the raw series (batch pipeline only; the streaming
        tier aggregates through ``pane_size`` instead).
    kernel:
        Candidate-evaluation kernel: ``"grid"`` (vectorized numpy, the
        default), ``"scalar"`` (the reference loop, kept for benchmarking),
        or ``"numba"`` (compiled; falls back to ``"grid"`` when numba is not
        installed).  The default honours the ``ASAP_KERNEL`` environment
        variable at construction time.

    Streaming knobs (read by ``StreamingASAP`` via :meth:`build_operator`):

    pane_size:
        Raw arrivals per aggregated point; 1 disables pixel-aware
        aggregation.
    refresh_interval:
        Aggregated points collected between searches (on-demand refresh).
    seed_from_previous:
        Seed each search from the previous frame's feasible window
        (``CHECKLASTWINDOW``).
    incremental:
        Maintain window statistics incrementally, O(new panes) per refresh.
    recompute_every:
        Exact-rebuild cadence bounding incremental drift.
    verify_incremental:
        Escape hatch: recompute exactly on every refresh and raise on
        disagreement beyond 1e-9.
    warm_start:
        Seed each refresh's search with the previous refresh's probe trace,
        evaluated by one stacked kernel call, so the replayed search runs on
        cache hits (bit-identical frames; see
        :class:`~repro.core.streaming.StreamingASAP`).
    backfill:
        Archive-replay lane for ``StreamingASAP.backfill`` and the hub
        tiers' ``history=``/``backfill`` entry points: ``"auto"`` (pick the
        vectorized fast lane whenever eliding interior searches is
        frame-exact, otherwise replay every search without rendering),
        ``"replay"`` (force per-boundary searches), or ``"stream"`` (plain
        batched streaming, the debug baseline).  All lanes leave subsequent
        streamed frames bit-identical to point-by-point ingestion.

    Serving knobs (read by the hub tiers):

    keep_pane_sketches:
        Retain per-pane raw-moment state the serving path never reads.
    pyramid:
        Attach a rollup pyramid so one session serves any pixel width.
    max_connections:
        Network serving tier (:mod:`repro.net`) only: concurrent client
        connections one :class:`~repro.net.AsapServer` accepts; connection
        attempts beyond it are refused with a wire-level error.
    subscribe_queue:
        Network serving tier only: per-connection push-outbox depth.  A
        subscriber that stops reading has its *oldest* pending pushes dropped
        (counted as ``push_dropped``) rather than stalling the server or
        growing memory without bound.

    Quality knobs (read by :mod:`repro.quality` at every tier; all default
    *off*, making the quality stage a bit-identical no-op on clean input):

    normalize:
        Enable NaN filtering and gap handling: batch entry points normalize
        through :func:`repro.quality.normalize_series`, streaming operators
        through a stateful :class:`~repro.quality.StreamNormalizer`, and
        frames/snapshots report per-window ``completeness``.
    cadence:
        Declared sampling interval for gap detection; ``None`` infers it
        (median of early spacings).
    gap_policy:
        What to do with a detected gap: ``"interpolate"`` (linear fill),
        ``"ffill"`` (repeat last value), ``"split"`` (counted discontinuity,
        no fill), or ``"reject"`` (raise
        :class:`~repro.errors.DataQualityError`).
    watermark:
        Reordering-buffer depth in points for the streaming path; late
        points within the watermark land in their correct pane, points
        beyond it are counted-and-dropped.  0 disables reordering.

    Defaults are the *serving* defaults (the hub tiers' historical
    ``StreamConfig``); the standalone ``StreamingASAP`` constructor keeps its
    historical research defaults and routes them through an explicit spec.
    """

    resolution: int = DEFAULT_RESOLUTION
    max_window: int | None = None
    strategy: str = "asap"
    use_preaggregation: bool = True
    kernel: str = dataclasses.field(default_factory=default_kernel)
    pane_size: int = 1
    refresh_interval: int = 10
    seed_from_previous: bool = True
    incremental: bool = True
    recompute_every: int = 64
    verify_incremental: bool = False
    warm_start: bool = True
    keep_pane_sketches: bool = False
    pyramid: bool = True
    max_connections: int = 64
    subscribe_queue: int = 256
    normalize: bool = False
    cadence: float | None = None
    gap_policy: str = "interpolate"
    watermark: int = 0
    backfill: str = "auto"

    #: Wire-schema version; the persist codec's, because specs travel inside
    #: its payloads (session configs, cluster create commands).
    SCHEMA_VERSION = SCHEMA_VERSION

    #: Which tier reads which knobs (the spec itself stays flat).
    OPERATOR_FIELDS = ("resolution", "max_window", "strategy", "use_preaggregation", "kernel")
    STREAMING_FIELDS = (
        "pane_size",
        "refresh_interval",
        "seed_from_previous",
        "incremental",
        "recompute_every",
        "verify_incremental",
        "warm_start",
        "backfill",
    )
    SERVING_FIELDS = ("keep_pane_sketches", "pyramid", "max_connections", "subscribe_queue")
    QUALITY_FIELDS = ("normalize", "cadence", "gap_policy", "watermark")

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -------------------------------------------------------------

    def validate(self) -> "AsapSpec":
        """Check every field; raises :class:`SpecError` naming the first offender."""
        _require_int("resolution", self.resolution, minimum=1)
        if self.max_window is not None:
            _require_int("max_window", self.max_window, minimum=2)
        strategies = _strategy_names()
        if self.strategy not in strategies:
            raise SpecError(
                f"strategy must be one of {', '.join(strategies)}; got {self.strategy!r}"
            )
        if self.kernel not in _KERNELS:
            raise SpecError(f"kernel must be one of {', '.join(_KERNELS)}; got {self.kernel!r}")
        _require_bool("use_preaggregation", self.use_preaggregation)
        _require_int("pane_size", self.pane_size, minimum=1)
        _require_int("refresh_interval", self.refresh_interval, minimum=1)
        _require_int("recompute_every", self.recompute_every, minimum=1)
        _require_bool("seed_from_previous", self.seed_from_previous)
        _require_bool("incremental", self.incremental)
        _require_bool("verify_incremental", self.verify_incremental)
        _require_bool("warm_start", self.warm_start)
        _require_bool("keep_pane_sketches", self.keep_pane_sketches)
        _require_bool("pyramid", self.pyramid)
        _require_int("max_connections", self.max_connections, minimum=1)
        _require_int("subscribe_queue", self.subscribe_queue, minimum=1)
        _require_bool("normalize", self.normalize)
        if self.cadence is not None:
            if (
                isinstance(self.cadence, bool)
                or not isinstance(self.cadence, (int, float))
                or not self.cadence > 0
                or self.cadence != self.cadence  # NaN
                or self.cadence == float("inf")
            ):
                raise SpecError(
                    f"cadence must be a positive finite number or None, got {self.cadence!r}"
                )
        if self.gap_policy not in GAP_POLICIES:
            raise SpecError(
                f"gap_policy must be one of {', '.join(GAP_POLICIES)}; "
                f"got {self.gap_policy!r}"
            )
        _require_int("watermark", self.watermark, minimum=0)
        if self.backfill not in ("auto", "replay", "stream"):
            raise SpecError(
                f"backfill must be one of auto, replay, stream; got {self.backfill!r}"
            )
        return self

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain scalars only — JSON- and persist-codec-safe, field order stable."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data) -> "AsapSpec":
        """Rebuild a spec from :meth:`to_dict` output (or any field mapping).

        Unknown keys are rejected by name — a spec that crossed a wire with a
        field this reader does not know is a schema mismatch, not a default.
        Missing keys take their defaults, so configs written by older
        releases (fewer fields) load unchanged.
        """
        if not isinstance(data, dict):
            raise SpecError(f"spec must be a mapping of fields, got {type(data).__name__}")
        cls._reject_unknown(data)
        return cls(**data)

    def to_json(self) -> str:
        """The spec as a JSON document (``from_json`` inverts it exactly)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AsapSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- composition ------------------------------------------------------------

    def merge(self, **overrides) -> "AsapSpec":
        """A new validated spec with *overrides* applied.

        Equal to constructing one from scratch with the merged fields;
        unknown override names raise :class:`SpecError` naming them.
        """
        if not overrides:
            return self
        self._reject_unknown(overrides)
        return dataclasses.replace(self, **overrides)

    @classmethod
    def _reject_unknown(cls, names) -> None:
        """Raise :class:`SpecError` naming any non-field entries in *names*."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(names) - known)
        if unknown:
            raise SpecError(
                f"unknown spec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )

    # -- builders ---------------------------------------------------------------

    def build_operator(self):
        """A :class:`~repro.core.streaming.StreamingASAP` configured by this spec.

        The one place streaming operators are configured: the service tier's
        sessions, the cluster tier's shards, and the client façade all build
        through here (``use_preaggregation`` and ``kernel`` do not apply to
        the streaming path, which aggregates through ``pane_size``).
        """
        from .core.streaming import StreamingASAP

        return StreamingASAP.from_spec(self)

    def smooth(self, data, *, cache=None, acf=None):
        """Smooth one series with this spec; see :func:`repro.core.batch.smooth`."""
        from .core.batch import smooth

        return smooth(data, cache=cache, acf=acf, spec=self)

    def find_window(self, data, *, cache=None, acf=None):
        """Search only; see :func:`repro.core.batch.find_window`."""
        from .core.batch import find_window

        return find_window(data, cache=cache, acf=acf, spec=self)


def require_spec(spec, hint: str = "") -> AsapSpec:
    """Assert *spec* is an :class:`AsapSpec`; the shared type guard.

    Keeps a mistaken argument (a stream id string, a plain field dict) from
    surfacing as a bare ``AttributeError`` deep inside ``merge`` — the error
    names the type and, via *hint*, the likely fix.
    """
    if not isinstance(spec, AsapSpec):
        suffix = f" ({hint})" if hint else ""
        raise SpecError(f"spec must be an AsapSpec, got {type(spec).__name__}{suffix}")
    return spec


def resolve_spec(spec: AsapSpec | None, hint: str = "", **overrides) -> AsapSpec:
    """The one kwargs -> spec funnel shared by every entry point (legacy
    functions, ``connect``, and the client's per-call overrides).

    *overrides* use ``None`` as "not provided": with no base *spec* they
    construct a fresh one (unknown names rejected by name, via
    :meth:`AsapSpec.from_dict`), otherwise they merge onto it — so
    ``smooth(x, strategy="grid2", spec=s)`` is ``s.merge(strategy="grid2")``.
    One asymmetry follows: an *explicit* ``max_window=None`` cannot clear a
    base spec's cap (it reads as "not provided"); lift a cap with
    ``spec.merge(max_window=None)`` instead.  *hint* rides on the type-guard
    error for call sites with a likely fix to suggest.
    """
    provided = {name: value for name, value in overrides.items() if value is not None}
    if spec is None:
        return AsapSpec.from_dict(provided)
    return require_spec(spec, hint).merge(**provided)


def spec_backed(*names: str):
    """Class decorator installing read/write properties delegating to ``.spec``.

    The back-compat shim for classes whose knobs predate the spec (``ASAP``,
    ``BatchEngine``): each named field reads from ``self.spec``, and
    assignment — historically a plain attribute write — re-merges the spec,
    so it keeps working and now validates.
    """

    def install(cls):
        for name in names:

            def getter(self, _name=name):
                return getattr(self.spec, _name)

            def setter(self, value, _name=name):
                self.spec = self.spec.merge(**{_name: value})

            doc = f"Spec field {name!r}; assignment re-merges the spec and validates."
            setattr(cls, name, property(getter, setter, doc=doc))
        return cls

    return install
