"""Rasterizing time series onto pixel grids.

ASAP co-designs its search with the target display: results land on a screen
with a fixed number of pixel columns (Section 4.4), and its quality
comparisons against M4/PAA/line simplification are *pixel-level* (Table 4).
This module renders a series into a boolean pixel matrix the way a line-chart
renderer would: x is quantized into ``width`` columns, y into ``height`` rows,
and the polyline connecting consecutive points is drawn with vertical span
filling so no column the line crosses is left empty.

The same raster feeds the simulated-observer model (the observer "sees" only
rendered pixels, like the paper's study participants).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rasterize", "column_extents", "pixel_columns"]


def _normalize(values: np.ndarray, lo: float | None, hi: float | None) -> np.ndarray:
    vmin = float(values.min()) if lo is None else lo
    vmax = float(values.max()) if hi is None else hi
    if vmax <= vmin:
        return np.full(values.shape, 0.5)
    return np.clip((values - vmin) / (vmax - vmin), 0.0, 1.0)


def pixel_columns(
    n: int,
    width: int,
    positions=None,
    x_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Map point indices ``0..n-1`` onto column indices ``0..width-1``.

    With *positions* (per-point x coordinates, e.g. original sample indices
    of a reduced series) the mapping respects the plot's true x axis; with
    *x_range* the axis limits are pinned so different series render into
    comparable column spaces.
    """
    if n < 1:
        raise ValueError(f"series must be non-empty, got length {n}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if positions is None:
        if n == 1:
            return np.zeros(1, dtype=np.int64)
        return np.minimum((np.arange(n) * width) // n, width - 1).astype(np.int64)
    pos = np.asarray(positions, dtype=np.float64)
    if pos.size != n:
        raise ValueError(f"positions length {pos.size} != series length {n}")
    if x_range is None:
        x_lo, x_hi = float(pos.min()), float(pos.max())
    else:
        x_lo, x_hi = x_range
    span = x_hi - x_lo
    if span <= 0:
        return np.zeros(n, dtype=np.int64)
    scaled = (pos - x_lo) / span * width
    return np.clip(scaled.astype(np.int64), 0, width - 1)


def column_extents(
    values,
    width: int,
    positions=None,
    x_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Per-column (min, max) of the values mapping to each pixel column.

    Returns a ``(width, 2)`` array; columns with no points inherit the
    linear interpolation between their neighbours, matching what a polyline
    renderer paints there.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D series")
    cols = pixel_columns(arr.size, width, positions=positions, x_range=x_range)
    # Group points by column with one stable sort + segmented reductions —
    # min/max are order-independent, so the values match the per-column
    # Python loop exactly while the work is three array passes.
    order = np.argsort(cols, kind="stable")
    sorted_vals = arr[order]
    boundaries = np.searchsorted(cols[order], np.arange(width + 1))
    populated = boundaries[1:] > boundaries[:-1]
    starts = boundaries[:-1][populated]
    extents = np.full((width, 2), np.nan)
    if starts.size:
        extents[populated, 0] = np.minimum.reduceat(sorted_vals, starts)
        extents[populated, 1] = np.maximum.reduceat(sorted_vals, starts)
    # Fill empty columns by interpolating between populated neighbours.
    populated = ~np.isnan(extents[:, 0])
    if not np.all(populated):
        idx = np.arange(width)
        for axis in (0, 1):
            extents[~populated, axis] = np.interp(
                idx[~populated], idx[populated], extents[populated, axis]
            )
    return extents


def rasterize(
    values,
    width: int,
    height: int,
    value_range: tuple[float, float] | None = None,
    positions=None,
    x_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Render a series as a ``(height, width)`` boolean pixel matrix.

    Row 0 is the *top* of the image (screen convention).  ``value_range``
    fixes the y-axis limits so two series can be rendered into comparable
    rasters; by default each raster is scaled to its own min/max, which is
    how a chart with auto-scaled axes behaves.  ``positions``/``x_range``
    pin the x axis the same way (see :func:`pixel_columns`).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D series")
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    extents = column_extents(arr, width, positions=positions, x_range=x_range)
    if value_range is None:
        # One shared scale for both extent channels — normalizing mins and
        # maxes independently would let a column's top land below its bottom.
        lo, hi = float(extents[:, 0].min()), float(extents[:, 1].max())
    else:
        lo, hi = value_range
    norm_lo = _normalize(extents[:, 0], lo, hi)
    norm_hi = _normalize(extents[:, 1], lo, hi)
    # y pixel rows: 0 at top; clamp into range.
    row_hi = np.clip(((1.0 - norm_lo) * (height - 1)).round().astype(int), 0, height - 1)
    row_lo = np.clip(((1.0 - norm_hi) * (height - 1)).round().astype(int), 0, height - 1)
    # Bridge each column to its predecessor the way a polyline stroke does,
    # so steep segments do not leave vertical gaps between columns.  The
    # bridge reads the *unbridged* neighbour spans, so the whole adjustment
    # is two shifted comparisons rather than a sequential scan.
    lo_px = row_lo.copy()
    hi_px = row_hi.copy()
    if width > 1:
        gap_up = row_lo[1:] > row_hi[:-1]
        gap_down = ~gap_up & (row_hi[1:] < row_lo[:-1])
        lo_px[1:] = np.where(gap_up, row_hi[:-1] + 1, lo_px[1:])
        hi_px[1:] = np.where(gap_down, row_lo[:-1] - 1, hi_px[1:])
    rows = np.arange(height)[:, np.newaxis]
    return (rows >= lo_px) & (rows <= hi_px)
