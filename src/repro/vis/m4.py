"""M4 visualization-oriented aggregation (Jugel et al., VLDB 2014).

M4 is the paper's closest related work and one of its user-study baselines:
it downsamples a series to at most four points per pixel column — the first,
last, minimum, and maximum of the points mapping to that column — which is
sufficient to reproduce a line chart's raster exactly at the target width.
Unlike ASAP it aims for a *visually indistinguishable* rendering rather than
a distorted, smoothed one (Section 6).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.series import TimeSeries
from .rasterize import pixel_columns

__all__ = ["m4_aggregate", "m4_series"]


def m4_aggregate(values, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Reduce to M4 tuples; returns (indices, values) in time order.

    For every pixel column, keep the first, lowest, highest, and last point
    (deduplicated, ordered by original index).  Output length is at most
    ``4 * width``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D series")
    cols = pixel_columns(arr.size, width)
    # Column membership is a sorted partition, so each column is one slice —
    # searchsorted gives the boundaries without scanning n points per column.
    boundaries = np.searchsorted(cols, np.arange(width + 1))
    keep_indices: list[int] = []
    for col in range(width):
        lo, hi = int(boundaries[col]), int(boundaries[col + 1])
        if lo == hi:
            continue
        segment = arr[lo:hi]
        chosen = {
            lo,
            lo + int(np.argmin(segment)),
            lo + int(np.argmax(segment)),
            hi - 1,
        }
        keep_indices.extend(sorted(chosen))
    index_array = np.asarray(keep_indices, dtype=np.int64)
    return index_array, arr[index_array]


def m4_series(series: TimeSeries, width: int) -> TimeSeries:
    """M4-reduce a :class:`TimeSeries`, keeping original timestamps."""
    indices, values = m4_aggregate(series.values, width)
    return TimeSeries(
        values, series.timestamps[indices], name=f"{series.name}:m4({width})"
    )
