"""M4 visualization-oriented aggregation (Jugel et al., VLDB 2014).

M4 is the paper's closest related work and one of its user-study baselines:
it downsamples a series to at most four points per pixel column — the first,
last, minimum, and maximum of the points mapping to that column — which is
sufficient to reproduce a line chart's raster exactly at the target width.
Unlike ASAP it aims for a *visually indistinguishable* rendering rather than
a distorted, smoothed one (Section 6).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.series import TimeSeries
from .rasterize import pixel_columns

__all__ = ["m4_aggregate", "m4_series"]


def m4_aggregate(values, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Reduce to M4 tuples; returns (indices, values) in time order.

    For every pixel column, keep the first, lowest, highest, and last point
    (deduplicated, ordered by original index).  Output length is at most
    ``4 * width``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D series")
    n = arr.size
    cols = pixel_columns(n, width)
    # Column membership is a sorted partition, so each column is one slice —
    # searchsorted gives the boundaries without scanning n points per column,
    # and the per-column argmin/argmax collapse to segmented reductions: a
    # point is its segment's argmin iff it equals the segment minimum, and
    # taking the smallest such index reproduces np.argmin's first-occurrence
    # tie-breaking exactly.
    boundaries = np.searchsorted(cols, np.arange(width + 1))
    counts = np.diff(boundaries)
    populated = counts > 0
    lo = boundaries[:-1][populated]
    hi = boundaries[1:][populated]
    if lo.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    segment_of = np.repeat(np.arange(lo.size), counts[populated])
    indices = np.arange(n, dtype=np.int64)
    seg_min = np.minimum.reduceat(arr, lo)
    seg_max = np.maximum.reduceat(arr, lo)
    argmin = np.minimum.reduceat(np.where(arr == seg_min[segment_of], indices, n), lo)
    argmax = np.minimum.reduceat(np.where(arr == seg_max[segment_of], indices, n), lo)
    # np.argmin/argmax return the first NaN's index when a segment contains
    # one; the equality matches above never fire against a NaN minimum, so
    # restore that convention explicitly.
    nan_mask = np.isnan(arr)
    if nan_mask.any():
        first_nan = np.minimum.reduceat(np.where(nan_mask, indices, n), lo)
        poisoned = first_nan < n
        argmin = np.where(poisoned, first_nan, argmin)
        argmax = np.where(poisoned, first_nan, argmax)
    # first / argmin / argmax / last per column, deduplicated in sorted order
    # (adjacent-duplicate removal suffices once each row is sorted).
    chosen = np.sort(np.stack([lo, argmin, argmax, hi - 1], axis=1), axis=1)
    keep = np.ones(chosen.shape, dtype=bool)
    keep[:, 1:] = chosen[:, 1:] != chosen[:, :-1]
    index_array = chosen[keep].astype(np.int64)
    return index_array, arr[index_array]


def m4_series(series: TimeSeries, width: int) -> TimeSeries:
    """M4-reduce a :class:`TimeSeries`, keeping original timestamps."""
    indices, values = m4_aggregate(series.values, width)
    return TimeSeries(
        values, series.timestamps[indices], name=f"{series.name}:m4({width})"
    )
