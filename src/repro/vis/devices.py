"""Target-device registry (Table 1).

Pixel-aware preaggregation keys its bucket size to the horizontal resolution
of the display the plot will land on.  Table 1 lists the devices the paper
uses to illustrate the search-space reduction on a 1M-point series; this
registry reproduces those rows and computes the reduction factor for any
series length.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "DEVICES", "device", "reduction_factor"]


@dataclass(frozen=True)
class Device:
    """A display target: name and pixel resolution (horizontal x vertical)."""

    name: str
    horizontal: int
    vertical: int

    @property
    def resolution(self) -> str:
        return f"{self.horizontal} x {self.vertical}"


#: The five devices of Table 1, in paper order.
DEVICES: tuple[Device, ...] = (
    Device("38mm Apple Watch", 272, 340),
    Device("Samsung Galaxy S7", 1440, 2560),
    Device('13" MacBook Pro', 2304, 1440),
    Device("Dell 34 Curved Monitor", 3440, 1440),
    Device('27" iMac Retina', 5120, 2880),
)

_BY_NAME = {d.name: d for d in DEVICES}


def device(name: str) -> Device:
    """Look up a Table 1 device by exact name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None


def reduction_factor(n_points: int, horizontal_resolution: int) -> int:
    """Search-space reduction from preaggregating *n_points* to a display.

    This is the point-to-pixel ratio ``floor(n / resolution)`` (at least 1):
    after preaggregation the search operates on ``resolution`` points instead
    of ``n``, so candidate window sizes shrink by the same factor.  Table 1
    reports this for ``n = 1_000_000``.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if horizontal_resolution < 1:
        raise ValueError(
            f"horizontal_resolution must be >= 1, got {horizontal_resolution}"
        )
    return max(n_points // horizontal_resolution, 1)
