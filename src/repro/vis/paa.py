"""Piecewise Aggregate Approximation (Keogh et al., KAIS 2001).

PAA reduces a series to *k* segments, each represented by its mean.  It was
designed for indexing/similarity search rather than visualization, but the
paper uses PAA100 and PAA800 as user-study baselines (Section 5.1): PAA with
few segments is effectively aggressive uniform smoothing, PAA with many
segments is close to the raw plot at study resolution.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.series import TimeSeries

__all__ = ["paa", "paa2d", "paa_series"]


def paa(values, segments: int) -> np.ndarray:
    """Mean of each of *segments* near-equal contiguous chunks.

    Segment boundaries follow the standard PAA convention
    ``bounds[j] = floor(j * n / k)`` so lengths differ by at most one point
    when ``k`` does not divide ``n``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D series")
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments >= arr.size:
        return arr.copy()
    bounds = (np.arange(segments + 1) * arr.size) // segments
    prefix = np.concatenate(([0.0], np.cumsum(arr)))
    sums = prefix[bounds[1:]] - prefix[bounds[:-1]]
    counts = (bounds[1:] - bounds[:-1]).astype(np.float64)
    return sums / counts


def paa2d(values, segments: int) -> np.ndarray:
    """PAA of every row of a ``(batch, n)`` array at one segment count.

    Row *i* equals ``paa(values[i], segments)`` bit for bit — the same
    prefix-sum/boundary formulation evaluated with a batched cumulative sum,
    following the repo's 2-D kernel convention
    (:func:`repro.spectral.convolution.sma2d`).  Rendering a whole dashboard
    of PAA baselines costs one array pass instead of a per-series loop.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] == 0:
        raise ValueError(f"expected a non-empty 2-D batch, got shape {arr.shape}")
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    batch, n = arr.shape
    if segments >= n:
        return arr.copy()
    bounds = (np.arange(segments + 1) * n) // segments
    prefix = np.zeros((batch, n + 1), dtype=np.float64)
    np.cumsum(arr, axis=1, out=prefix[:, 1:])
    sums = prefix[:, bounds[1:]] - prefix[:, bounds[:-1]]
    counts = (bounds[1:] - bounds[:-1]).astype(np.float64)
    return sums / counts


def paa_series(series: TimeSeries, segments: int) -> TimeSeries:
    """PAA-reduce a :class:`TimeSeries`; timestamps are segment midpoints."""
    reduced = paa(series.values, segments)
    if reduced.size == len(series):
        return series
    bounds = (np.arange(segments + 1) * len(series)) // segments
    mids = ((bounds[:-1] + bounds[1:] - 1) // 2).astype(np.int64)
    return TimeSeries(
        reduced, series.timestamps[mids], name=f"{series.name}:paa({segments})"
    )
