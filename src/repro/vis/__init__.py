"""Visualization substrate: rasterization, pixel metrics, reduction baselines."""

from .rasterize import column_extents, pixel_columns, rasterize
from .pixel_error import pixel_error, raster_difference
from .m4 import m4_aggregate, m4_series
from .paa import paa, paa_series
from .simplify import (
    douglas_peucker,
    douglas_peucker_series,
    visvalingam_whyatt,
    visvalingam_whyatt_series,
)
from .devices import DEVICES, Device, device, reduction_factor
from .ascii_plot import ascii_chart, side_by_side, sparkline

__all__ = [
    "column_extents",
    "pixel_columns",
    "rasterize",
    "pixel_error",
    "raster_difference",
    "m4_aggregate",
    "m4_series",
    "paa",
    "paa_series",
    "douglas_peucker",
    "douglas_peucker_series",
    "visvalingam_whyatt",
    "visvalingam_whyatt_series",
    "DEVICES",
    "Device",
    "device",
    "reduction_factor",
    "ascii_chart",
    "side_by_side",
    "sparkline",
]
