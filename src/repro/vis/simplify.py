"""Line-simplification algorithms used as visualization baselines.

The user studies compare ASAP against the Visvalingam–Whyatt algorithm
("simp" in Figure 6) and the related-work discussion covers Douglas–Peucker.
Both reduce a polyline to a subset of its own vertices — again aiming for a
faithful, not a smoothed, rendering.

* Visvalingam–Whyatt: repeatedly remove the interior point whose "effective
  area" (the triangle formed with its neighbours) is smallest, until the
  target point count remains.  Implemented with a lazy min-heap plus a
  doubly-linked neighbour list, O(n log n).
* Douglas–Peucker: keep the point farthest from the current chord if beyond
  a tolerance, recursing on both halves.  Implemented iteratively with an
  explicit stack to survive long series.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..timeseries.series import TimeSeries

__all__ = [
    "visvalingam_whyatt",
    "visvalingam_whyatt_series",
    "douglas_peucker",
    "douglas_peucker_series",
]


def _triangle_area(x: np.ndarray, y: np.ndarray, a: int, b: int, c: int) -> float:
    """Twice-signed-area magnitude of triangle (a, b, c) over (x, y) points."""
    return abs(
        (x[b] - x[a]) * (y[c] - y[a]) - (x[c] - x[a]) * (y[b] - y[a])
    ) / 2.0


def visvalingam_whyatt(x, y, target_points: int) -> np.ndarray:
    """Indices of the points kept after simplifying down to *target_points*.

    Endpoints are always kept.  Removal order follows ascending effective
    area with the standard monotone-area fix: a neighbour's recomputed area
    is floored at the area of the point just removed, preventing removal
    order inversions.
    """
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = xs.size
    if target_points < 2:
        raise ValueError(f"target_points must be >= 2, got {target_points}")
    if n <= target_points:
        return np.arange(n, dtype=np.int64)

    prev = np.arange(-1, n - 1, dtype=np.int64)
    nxt = np.arange(1, n + 1, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    current_area = np.full(n, np.inf)
    heap: list[tuple[float, int]] = []
    for i in range(1, n - 1):
        area = _triangle_area(xs, ys, i - 1, i, i + 1)
        current_area[i] = area
        heap.append((area, i))
    heapq.heapify(heap)

    remaining = n
    floor_area = 0.0
    while remaining > target_points and heap:
        area, i = heapq.heappop(heap)
        if not alive[i] or area != current_area[i]:
            continue  # stale heap entry
        alive[i] = False
        remaining -= 1
        floor_area = max(floor_area, area)
        p, q = prev[i], nxt[i]
        nxt[p], prev[q] = q, p
        for j in (p, q):
            if 0 < j < n - 1 and alive[j]:
                recomputed = _triangle_area(xs, ys, prev[j], j, nxt[j])
                recomputed = max(recomputed, floor_area)
                current_area[j] = recomputed
                heapq.heappush(heap, (recomputed, j))
    return np.nonzero(alive)[0].astype(np.int64)


def visvalingam_whyatt_series(series: TimeSeries, target_points: int) -> TimeSeries:
    """Simplify a :class:`TimeSeries` to approximately *target_points* points."""
    kept = visvalingam_whyatt(series.timestamps, series.values, target_points)
    return TimeSeries(
        series.values[kept],
        series.timestamps[kept],
        name=f"{series.name}:vw({target_points})",
    )


def _perpendicular_distances(
    xs: np.ndarray, ys: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Distances of interior points lo+1..hi-1 from the chord (lo, hi)."""
    x0, y0 = xs[lo], ys[lo]
    x1, y1 = xs[hi], ys[hi]
    dx, dy = x1 - x0, y1 - y0
    seg_len = np.hypot(dx, dy)
    px = xs[lo + 1 : hi]
    py = ys[lo + 1 : hi]
    if seg_len == 0.0:
        return np.hypot(px - x0, py - y0)
    return np.abs(dy * px - dx * py + x1 * y0 - y1 * x0) / seg_len


def douglas_peucker(x, y, tolerance: float) -> np.ndarray:
    """Indices kept by Douglas–Peucker at the given distance *tolerance*."""
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    n = xs.size
    if n <= 2:
        return np.arange(n, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        distances = _perpendicular_distances(xs, ys, lo, hi)
        split = int(np.argmax(distances))
        if distances[split] > tolerance:
            mid = lo + 1 + split
            keep[mid] = True
            stack.append((lo, mid))
            stack.append((mid, hi))
    return np.nonzero(keep)[0].astype(np.int64)


def douglas_peucker_series(series: TimeSeries, tolerance: float) -> TimeSeries:
    """Simplify a :class:`TimeSeries` with Douglas–Peucker."""
    kept = douglas_peucker(series.timestamps, series.values, tolerance)
    return TimeSeries(
        series.values[kept],
        series.timestamps[kept],
        name=f"{series.name}:dp({tolerance:g})",
    )
