"""Pixel-level fidelity metrics (Table 4 / Appendix B.1).

The paper contrasts ASAP with pixel-preserving reduction algorithms (M4,
line simplification, PAA) by rendering both the original and the transformed
series at the study resolution and counting pixel disagreement.  ASAP scores
*badly* here by design — it distorts the plot on purpose — while M4 scores
near zero; Table 4 is the quantitative witness of that difference in goals.

We define the error as the symmetric pixel difference normalized by the
pixels lit in the original raster, rendered with auto-scaled axes for each
series (the way each plot is shown to users).
"""

from __future__ import annotations

import numpy as np

from .rasterize import rasterize

__all__ = ["pixel_error", "raster_difference"]


def raster_difference(a: np.ndarray, b: np.ndarray) -> int:
    """Count of pixels lit in exactly one of two equal-shape rasters."""
    if a.shape != b.shape:
        raise ValueError(f"raster shapes differ: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a ^ b))


def pixel_error(
    original,
    transformed,
    width: int = 800,
    height: int = 200,
    normalize: bool = True,
    transformed_positions=None,
) -> float:
    """Pixel disagreement between the original series and a transformed one.

    Both series are rendered at ``width x height`` with their own auto-scaled
    axes (after optional z-normalization, matching the paper's plotting
    convention), and the XOR count is divided by the original's lit-pixel
    count.  0.0 means visually identical rendering; values near 1.0 mean the
    transformed plot shares almost no pixels with the original.

    ``transformed_positions`` places reduced-series points at their original
    x locations (in original sample-index units), as a chart would.

    Both rasters share the *original's* y-axis limits — the overlay rendering
    the paper's pixel-accuracy comparisons assume.  ``normalize`` applies the
    same z-transform (the original's moments) to both series first, matching
    the paper's z-score plotting convention without shifting one series
    relative to the other.
    """
    orig = np.asarray(original, dtype=np.float64)
    trans = np.asarray(transformed, dtype=np.float64)
    if normalize:
        mu, sigma = float(orig.mean()), float(orig.std())
        if sigma == 0.0:
            sigma = 1.0
        orig = (orig - mu) / sigma
        trans = (trans - mu) / sigma
    value_range = (float(orig.min()), float(orig.max()))
    x_range = (0.0, float(orig.size - 1))
    if transformed_positions is None:
        # Same implicit-index x mapping as the original, so an identical
        # series re-renders the identical raster.
        transformed_positions = np.linspace(0.0, orig.size - 1, trans.size)
    raster_orig = rasterize(orig, width, height, value_range=value_range,
                            x_range=x_range,
                            positions=np.arange(orig.size, dtype=np.float64))
    raster_trans = rasterize(trans, width, height, value_range=value_range,
                             positions=transformed_positions, x_range=x_range)
    lit = int(np.count_nonzero(raster_orig))
    if lit == 0:
        return 0.0
    return raster_difference(raster_orig, raster_trans) / lit
