"""Terminal rendering of time series.

The examples and experiment printers need to *show* plots without a display
server.  This module renders a series as text: a block-character line chart
(built on the same rasterizer the pixel metrics use, so what you see is what
the metrics measure) and one-line sparklines for compact comparisons.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.stats import zscore
from .rasterize import rasterize

__all__ = ["ascii_chart", "sparkline", "side_by_side"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def ascii_chart(
    values,
    width: int = 72,
    height: int = 12,
    title: str = "",
    normalize: bool = True,
) -> str:
    """Render a series as a multi-line block chart string."""
    arr = np.asarray(values, dtype=np.float64)
    if normalize:
        arr = zscore(arr)
    grid = rasterize(arr, width, height)
    rows = ["".join("█" if cell else " " for cell in row) for row in grid]
    lines = []
    if title:
        lines.append(title)
    top = float(arr.max()) if arr.size else 0.0
    bottom = float(arr.min()) if arr.size else 0.0
    lines.append(f"{top:+.2f} ┤" + rows[0])
    for row in rows[1:-1]:
        lines.append("      │" + row)
    if height > 1:
        lines.append(f"{bottom:+.2f} ┤" + rows[-1])
    lines.append("      └" + "─" * width)
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """Render a series as a one-line sparkline of block characters."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Bucket means down to the target width.
        bounds = (np.arange(width + 1) * arr.size) // width
        prefix = np.concatenate(([0.0], np.cumsum(arr)))
        sums = prefix[bounds[1:]] - prefix[bounds[:-1]]
        counts = (bounds[1:] - bounds[:-1]).astype(np.float64)
        arr = sums / counts
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def side_by_side(labeled_series, width: int = 60) -> str:
    """Stack labelled sparklines for quick visual comparison.

    ``labeled_series`` is an iterable of (label, values) pairs.
    """
    pairs = list(labeled_series)
    if not pairs:
        return ""
    label_width = max(len(label) for label, _ in pairs)
    lines = [
        f"{label:>{label_width}} {sparkline(values, width)}" for label, values in pairs
    ]
    return "\n".join(lines)
