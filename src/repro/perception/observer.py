"""A simulated observer for the user studies (substitution for human subjects).

The paper's Section 5.1 measures how visualization choices affect humans'
ability to spot an anomalous region among five equal slices of a plot.  We
cannot recruit 700 Mechanical Turk workers, so this module implements a
stochastic observer whose *only* input is the rendered pixel raster — the
same stimulus a human sees — and whose choice behaviour follows standard
perceptual modelling:

1. **Percept extraction.**  The plot is rasterized at study resolution; each
   pixel column is summarized by the centroid row and vertical extent of its
   lit pixels (position and thickness of the stroke a viewer sees there).
2. **Saliency.**  Each of the five regions scores by how far its percept
   departs from the plot-wide baseline, *normalized by the plot's local
   jitter* — a Weber-style contrast-to-noise ratio.  This is the mechanism
   the paper's thesis rests on: noise raises the denominator, hiding real
   shifts; oversmoothing erases the numerator.
3. **Choice.**  A softmax over region saliencies with calibrated temperature
   plus a lapse rate (random guessing) produces accuracy; a diffusion-style
   latency model (faster decisions when one region clearly dominates)
   produces response times.

Accuracy orderings across visualizations — not absolute percentages — are the
reproduction target; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.generators import rng_from
from ..vis.rasterize import rasterize

__all__ = ["Percept", "extract_percept", "region_saliency", "Observer", "Trial"]

_EPSILON = 1e-9

#: Perceived contrast grows logarithmically with physical contrast
#: (Weber–Fechner); log1p also keeps a zero floor and avoids the unbounded
#: saliency a perfectly smooth plot would otherwise produce.


@dataclass(frozen=True)
class Percept:
    """Per-column view of a rendered plot: stroke position and thickness."""

    centroid: np.ndarray  # mean lit row per column, in [0, 1] (1 = top)
    extent: np.ndarray  # lit-row span per column, in [0, 1]

    @property
    def width(self) -> int:
        return int(self.centroid.size)


def extract_percept(
    values,
    width: int = 800,
    height: int = 200,
    positions=None,
    x_range=None,
) -> Percept:
    """Rasterize a series and summarize each pixel column.

    Columns the polyline never crosses cannot occur (the rasterizer bridges
    gaps), so both features are defined everywhere.  ``positions``/``x_range``
    pin the x axis, so reduced series (M4, PAA, SMA with its half-window
    offset) land where a real chart would draw them.
    """
    grid = rasterize(
        np.asarray(values, dtype=np.float64),
        width,
        height,
        positions=positions,
        x_range=x_range,
    )
    rows = np.arange(grid.shape[0], dtype=np.float64)
    centroid = np.empty(width)
    extent = np.empty(width)
    for col in range(width):
        lit = np.nonzero(grid[:, col])[0]
        if lit.size == 0:
            centroid[col] = 0.5
            extent[col] = 0.0
            continue
        centroid[col] = 1.0 - (float(rows[lit].mean()) / max(grid.shape[0] - 1, 1))
        extent[col] = (float(lit.max() - lit.min())) / max(grid.shape[0] - 1, 1)
    return Percept(centroid=centroid, extent=extent)


def _feature_saliency(feature: np.ndarray, regions: int) -> np.ndarray:
    """Contrast-to-noise of each region for one percept feature.

    Numerator: the region's strongest sustained departure from the plot-wide
    median (a small moving mean suppresses single-column speckle).
    Denominator: the plot-wide column-to-column jitter (median absolute
    difference), floored at one pixel — quantization means nothing below a
    pixel is visible — so perfectly smooth plots do not yield unbounded
    contrast.  The ratio is passed through a saturating nonlinearity.
    """
    width = feature.size
    baseline = float(np.median(feature))
    pixel_floor = 1.0 / 199.0  # one pixel at the default 200-row raster
    jitter = max(float(np.median(np.abs(np.diff(feature)))), pixel_floor)
    kernel = max(width // (regions * 8), 1)
    padded = np.convolve(feature - baseline, np.ones(kernel) / kernel, mode="same")
    scores = np.empty(regions)
    bounds = (np.arange(regions + 1) * width) // regions
    for region in range(regions):
        segment = padded[bounds[region] : bounds[region + 1]]
        raw = float(np.max(np.abs(segment))) / jitter
        scores[region] = float(np.log1p(raw))
    return scores


def region_saliency(
    values,
    regions: int = 5,
    width: int = 800,
    height: int = 200,
    positions=None,
    x_range=None,
) -> np.ndarray:
    """Saliency of each of *regions* plot slices, from rendered pixels only.

    Combines the position and thickness channels by taking, per region, the
    stronger of the two normalized contrasts — an anomaly is findable if it
    pops out in *either* channel.
    """
    if regions < 2:
        raise ValueError(f"need at least 2 regions, got {regions}")
    percept = extract_percept(
        values, width=width, height=height, positions=positions, x_range=x_range
    )
    position = _feature_saliency(percept.centroid, regions)
    thickness = _feature_saliency(percept.extent, regions)
    return np.maximum(position, thickness)


@dataclass(frozen=True)
class Trial:
    """One identification attempt by the observer."""

    chosen_region: int
    correct: bool
    response_time: float
    saliency: np.ndarray


class Observer:
    """A stochastic participant.

    Parameters
    ----------
    temperature:
        Softmax temperature over region saliencies.  Lower = more reliable
        choices; calibrated so raw-plot accuracy lands in the paper's band.
    lapse_rate:
        Probability of ignoring the plot and guessing uniformly (inattentive
        crowdworker behaviour; standard in psychometric models).
    rt_floor / rt_scale:
        Response-time model ``rt = floor + scale / (1 + gap) * noise`` where
        ``gap`` is the saliency margin of the best region over the runner-up.
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        temperature: float = 0.4,
        lapse_rate: float = 0.08,
        rt_floor: float = 4.0,
        rt_scale: float = 28.0,
        seed=0,
    ) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if not 0.0 <= lapse_rate < 1.0:
            raise ValueError(f"lapse_rate must be in [0, 1), got {lapse_rate}")
        self.temperature = temperature
        self.lapse_rate = lapse_rate
        self.rt_floor = rt_floor
        self.rt_scale = rt_scale
        self._rng = rng_from(seed)

    def _choose(self, saliency: np.ndarray) -> int:
        if self._rng.random() < self.lapse_rate:
            return int(self._rng.integers(saliency.size))
        logits = saliency / self.temperature
        logits = logits - logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        return int(self._rng.choice(saliency.size, p=probabilities))

    def _response_time(self, saliency: np.ndarray) -> float:
        ordered = np.sort(saliency)[::-1]
        gap = float(ordered[0] - ordered[1]) if ordered.size > 1 else float(ordered[0])
        noise = float(self._rng.lognormal(mean=0.0, sigma=0.25))
        return self.rt_floor + self.rt_scale / (1.0 + max(gap, 0.0)) * noise

    def identify(
        self,
        values,
        true_region: int,
        regions: int = 5,
        width: int = 800,
        height: int = 200,
        positions=None,
        x_range=None,
    ) -> Trial:
        """Attempt to locate the anomalous region in a rendered plot."""
        saliency = region_saliency(
            values,
            regions=regions,
            width=width,
            height=height,
            positions=positions,
            x_range=x_range,
        )
        chosen = self._choose(saliency)
        return Trial(
            chosen_region=chosen,
            correct=(chosen == true_region),
            response_time=self._response_time(saliency),
            saliency=saliency,
        )

    def prefer(self, candidates, true_region: int, regions: int = 5, x_range=None) -> int:
        """Pick the plot that best highlights the known anomaly (Study II).

        *candidates* is a sequence of ``(values, positions)`` pairs (positions
        may be None); the observer scores each by the saliency margin of the
        true region over the other regions and chooses by softmax.
        """
        margins = []
        for values, positions in candidates:
            saliency = region_saliency(
                values, regions=regions, positions=positions, x_range=x_range
            )
            others = np.delete(saliency, true_region)
            margins.append(float(saliency[true_region] - others.max()))
        margins_arr = np.asarray(margins)
        if self._rng.random() < self.lapse_rate:
            return int(self._rng.integers(margins_arr.size))
        logits = margins_arr / self.temperature
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        return int(self._rng.choice(margins_arr.size, p=probabilities))
