"""User-study harnesses (Sections 5.1.1 and 5.1.2).

Study I (anomaly identification): for each dataset x visualization cell, a
cohort of simulated observers sees the rendered plot and picks the anomalous
region among five; we record accuracy and response time — the quantities of
Figure 6.

Study II (visual preference): each simulated participant sees four
visualizations of the same dataset (original, ASAP, PAA100, oversmooth) and
picks the one that best highlights the described anomaly — Figure 7.

The seven visualization techniques match the paper's list (Section 5.1):
original, ASAP, M4, Visvalingam–Whyatt ("simp"), PAA800, PAA100, and an
oversmoothed plot (SMA with window = 1/4 of the series).  Each renderer
returns the displayed values *and their x positions in original sample
coordinates*, so a smoothed series is drawn at its window centers (charts
center moving averages) and reduced series keep their true x locations —
without this, region boundaries would not line up across techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.batch import smooth
from ..spectral.convolution import sma
from ..timeseries.datasets import Dataset, USER_STUDY_DATASETS, load
from ..vis.m4 import m4_aggregate
from ..vis.paa import paa
from ..vis.simplify import visvalingam_whyatt
from .observer import Observer

__all__ = [
    "VISUALIZATIONS",
    "PREFERENCE_VISUALIZATIONS",
    "RenderedPlot",
    "render_visualization",
    "CellResult",
    "anomaly_identification_study",
    "preference_study",
    "StudyConfig",
]

#: Figure 6's seven techniques, in paper order.
VISUALIZATIONS = ("ASAP", "Original", "M4", "simp", "PAA800", "PAA100", "Oversmooth")

#: Figure 7's four techniques, in paper order.
PREFERENCE_VISUALIZATIONS = ("Original", "ASAP", "PAA100", "Oversmooth")

_STUDY_RESOLUTION = 800


@dataclass(frozen=True)
class RenderedPlot:
    """Displayed values plus their x positions in original sample units."""

    values: np.ndarray
    positions: np.ndarray


def _paa_positions(n: int, segments: int) -> np.ndarray:
    bounds = (np.arange(segments + 1) * n) // segments
    return (bounds[:-1] + bounds[1:] - 1) / 2.0


def render_visualization(
    name: str, values: np.ndarray, resolution: int = _STUDY_RESOLUTION
) -> RenderedPlot:
    """Produce the displayed point sequence for one technique."""
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    if name == "Original":
        return RenderedPlot(arr, np.arange(n, dtype=np.float64))
    if name == "ASAP":
        result = smooth(arr, resolution=resolution)
        displayed = result.series.values
        ratio = result.preaggregation_ratio
        raw_window = result.window_original_units
        positions = np.arange(displayed.size) * ratio + (raw_window - 1) / 2.0
        return RenderedPlot(displayed, positions)
    if name == "M4":
        indices, reduced = m4_aggregate(arr, resolution)
        return RenderedPlot(reduced, indices.astype(np.float64))
    if name == "simp":
        kept = visvalingam_whyatt(np.arange(n, dtype=np.float64), arr, resolution)
        return RenderedPlot(arr[kept], kept.astype(np.float64))
    if name == "PAA800":
        segments = min(800, n)
        return RenderedPlot(paa(arr, segments), _paa_positions(n, segments))
    if name == "PAA100":
        segments = min(100, n)
        return RenderedPlot(paa(arr, segments), _paa_positions(n, segments))
    if name == "Oversmooth":
        window = max(n // 4, 2)
        displayed = sma(arr, window)
        positions = np.arange(displayed.size) + (window - 1) / 2.0
        return RenderedPlot(displayed, positions)
    raise KeyError(f"unknown visualization {name!r}; known: {VISUALIZATIONS}")


@dataclass(frozen=True)
class CellResult:
    """Aggregate outcome of one (dataset, visualization) study cell."""

    dataset: str
    visualization: str
    accuracy: float
    accuracy_stderr: float
    mean_response_time: float
    response_time_stderr: float
    trials: int


@dataclass(frozen=True)
class StudyConfig:
    """Cohort parameters shared by both studies."""

    trials_per_cell: int = 50
    regions: int = 5
    width: int = _STUDY_RESOLUTION
    height: int = 200
    dataset_scale: float = 1.0
    seed: int = 7


def _primary_anomaly_region(dataset: Dataset, regions: int) -> int:
    if not dataset.anomalies:
        raise ValueError(f"dataset {dataset.info.name!r} has no ground-truth anomaly")
    return dataset.anomalies[0].region_index(len(dataset.series), regions)


def anomaly_identification_study(
    dataset_names: Sequence[str] = USER_STUDY_DATASETS,
    visualizations: Sequence[str] = VISUALIZATIONS,
    config: StudyConfig | None = None,
) -> list[CellResult]:
    """Run Study I: accuracy and response time per (dataset, visualization)."""
    cfg = config or StudyConfig()
    results: list[CellResult] = []
    for dataset_index, name in enumerate(dataset_names):
        dataset = load(name, scale=cfg.dataset_scale)
        n = len(dataset.series)
        true_region = _primary_anomaly_region(dataset, cfg.regions)
        x_range = (0.0, float(n - 1))
        for vis_index, vis in enumerate(visualizations):
            plot = render_visualization(vis, dataset.series.values, cfg.width)
            observer = Observer(seed=cfg.seed + 1000 * dataset_index + vis_index)
            correct = np.zeros(cfg.trials_per_cell, dtype=bool)
            times = np.zeros(cfg.trials_per_cell)
            for trial_index in range(cfg.trials_per_cell):
                trial = observer.identify(
                    plot.values,
                    true_region,
                    regions=cfg.regions,
                    width=cfg.width,
                    height=cfg.height,
                    positions=plot.positions,
                    x_range=x_range,
                )
                correct[trial_index] = trial.correct
                times[trial_index] = trial.response_time
            trials = cfg.trials_per_cell
            accuracy = float(correct.mean())
            results.append(
                CellResult(
                    dataset=name,
                    visualization=vis,
                    accuracy=accuracy,
                    accuracy_stderr=float(np.sqrt(accuracy * (1 - accuracy) / trials)),
                    mean_response_time=float(times.mean()),
                    response_time_stderr=float(times.std(ddof=1) / np.sqrt(trials)),
                    trials=trials,
                )
            )
    return results


def preference_study(
    dataset_names: Sequence[str] = USER_STUDY_DATASETS,
    visualizations: Sequence[str] = PREFERENCE_VISUALIZATIONS,
    n_participants: int = 20,
    config: StudyConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Run Study II: per-dataset share of participants preferring each plot.

    Returns ``{dataset: {visualization: share}}`` with shares summing to 1.
    """
    cfg = config or StudyConfig()
    outcome: dict[str, dict[str, float]] = {}
    for dataset_index, name in enumerate(dataset_names):
        dataset = load(name, scale=cfg.dataset_scale)
        n = len(dataset.series)
        true_region = _primary_anomaly_region(dataset, cfg.regions)
        x_range = (0.0, float(n - 1))
        rendered = [
            render_visualization(vis, dataset.series.values, cfg.width)
            for vis in visualizations
        ]
        candidates = [(plot.values, plot.positions) for plot in rendered]
        votes = np.zeros(len(visualizations), dtype=np.int64)
        for participant in range(n_participants):
            observer = Observer(seed=cfg.seed + 5000 * dataset_index + participant)
            choice = observer.prefer(
                candidates, true_region, regions=cfg.regions, x_range=x_range
            )
            votes[choice] += 1
        outcome[name] = {
            vis: float(votes[i]) / n_participants for i, vis in enumerate(visualizations)
        }
    return outcome
