"""Perception substrate: the simulated-observer user-study harness."""

from .observer import Observer, Percept, Trial, extract_percept, region_saliency
from .study import (
    CellResult,
    PREFERENCE_VISUALIZATIONS,
    StudyConfig,
    VISUALIZATIONS,
    anomaly_identification_study,
    preference_study,
    render_visualization,
)

__all__ = [
    "Observer",
    "Percept",
    "Trial",
    "extract_percept",
    "region_saliency",
    "CellResult",
    "PREFERENCE_VISUALIZATIONS",
    "StudyConfig",
    "VISUALIZATIONS",
    "anomaly_identification_study",
    "preference_study",
    "render_visualization",
]
