"""Consistent-hash ring with virtual nodes: stream id -> shard placement.

The cluster routes every stream id to one shard.  A plain ``hash(id) % N``
would remap almost every stream when ``N`` changes; the consistent-hash ring
remaps only the streams that land on the added/removed node's arc — the
property that makes live rebalancing (adding a shard to a loaded cluster)
ship a *bounded* number of session snapshots instead of all of them.

Each node is planted on the ring at ``replicas`` pseudo-random points
(virtual nodes), which evens out arc lengths; a key belongs to the first
node point at or after its own hash, wrapping at the top.  Hashes come from
:func:`hashlib.blake2b` over the raw id bytes, so placement is stable across
processes, Python versions, and ``PYTHONHASHSEED`` — a coordinator and its
shard workers always agree, and so do yesterday's checkpoint and today's
restore.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _hash64(key: str) -> int:
    """Stable 64-bit hash of *key* (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """A consistent-hash ring mapping string keys to named nodes.

    Parameters
    ----------
    nodes:
        Initial node names (order-insensitive; placement depends only on the
        names themselves).
    replicas:
        Virtual nodes per physical node.  More replicas smooth the load
        spread (64 keeps the max/min arc ratio low for single-digit node
        counts at negligible memory).
    """

    def __init__(self, nodes=(), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted (point, node) pairs; ties broken by node name so two rings
        #: built from the same node set are identical element for element.
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        """The node names, sorted."""
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        """Plant *node* at its ``replicas`` ring points."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (_hash64(f"{node}#{i}"), node))

    def remove_node(self, node: str) -> None:
        """Remove *node*; its keys fall to the next points on the ring."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [(point, name) for point, name in self._points if name != node]

    def node_for(self, key: str) -> str:
        """The node owning *key*: first ring point at or after its hash."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        index = bisect.bisect_left(self._points, (_hash64(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def placement(self, keys) -> dict[str, str]:
        """Map each key to its owning node (a convenience over node_for)."""
        return {key: self.node_for(key) for key in keys}

    def __repr__(self) -> str:
        return f"HashRing(nodes={self.nodes}, replicas={self.replicas})"
