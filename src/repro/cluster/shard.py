"""Shard workers: one StreamHub behind a command loop.

A shard is a complete :class:`~repro.service.StreamHub` driven through a
small command protocol — ``("ingest", payload)`` in, ``("ok", result)`` or
``("error", exception)`` out.  Two interchangeable backends implement it:

* :class:`InProcessShard` — the hub lives in the coordinator's process and
  commands dispatch as direct calls.  Deterministic and cheap: the backend
  for tests, for single-machine serving where the GIL is not the bottleneck,
  and for reasoning about cluster semantics without multiprocessing in the
  picture.
* :class:`ProcessShard` — the hub lives in a ``multiprocessing`` worker
  running :func:`_worker_main`'s receive/dispatch/reply loop over a pipe.
  This is the real-parallelism backend: N shards smooth on N cores, and the
  coordinator pays one pipe round trip per command.

Both expose ``submit``/``result`` as separate steps so the coordinator can
fan a command out to every shard *before* collecting any reply — with
process shards the workers genuinely overlap.  Hub exceptions cross the pipe
as values and re-raise at the coordinator with their original type
(:class:`~repro.service.UnknownStreamError` stays an ``UnknownStreamError``),
so the cluster preserves the single-hub API contract.  A dead worker
surfaces as :class:`ShardDownError` — the signal the coordinator's recovery
path (drop the shard, restore its streams from a checkpoint) is built on.
"""

from __future__ import annotations

import multiprocessing
import traceback

from ..errors import (
    ClusterError,
    RemoteShardError,
    ShardDownError,
    ShardProtocolError,
)
from ..service import StreamHub, UnknownStreamError
from ..spec import AsapSpec

__all__ = [
    "ClusterError",
    "ShardDownError",
    "ShardProtocolError",
    "RemoteShardError",
    "InProcessShard",
    "ProcessShard",
]


def _build_hub(hub_kwargs: dict, hub_state) -> StreamHub:
    """One shard's hub, from wire-format kwargs or a checkpointed state.

    ``hub_kwargs`` is the coordinator's wire form: its ``default_config`` is
    a plain spec dict (or ``None``), exactly as the persist codec carries it,
    so the config schema has one spelling whether a spec arrives at a shard
    through construction, a ``create`` command, or a checkpoint.
    """
    if hub_state is not None:
        return StreamHub.from_state(hub_state)
    kwargs = dict(hub_kwargs)
    if kwargs.get("default_config") is not None:
        kwargs["default_config"] = AsapSpec.from_dict(kwargs["default_config"])
    return StreamHub(**kwargs)


def _dispatch(hub: StreamHub, command: str, payload):
    """Execute one protocol command against *hub*; shared by both backends."""
    if command == "batch":
        ingests, run_tick = payload
        inline: dict[str, list] = {}
        for stream_id, timestamps, values in ingests:
            try:
                frames = hub.ingest(stream_id, timestamps, values)
            except UnknownStreamError:
                # Evicted hub-side (LRU/idle) after the coordinator buffered
                # this batch — exactly the error a single hub would have
                # raised at the ingest call.  The live-ids reply below lets
                # the coordinator reconcile its placement map.
                continue
            if frames:
                inline.setdefault(stream_id, []).extend(frames)
        ticked = hub.tick() if run_tick else {}
        return inline, ticked, hub.stream_ids()
    if command == "ingest":
        stream_id, timestamps, values = payload
        return hub.ingest(stream_id, timestamps, values)
    if command == "backfill":
        stream_id, timestamps, values = payload
        return hub.backfill(stream_id, timestamps, values)
    if command == "tick":
        return hub.tick()
    if command == "create":
        stream_id, config_state, overrides = payload
        # Specs cross the IPC boundary as plain dicts (the codec's spelling);
        # they rebuild — and revalidate — at the shard.
        config = None if config_state is None else AsapSpec.from_dict(config_state)
        return hub.create_stream(stream_id, config, **overrides)
    if command == "snapshot":
        stream_id, resolution, include_partial = payload
        return hub.snapshot(stream_id, resolution=resolution, include_partial=include_partial)
    if command == "close":
        stream_id, flush = payload
        return hub.close(stream_id, flush=flush)
    if command == "stats":
        return hub.stats
    if command == "stream_ids":
        return hub.stream_ids()
    if command == "export":
        stream_id, remove = payload
        return hub.export_session(stream_id, remove=remove)
    if command == "import":
        return hub.import_session(payload)
    if command == "state":
        return hub.state_dict()
    if command == "ping":
        return "pong"
    raise ShardProtocolError(f"unknown shard command {command!r}")


def _worker_main(connection, hub_kwargs: dict, hub_state) -> None:  # pragma: no cover
    """The process-shard loop: recv (command, payload), dispatch, send reply.

    Exercised end to end by the process-backend tests, but in *child*
    processes, where the coverage tracer does not run — hence the pragma.
    """
    hub = _build_hub(hub_kwargs, hub_state)
    while True:
        try:
            command, payload = connection.recv()
        except (EOFError, OSError):
            break  # coordinator went away; die quietly
        if command == "shutdown":
            connection.send(("ok", None))
            break
        try:
            result = _dispatch(hub, command, payload)
        except Exception as exc:  # hub errors are protocol results, not crashes
            try:
                connection.send(("error", exc))
            except Exception:
                connection.send(("error", RemoteShardError(traceback.format_exc())))
        else:
            connection.send(("ok", result))
    connection.close()


class InProcessShard:
    """A shard whose hub lives in the coordinator's process.

    ``kill()`` marks the shard dead without touching its hub — the test and
    demo hook for exercising the coordinator's failure handling without a
    real process crash.
    """

    backend = "inprocess"

    def __init__(self, shard_id: str, hub_kwargs: dict, hub_state=None) -> None:
        self.shard_id = shard_id
        self.hub = _build_hub(hub_kwargs, hub_state)
        self._reply = None
        self._dead = False

    @property
    def alive(self) -> bool:
        return not self._dead

    def submit(self, command: str, payload=None) -> None:
        """Run *command* now; the reply is held until :meth:`result`."""
        if self._dead:
            raise ShardDownError(self.shard_id)
        if self._reply is not None:
            raise ShardProtocolError(
                f"shard {self.shard_id!r} has an uncollected reply; call result() first"
            )
        try:
            self._reply = ("ok", _dispatch(self.hub, command, payload))
        except Exception as exc:
            self._reply = ("error", exc)

    def result(self):
        """The reply to the last :meth:`submit` (raises what the hub raised)."""
        if self._dead:
            raise ShardDownError(self.shard_id)
        if self._reply is None:
            raise ShardProtocolError(f"shard {self.shard_id!r} has no pending reply")
        status, value = self._reply
        self._reply = None
        if status == "error":
            raise value
        return value

    def request(self, command: str, payload=None):
        """submit + result in one step (for single-shard commands)."""
        self.submit(command, payload)
        return self.result()

    def shutdown(self) -> None:
        self._dead = True

    def kill(self) -> None:
        """Simulate a crash: the shard stops answering (state unrecoverable)."""
        self._dead = True
        self._reply = None


class ProcessShard:
    """A shard whose hub lives in a ``multiprocessing`` worker process.

    One pipe, strict request/reply alternation per shard (the coordinator
    enforces it via submit/result), daemonized so leaked workers die with the
    coordinator.  All payloads cross the pipe via multiprocessing's native
    transport; *state* payloads (migration, checkpoint) are the plain
    scalar/array trees of the persist layer.
    """

    backend = "process"

    def __init__(
        self,
        shard_id: str,
        hub_kwargs: dict,
        hub_state=None,
        start_method: str | None = None,
    ) -> None:
        self.shard_id = shard_id
        context = multiprocessing.get_context(start_method)
        self._connection, child = context.Pipe()
        self._process = context.Process(
            target=_worker_main,
            args=(child, hub_kwargs, hub_state),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        self._awaiting_reply = False

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def submit(self, command: str, payload=None) -> None:
        """Send *command* down the pipe; the worker replies to :meth:`result`."""
        if self._awaiting_reply:
            raise ShardProtocolError(
                f"shard {self.shard_id!r} has an uncollected reply; call result() first"
            )
        try:
            self._connection.send((command, payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardDownError(self.shard_id) from exc
        self._awaiting_reply = True

    def result(self):
        """Receive the worker's reply (raises what the worker's hub raised)."""
        if not self._awaiting_reply:
            raise ShardProtocolError(f"shard {self.shard_id!r} has no pending reply")
        try:
            status, value = self._connection.recv()
        except (EOFError, OSError) as exc:
            raise ShardDownError(self.shard_id) from exc
        finally:
            self._awaiting_reply = False
        if status == "error":
            raise value
        return value

    def request(self, command: str, payload=None):
        """submit + result in one step (for single-shard commands)."""
        self.submit(command, payload)
        return self.result()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker gracefully; escalate to kill if it does not exit."""
        try:
            self.request("shutdown")
        except (ShardDownError, ShardProtocolError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        self._connection.close()

    def kill(self) -> None:
        """Hard-kill the worker (failure injection; in-memory state is lost)."""
        self._process.terminate()
        self._process.join(5.0)
        self._connection.close()
