"""ShardedHub: the StreamHub API scaled across N shard workers.

One coordinator owns a consistent-hash ring (:mod:`repro.cluster.ring`) and
N shards (:mod:`repro.cluster.shard`), each a complete
:class:`~repro.service.StreamHub`.  Stream ids route over the ring, so any
number of coordinators (or a restarted one) agree on placement without
shared state.  The public surface is the StreamHub's —
``create_stream`` / ``ingest`` / ``tick`` / ``snapshot`` / ``close`` /
``stats`` — plus the cluster-only operations: shard membership
(``add_shard`` / ``remove_shard`` with live migration, ``drop_shard`` +
``restore_streams`` for crash recovery) and durability (``checkpoint`` /
``restore`` via :mod:`repro.persist`).

**Batched dispatch.**  ``ingest(..., buffered=True)`` queues arrivals at the
coordinator; ``tick()`` then ships each shard its whole pending batch *and*
the tick in a single command — one IPC round per shard per tick, not one per
stream.  Inline frames (refresh boundaries inside a batch) and tick frames
come back together, keyed by stream id, in the same per-stream order a
single StreamHub would have produced them — sessions are partitioned, never
split, so sharding does not change any stream's frames.

**Rebalancing.**  Adding or removing a shard recomputes ring ownership and
migrates exactly the streams whose owner changed, by shipping their
persist-layer session snapshots (``export_session(remove=True)`` ->
``import_session``).  A snapshot carries the open partial pane, the pending
journal, the rolling sums, and the pyramid, so migration drops zero panes
and the migrated stream's subsequent frames are bit-identical.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import persist
from ..net.wire import frame_from_state as _frame_from_state
from ..net.wire import frame_state as _frame_state
from ..persist.checkpoint import _read_state
from ..persist.codec import CheckpointError
from ..service import HubStats, StreamConfig, UnknownStreamError
from ..service.hub import allocate_auto_id
from .ring import HashRing
from .shard import ClusterError, InProcessShard, ProcessShard, ShardDownError

__all__ = ["ShardedHub"]

_BACKENDS = {"inprocess": InProcessShard, "process": ProcessShard}


class ShardedHub:
    """A sharded, durably checkpointable StreamHub cluster.

    Parameters
    ----------
    shards:
        Initial shard count (named ``shard-0`` .. ``shard-N-1``).
    backend:
        ``"inprocess"`` (direct calls; tests and single-core serving) or
        ``"process"`` (one ``multiprocessing`` worker per shard; real
        parallelism across cores).
    replicas:
        Virtual nodes per shard on the hash ring.
    max_sessions_per_shard / max_panes_per_session / default_config /
    eviction_policy / idle_ticks_before_eviction:
        Per-shard :class:`~repro.service.StreamHub` parameters, applied to
        every worker.  Note capacity and eviction are *per shard*: the
        cluster admits up to ``shards * max_sessions_per_shard`` sessions,
        spread by the ring (approximately, not exactly, evenly).
    """

    #: Payload kind written by :func:`repro.persist.checkpoint`.
    checkpoint_kind = "sharded-hub"

    def __init__(
        self,
        shards: int = 4,
        backend: str = "inprocess",
        replicas: int = 64,
        max_sessions_per_shard: int = 1024,
        max_panes_per_session: int = 4096,
        default_config: StreamConfig | None = None,
        eviction_policy: str = "lru",
        idle_ticks_before_eviction: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {sorted(_BACKENDS)}, got {backend!r}")
        self.backend = backend
        # The wire form: default_config travels as a plain spec dict (the
        # codec's spelling) so shard construction, create commands, and
        # checkpoints all carry configs the same way.
        self._hub_kwargs = dict(
            max_sessions=max_sessions_per_shard,
            max_panes_per_session=max_panes_per_session,
            default_config=None if default_config is None else default_config.to_dict(),
            eviction_policy=eviction_policy,
            idle_ticks_before_eviction=idle_ticks_before_eviction,
        )
        self._ring = HashRing(replicas=replicas)
        self._shards: dict[str, InProcessShard | ProcessShard] = {}
        self._streams: dict[str, str] = {}  # stream id -> shard id
        self._pending: dict[str, list] = {}  # shard id -> [(sid, ts, vs), ...]
        #: Inline frames produced when pending batches are flushed outside a
        #: tick (rebalancing, checkpointing); they surface at the next tick,
        #: exactly where buffered-ingest frames are promised to appear.
        self._stashed_frames: dict[str, list] = {}
        self._next_auto_id = 0
        self._next_shard_id = 0
        self._streams_migrated = 0
        #: Lifetime counters of gracefully retired shards, folded into
        #: :attr:`stats` so removing a shard never makes the aggregate dip.
        #: (A *killed* shard's counters die with it — there is nobody left
        #: to ask.)
        self._retired_stats: list[HubStats] = []
        self._frame_observers: list = []
        for _ in range(shards):
            self.add_shard()

    # -- refresh-boundary observers --------------------------------------------

    def add_frame_observer(self, callback) -> None:
        """Register *callback* on every frame the cluster delivers.

        Mirrors :meth:`StreamHub.add_frame_observer`: the callback receives
        ``{stream_id: [Frame, ...]}`` after inline ingests, successful
        :meth:`tick` rounds, backfill closing frames, and flushing closes.
        Frames riding a :class:`~repro.errors.ShardDownError`'s
        ``partial_frames`` are *not* observed — they belong to the caller
        handling the failure, and a retry after recovery must not deliver
        them twice.
        """
        if callback not in self._frame_observers:
            self._frame_observers.append(callback)

    def remove_frame_observer(self, callback) -> None:
        """Unregister a :meth:`add_frame_observer` callback (idempotent)."""
        if callback in self._frame_observers:
            self._frame_observers.remove(callback)

    def _notify_frames(self, frames: dict[str, list]) -> None:
        if not frames:
            return
        for callback in list(self._frame_observers):
            callback(frames)

    # -- shard membership ------------------------------------------------------

    @property
    def default_config(self) -> StreamConfig | None:
        """The cluster-wide default session spec (``None`` = shard default).

        Mirrors :attr:`StreamHub.default_config` so callers (e.g. the client
        façade's ``restore``) need not know the coordinator keeps configs in
        wire form internally.
        """
        wire = self._hub_kwargs["default_config"]
        return None if wire is None else StreamConfig.from_dict(wire)

    @property
    def shard_ids(self) -> list[str]:
        """Ids of every live shard (creation order)."""
        return list(self._shards)

    @property
    def streams_migrated(self) -> int:
        """Sessions shipped between shards by rebalancing so far."""
        return self._streams_migrated

    def shard_of(self, stream_id: str) -> str:
        """The shard currently serving *stream_id*."""
        try:
            return self._streams[stream_id]
        except KeyError:
            raise UnknownStreamError(stream_id) from None

    def add_shard(self, shard_id: str | None = None, hub_state=None) -> str:
        """Bring up one shard and migrate the streams the ring now gives it.

        Migration ships each moving stream's persist-layer snapshot (open
        pane, journal, rolling sums, pyramid included), so the moved streams'
        subsequent frames are bit-identical and no pane is dropped.  Returns
        the new shard's id.
        """
        if shard_id is None:
            shard_id, self._next_shard_id = allocate_auto_id(
                "shard", self._next_shard_id, self._shards
            )
        elif shard_id in self._shards or shard_id in self._ring:
            raise ClusterError(f"shard id {shard_id!r} already exists")
        handle = _BACKENDS[self.backend](shard_id, self._hub_kwargs, hub_state)
        self._ring.add_node(shard_id)
        self._shards[shard_id] = handle
        if self._streams:
            moving = [
                (sid, owner)
                for sid, owner in self._streams.items()
                if self._ring.node_for(sid) != owner
            ]
            self._migrate(moving, target=None)
        return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Gracefully retire one shard, migrating its streams off first."""
        if shard_id not in self._shards:
            raise ClusterError(f"no shard {shard_id!r}")
        if len(self._shards) == 1:
            raise ClusterError("cannot remove the last shard")
        self._flush_pending_for(shard_id)
        self._ring.remove_node(shard_id)
        moving = [(sid, owner) for sid, owner in self._streams.items() if owner == shard_id]
        self._migrate(moving, target=None)
        handle = self._shards.pop(shard_id)
        self._retired_stats.append(handle.request("stats"))
        handle.shutdown()

    def kill_shard(self, shard_id: str) -> None:
        """Failure injection: hard-kill one shard worker (its memory is lost).

        The shard stays a cluster member until :meth:`drop_shard`; operations
        touching it raise :class:`ShardDownError`, exactly as a real crash
        would surface.
        """
        if shard_id not in self._shards:
            raise ClusterError(f"no shard {shard_id!r}")
        self._shards[shard_id].kill()

    def drop_shard(self, shard_id: str) -> list[str]:
        """Remove a dead shard from membership; returns the stream ids lost.

        The counterpart of :meth:`remove_shard` for crashes: nothing is
        migrated (there is nothing left to migrate), and any batches still
        buffered for the dead shard are discarded here — explicitly, with
        the affected stream ids returned — along with its in-memory state.
        Re-serve the lost streams from the last checkpoint with
        :meth:`restore_streams`.
        """
        if shard_id not in self._shards:
            raise ClusterError(f"no shard {shard_id!r}")
        if len(self._shards) == 1:
            raise ClusterError("cannot drop the last shard")
        handle = self._shards.pop(shard_id)
        try:
            handle.kill()
        except Exception:
            pass  # already gone
        self._ring.remove_node(shard_id)
        self._pending.pop(shard_id, None)
        lost = [sid for sid, owner in self._streams.items() if owner == shard_id]
        for sid in lost:
            del self._streams[sid]
        return lost

    def _migrate(self, moving: list[tuple[str, str]], target: str | None) -> None:
        """Ship each (stream, old shard) to *target* or its ring owner.

        Every source shard's buffered ingests are delivered first, so the
        exported snapshots include them (their inline frames are stashed for
        the next tick) and no batch is left queued under an owner that no
        longer serves the stream.
        """
        for old_owner in {owner for _stream_id, owner in moving}:
            self._flush_pending_for(old_owner)
        for stream_id, old_owner in moving:
            if self._streams.get(stream_id) != old_owner:
                continue  # evicted shard-side during the flush; nothing to ship
            new_owner = target if target is not None else self._ring.node_for(stream_id)
            if new_owner == old_owner:
                continue
            state = self._shards[old_owner].request("export", (stream_id, True))
            self._shards[new_owner].request("import", state)
            self._streams[stream_id] = new_owner
            self._streams_migrated += 1

    def _flush_pending_for(self, shard_id: str) -> None:
        """Deliver a shard's buffered ingests now (without ticking it).

        Inline frames are stashed and surface at the next :meth:`tick`;
        the shard's live-ids reply reconciles the placement map.
        """
        pending = self._pending.pop(shard_id, None)
        if pending:
            inline, _ticked, live_ids = self._shards[shard_id].request("batch", (pending, False))
            for stream_id, frames in inline.items():
                self._stashed_frames.setdefault(stream_id, []).extend(frames)
            self._reconcile(shard_id, live_ids)

    def _reconcile(self, shard_id: str, live_ids) -> None:
        """Prune placements for sessions the shard no longer serves.

        Shards evict autonomously (LRU capacity, idle-tick reaping); their
        live-ids replies keep the coordinator's map from going stale —
        without this, an evicted id could never be recreated and
        checkpoints would persist phantom placements.
        """
        live = set(live_ids)
        stale = [
            stream_id
            for stream_id, owner in self._streams.items()
            if owner == shard_id and stream_id not in live
        ]
        for stream_id in stale:
            del self._streams[stream_id]
            self._discard_pending(stream_id, shard_id)

    # -- session lifecycle -----------------------------------------------------

    def create_stream(
        self,
        stream_id: str | None = None,
        config: StreamConfig | None = None,
        history: tuple | None = None,
        **overrides,
    ) -> str:
        """Register a new stream on its ring-assigned shard; returns its id.

        *history* is an optional ``(timestamps, values)`` archive bulk-folded
        into the fresh stream via :meth:`backfill` before the id is returned.
        """
        if stream_id is None:
            stream_id, self._next_auto_id = allocate_auto_id(
                "stream", self._next_auto_id, self._streams
            )
        elif stream_id in self._streams:
            raise ClusterError(f"stream id {stream_id!r} already exists")
        if config is not None and overrides:
            config = config.merge(**overrides)
            overrides = {}
        owner = self._ring.node_for(stream_id)
        config_state = None if config is None else config.to_dict()
        self._shards[owner].request("create", (stream_id, config_state, overrides))
        self._streams[stream_id] = owner
        if history is not None:
            timestamps, values = history
            self.backfill(stream_id, timestamps, values)
        return stream_id

    def close(self, stream_id: str, flush: bool = True):
        """Remove a stream; with *flush*, returns its final pending frame(s).

        Flushing delivers the stream's coordinator-buffered ingests first —
        the frames a single :class:`StreamHub` would have emitted for those
        points (inline, stashed, and final) all come back in order.  Without
        *flush* the buffered batches are discarded along with the session.
        """
        owner = self.shard_of(stream_id)
        frames = self._stashed_frames.pop(stream_id, [])
        if flush:
            mine = [entry for entry in self._pending.get(owner, []) if entry[0] == stream_id]
            if mine:
                self._discard_pending(stream_id, owner)
                inline, _ticked, live_ids = self._shards[owner].request("batch", (mine, False))
                frames.extend(inline.get(stream_id, []))
                self._reconcile(owner, live_ids)
        else:
            self._discard_pending(stream_id, owner)
        try:
            frames.extend(self._shards[owner].request("close", (stream_id, flush)))
        except UnknownStreamError:
            self._streams.pop(stream_id, None)  # evicted shard-side; heal the map
            raise
        self._streams.pop(stream_id, None)
        if flush and frames:
            self._notify_frames({stream_id: frames})
        return frames

    def _discard_pending(self, stream_id: str, owner: str) -> None:
        pending = self._pending.get(owner)
        if pending:
            self._pending[owner] = [entry for entry in pending if entry[0] != stream_id]

    # -- ingestion and refresh -------------------------------------------------

    def ingest(self, stream_id: str, timestamps, values, buffered: bool = False):
        """Fold a batch of arrivals into one stream.

        Immediate mode (the default) dispatches now and returns the inline
        frames, exactly like :meth:`StreamHub.ingest`.  With
        ``buffered=True`` the batch is queued at the coordinator and shipped
        with the next :meth:`tick` — one IPC round per *shard* per tick
        instead of one per stream — and inline frames surface in that tick's
        result instead (the return value is an empty list).
        """
        owner = self.shard_of(stream_id)
        if buffered:
            ts = np.asarray(timestamps, dtype=np.float64)
            vs = np.asarray(values, dtype=np.float64)
            self._pending.setdefault(owner, []).append((stream_id, ts, vs))
            return []
        frames = self._request_for_stream(
            owner, stream_id, "ingest", (stream_id, timestamps, values)
        )
        if frames:
            self._notify_frames({stream_id: frames})
        return frames

    def backfill(self, stream_id: str, timestamps, values):
        """Replay an archive into one stream at batch speed; see
        :meth:`StreamHub.backfill`.

        Any coordinator-buffered batches for the stream are delivered first —
        they arrived before the archive replay was requested, and a backfill
        folding under queued points would reorder the stream.  Their inline
        frames are stashed and surface at the next :meth:`tick`, exactly as
        rebalancing flushes promise.
        """
        owner = self.shard_of(stream_id)
        mine = [entry for entry in self._pending.get(owner, []) if entry[0] == stream_id]
        if mine:
            self._discard_pending(stream_id, owner)
            inline, _ticked, live_ids = self._shards[owner].request("batch", (mine, False))
            for sid, frames in inline.items():
                self._stashed_frames.setdefault(sid, []).extend(frames)
            self._reconcile(owner, live_ids)
            owner = self.shard_of(stream_id)  # raises if evicted during the flush
        result = self._request_for_stream(
            owner, stream_id, "backfill", (stream_id, timestamps, values)
        )
        if result.frames:
            self._notify_frames({stream_id: list(result.frames)})
        return result

    def _request_for_stream(self, owner: str, stream_id: str, command: str, payload):
        """Route one command; heal the placement map if the shard evicted it."""
        try:
            return self._shards[owner].request(command, payload)
        except UnknownStreamError:
            self._streams.pop(stream_id, None)
            self._discard_pending(stream_id, owner)
            raise

    def tick(self) -> dict[str, list]:
        """Deliver buffered ingests and run every shard's tick — batched.

        Each shard receives its entire pending batch plus the tick in one
        command (one IPC round per shard); process shards execute
        concurrently.  Returns frames keyed by stream id: inline frames from
        buffered ingests first, tick frames after, matching the per-stream
        order of an unsharded :class:`StreamHub` fed the same data.

        Raises :class:`ShardDownError` naming any dead shard(s); frames
        already collected from healthy shards ride on the exception's
        ``partial_frames`` (their ticks have run and cannot be replayed).
        """
        pending = self._pending
        self._pending = {}
        down: list[str] = []
        submitted: list[str] = []
        for shard_id, handle in self._shards.items():
            try:
                handle.submit("batch", (pending.get(shard_id, []), True))
                submitted.append(shard_id)
            except ShardDownError:
                down.append(shard_id)
                # Keep the undelivered batch: it is only discarded by an
                # explicit drop_shard(), never silently garbage-collected.
                if pending.get(shard_id):
                    self._pending[shard_id] = pending[shard_id]
        # Frames stashed by out-of-tick flushes (rebalancing, checkpoints)
        # surface first — they are older than anything this tick produces.
        frames: dict[str, list] = self._stashed_frames
        self._stashed_frames = {}
        for shard_id in submitted:
            try:
                inline, ticked, live_ids = self._shards[shard_id].result()
            except ShardDownError:
                down.append(shard_id)
                if pending.get(shard_id):  # delivery unconfirmed; keep the batch
                    self._pending[shard_id] = pending[shard_id]
                continue
            for stream_id, stream_frames in inline.items():
                frames.setdefault(stream_id, []).extend(stream_frames)
            for stream_id, stream_frames in ticked.items():
                frames.setdefault(stream_id, []).extend(stream_frames)
            self._reconcile(shard_id, live_ids)
        if down:
            raise ShardDownError(down, partial_frames=frames)
        self._notify_frames(frames)
        return frames

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._streams

    def stream_ids(self) -> list[str]:
        """Ids of every active stream (creation order)."""
        return list(self._streams)

    def snapshot(
        self, stream_id: str, resolution: int | None = None, include_partial: bool = False
    ):
        """Point-in-time view of one stream (see :meth:`StreamHub.snapshot`)."""
        owner = self.shard_of(stream_id)
        return self._request_for_stream(
            owner, stream_id, "snapshot", (stream_id, resolution, include_partial)
        )

    def shard_stats(self) -> dict[str, HubStats]:
        """Per-shard :class:`HubStats`, collected concurrently."""
        results = self._fan_out("stats", None)
        return dict(results)

    @property
    def stats(self) -> HubStats:
        """Cluster-aggregated :class:`HubStats`.

        Counters sum across live shards plus gracefully retired ones (so
        :meth:`remove_shard` never makes the aggregate dip); ``ticks`` is the
        shards' maximum (every :meth:`tick` advances each shard's clock once,
        so the clocks agree for shards that joined at cluster birth and lag
        for late joiners).
        """
        per_shard = [stats for _shard_id, stats in self._fan_out("stats", None)]
        per_shard.extend(self._retired_stats)
        return HubStats(
            sessions_active=sum(s.sessions_active for s in per_shard),
            sessions_created=sum(s.sessions_created for s in per_shard),
            sessions_closed=sum(s.sessions_closed for s in per_shard),
            sessions_evicted=sum(s.sessions_evicted for s in per_shard),
            ticks=max((s.ticks for s in per_shard), default=0),
            points_ingested=sum(s.points_ingested for s in per_shard),
            frames_emitted=sum(s.frames_emitted for s in per_shard),
            refreshes_coalesced=sum(s.refreshes_coalesced for s in per_shard),
            grid_kernel_calls=sum(s.grid_kernel_calls for s in per_shard),
            views_served=sum(s.views_served for s in per_shard),
            view_cache_hits=sum(s.view_cache_hits for s in per_shard),
            sessions_imported=sum(s.sessions_imported for s in per_shard),
            sessions_exported=sum(s.sessions_exported for s in per_shard),
            warm_prefetches=sum(s.warm_prefetches for s in per_shard),
            warm_fallbacks=sum(s.warm_fallbacks for s in per_shard),
            gaps_filled=sum(s.gaps_filled for s in per_shard),
            nan_dropped=sum(s.nan_dropped for s in per_shard),
            late_accepted=sum(s.late_accepted for s in per_shard),
            late_dropped=sum(s.late_dropped for s in per_shard),
            backfills=sum(s.backfills for s in per_shard),
            backfill_points=sum(s.backfill_points for s in per_shard),
            backfill_elided=sum(s.backfill_elided for s in per_shard),
        )

    def _fan_out(self, command: str, payload) -> list[tuple[str, object]]:
        """Submit one command to every shard, then collect every reply."""
        down: list[str] = []
        submitted: list[str] = []
        for shard_id, handle in self._shards.items():
            try:
                handle.submit(command, payload)
                submitted.append(shard_id)
            except ShardDownError:
                down.append(shard_id)
        results: list[tuple[str, object]] = []
        for shard_id in submitted:
            try:
                results.append((shard_id, self._shards[shard_id].result()))
            except ShardDownError:
                down.append(shard_id)
        if down:
            raise ShardDownError(down)
        return results

    # -- durability ------------------------------------------------------------

    def state_dict(self) -> dict:
        """The whole cluster: parameters, placement, and every shard's hub.

        Coordinator-side queues travel too: buffered ingest batches are
        serialized verbatim (the restored cluster's next :meth:`tick`
        delivers them exactly as the live one's would), and frames stashed
        by rebalancing flushes are serialized so a restored cluster still
        surfaces them — a checkpoint between ticks loses neither queued
        points nor queued frames.
        """
        shard_states = self._fan_out("state", None)
        return {
            "backend": self.backend,
            "replicas": self._ring.replicas,
            "hub_kwargs": {
                "max_sessions": self._hub_kwargs["max_sessions"],
                "max_panes_per_session": self._hub_kwargs["max_panes_per_session"],
                # Already the wire form (a plain spec dict or None).
                "default_config": self._hub_kwargs["default_config"],
                "eviction_policy": self._hub_kwargs["eviction_policy"],
                "idle_ticks_before_eviction": self._hub_kwargs["idle_ticks_before_eviction"],
            },
            "next_auto_id": self._next_auto_id,
            "next_shard_id": self._next_shard_id,
            "streams_migrated": self._streams_migrated,
            "retired_stats": [dataclasses.asdict(s) for s in self._retired_stats],
            "streams": dict(self._streams),
            "pending": {
                shard_id: [[sid, ts, vs] for sid, ts, vs in batches]
                for shard_id, batches in self._pending.items()
                if batches
            },
            "stashed_frames": {
                sid: [_frame_state(frame) for frame in frames]
                for sid, frames in self._stashed_frames.items()
                if frames
            },
            "shard_order": [shard_id for shard_id, _state in shard_states],
            "shards": {shard_id: state for shard_id, state in shard_states},
        }

    @classmethod
    def from_state(cls, state: dict, backend: str | None = None) -> "ShardedHub":
        """Rebuild a cluster from :meth:`state_dict` output (exact resume).

        *backend* overrides the checkpointed backend — a cluster
        checkpointed from process shards can be restored in-process (e.g.
        for inspection) and vice versa; shard state is backend-independent.
        """
        hub = cls.__new__(cls)
        hub.backend = backend if backend is not None else str(state["backend"])
        if hub.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {sorted(_BACKENDS)}, got {hub.backend!r}")
        kwargs = state["hub_kwargs"]
        hub._hub_kwargs = dict(
            max_sessions=int(kwargs["max_sessions"]),
            max_panes_per_session=int(kwargs["max_panes_per_session"]),
            # Validate the checkpointed config, then keep the wire form.
            default_config=(
                None
                if kwargs["default_config"] is None
                else StreamConfig.from_dict(kwargs["default_config"]).to_dict()
            ),
            eviction_policy=str(kwargs["eviction_policy"]),
            idle_ticks_before_eviction=(
                None
                if kwargs["idle_ticks_before_eviction"] is None
                else int(kwargs["idle_ticks_before_eviction"])
            ),
        )
        hub._ring = HashRing(replicas=int(state["replicas"]))
        hub._shards = {}
        hub._streams = {str(sid): str(owner) for sid, owner in state["streams"].items()}
        hub._pending = {
            shard_id: [
                (str(sid), np.asarray(ts, dtype=np.float64), np.asarray(vs, dtype=np.float64))
                for sid, ts, vs in batches
            ]
            for shard_id, batches in state["pending"].items()
        }
        hub._stashed_frames = {
            str(sid): [_frame_from_state(frame) for frame in frames]
            for sid, frames in state["stashed_frames"].items()
        }
        hub._next_auto_id = int(state["next_auto_id"])
        hub._next_shard_id = int(state["next_shard_id"])
        hub._streams_migrated = int(state["streams_migrated"])
        hub._retired_stats = [HubStats(**retired) for retired in state["retired_stats"]]
        hub._frame_observers = []
        for shard_id in state["shard_order"]:
            handle = _BACKENDS[hub.backend](shard_id, hub._hub_kwargs, state["shards"][shard_id])
            hub._ring.add_node(shard_id)
            hub._shards[shard_id] = handle
        return hub

    def checkpoint(self, path=None):
        """Snapshot the cluster durably; ``bytes``, or the path written."""
        return persist.checkpoint(self, path)

    @classmethod
    def restore(cls, source, backend: str | None = None) -> "ShardedHub":
        """Rebuild a cluster from a checkpoint (``bytes`` or a path)."""
        state = _read_state(source, cls.checkpoint_kind)
        return cls.from_state(state, backend=backend)

    def restore_streams(self, source, stream_ids=None) -> list[str]:
        """Re-serve streams from a cluster checkpoint onto the current ring.

        The crash-recovery half of :meth:`drop_shard`: pull the named
        sessions (default: every checkpointed stream this cluster is not
        currently serving) out of *source* and import them onto their
        current ring owners.  Each restored stream resumes from its
        checkpointed state — data ingested after the checkpoint is gone,
        which is exactly the durability contract of checkpointing.
        Returns the restored stream ids.
        """
        state = _read_state(source, self.checkpoint_kind)
        sessions: dict[str, dict] = {}
        for shard_state in state["shards"].values():
            for session_state in shard_state["sessions"]:
                sessions[str(session_state["stream_id"])] = session_state
        if stream_ids is None:
            targets = [sid for sid in sessions if sid not in self._streams]
        else:
            targets = list(stream_ids)
        restored: list[str] = []
        for stream_id in targets:
            if stream_id in self._streams:
                raise ClusterError(f"stream id {stream_id!r} is already being served")
            session_state = sessions.get(stream_id)
            if session_state is None:
                raise CheckpointError(f"checkpoint has no session for stream {stream_id!r}")
            owner = self._ring.node_for(stream_id)
            self._shards[owner].request("import", session_state)
            self._streams[stream_id] = owner
            restored.append(stream_id)
        # The checkpoint's coordinator-side queues for these streams come
        # back too: buffered batches re-queue onto the new owners (the next
        # tick delivers them) and stashed frames re-stash.
        restored_set = set(restored)
        for batches in state["pending"].values():
            for sid, ts, vs in batches:
                if str(sid) in restored_set:
                    owner = self._streams[str(sid)]
                    self._pending.setdefault(owner, []).append(
                        (
                            str(sid),
                            np.asarray(ts, dtype=np.float64),
                            np.asarray(vs, dtype=np.float64),
                        )
                    )
        for sid, frames in state["stashed_frames"].items():
            if str(sid) in restored_set:
                self._stashed_frames.setdefault(str(sid), []).extend(
                    _frame_from_state(frame) for frame in frames
                )
        return restored

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every shard worker (graceful; dead shards are skipped)."""
        for handle in self._shards.values():
            try:
                handle.shutdown()
            except ShardDownError:
                pass

    def __enter__(self) -> "ShardedHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardedHub(shards={len(self._shards)}, backend={self.backend!r}, "
            f"streams={len(self._streams)})"
        )
