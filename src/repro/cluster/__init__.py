"""repro.cluster — the sharded, durable serving tier.

One process (one :class:`~repro.service.StreamHub`) smooths as fast as one
core allows and forgets everything on restart.  This package scales past
both limits:

* :class:`ShardedHub` — the StreamHub API (``create_stream`` / ``ingest`` /
  ``tick`` / ``snapshot`` / ``close`` / ``stats``) routed over a
  consistent-hash ring (:class:`HashRing`, virtual nodes) to N shard
  workers, with one batched IPC round per shard per tick;
* shard backends (:mod:`repro.cluster.shard`) — in-process for tests and
  semantics, ``multiprocessing`` command-loop workers for real parallelism;
* live rebalancing — ``add_shard`` / ``remove_shard`` migrate exactly the
  streams whose ring owner changed, shipping persist-layer session
  snapshots (zero dropped panes, bit-identical subsequent frames);
* crash recovery — ``kill_shard`` (failure injection) surfaces as
  :class:`ShardDownError`; ``drop_shard`` + ``restore_streams`` re-serve
  the lost sessions from the last :mod:`repro.persist` checkpoint.
"""

from .ring import HashRing
from .shard import (
    ClusterError,
    InProcessShard,
    ProcessShard,
    RemoteShardError,
    ShardDownError,
    ShardProtocolError,
)
from .sharded import ShardedHub

__all__ = [
    "ShardedHub",
    "HashRing",
    "ClusterError",
    "ShardDownError",
    "ShardProtocolError",
    "RemoteShardError",
    "InProcessShard",
    "ProcessShard",
]
