"""Command-line entry point: ``python -m repro.experiments <exhibit> [--fast]``.

Runs one exhibit's regenerator and prints its table(s).  ``--fast`` shrinks
dataset scales and trial counts for a quick look; the defaults reproduce the
paper-scale configuration.  ``all`` runs every exhibit in order.
"""

from __future__ import annotations

import argparse
import sys

from . import EXHIBITS
from . import (
    casestudies,
    fig6_user_study,
    fig7_preference,
    fig8_strategies,
    fig9_preagg,
    fig10_streaming,
    fig11_factor,
    figa1_estimate,
    figa3_linear_algos,
    figb1_sensitivity,
    figb2_filters,
    table1_devices,
    table2_datasets,
    table4_pixel_error,
)


def _run_exhibit(name: str, fast: bool) -> str:
    scale = 0.1 if fast else 1.0
    trials = 10 if fast else 50
    budget = 0.5 if fast else 3.0
    if name == "table1":
        return table1_devices.format_result(table1_devices.run())
    if name == "table2":
        return table2_datasets.format_result(table2_datasets.run(scale=scale))
    if name == "fig6":
        return fig6_user_study.format_result(
            fig6_user_study.run(trials_per_cell=trials, dataset_scale=scale if fast else 1.0)
        )
    if name == "fig7":
        return fig7_preference.format_result(
            fig7_preference.run(dataset_scale=scale if fast else 1.0)
        )
    if name == "fig8":
        resolutions = (1000, 3000) if fast else (1000, 2000, 3000, 4000, 5000)
        return fig8_strategies.format_result(
            fig8_strategies.run(resolutions=resolutions, scale=scale, repeats=1)
        )
    if name == "fig9":
        resolutions = (1000, 3000) if fast else (1000, 2000, 3000, 4000, 5000)
        return fig9_preagg.format_result(
            fig9_preagg.run(resolutions=resolutions, scale=scale)
        )
    if name == "fig10":
        intervals = (1, 8, 64) if fast else (1, 2, 4, 8, 16, 32, 64, 128, 256)
        return fig10_streaming.format_result(
            fig10_streaming.run(intervals=intervals, scale=scale, time_budget=budget)
        )
    if name == "fig11":
        return fig11_factor.format_result(
            fig11_factor.run(scale=scale, time_budget=budget)
        )
    if name == "figa1":
        return figa1_estimate.format_result(figa1_estimate.run(scale=1.0))
    if name == "figa2":
        return fig9_preagg.format_datasets(fig9_preagg.run_datasets(scale=scale))
    if name == "figa3":
        return figa3_linear_algos.format_result(
            figa3_linear_algos.run(scale=scale, repeats=1)
        )
    if name == "table4":
        return table4_pixel_error.format_result(
            table4_pixel_error.run(scale=scale if fast else 1.0)
        )
    if name == "figb1":
        return figb1_sensitivity.format_result(
            figb1_sensitivity.run(trials_per_cell=trials, dataset_scale=scale if fast else 1.0)
        )
    if name == "figb2":
        return figb2_filters.format_result(figb2_filters.run(scale=scale if fast else 1.0))
    if name == "casestudies":
        return casestudies.render_all(scale=scale if fast else 1.0)
    raise KeyError(name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the ASAP paper.",
    )
    parser.add_argument(
        "exhibit",
        choices=sorted(EXHIBITS) + ["all"],
        help="which exhibit to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down quick run (small datasets, few trials)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        print(f"=== {name} ===")
        print(_run_exhibit(name, args.fast))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
