"""Figure 6: anomaly-identification accuracy and response time (Study I).

Seven visualization techniques x five datasets, a cohort of simulated
observers per cell.  The paper's findings this exhibit reproduces:

* ASAP has the highest accuracy on every dataset except Temp, where the
  oversmoothed plot wins;
* ASAP's average accuracy beats the original series by ~20-40 points and its
  response times are the lowest;
* quality of the alternatives varies widely across datasets.

Accuracy percentages are observer-model units (see DESIGN.md substitutions);
orderings are the reproduction target.
"""

from __future__ import annotations

from ..perception.study import (
    CellResult,
    StudyConfig,
    VISUALIZATIONS,
    anomaly_identification_study,
)
from .common import format_table

__all__ = ["run", "format_result", "summarize"]


def run(trials_per_cell: int = 50, dataset_scale: float = 1.0, seed: int = 7) -> list[CellResult]:
    """Run the full Study I grid."""
    config = StudyConfig(
        trials_per_cell=trials_per_cell, dataset_scale=dataset_scale, seed=seed
    )
    return anomaly_identification_study(config=config)


def summarize(cells: list[CellResult]) -> dict[str, tuple[float, float]]:
    """Per-visualization (mean accuracy, mean response time) across datasets."""
    grouped: dict[str, list[CellResult]] = {}
    for cell in cells:
        grouped.setdefault(cell.visualization, []).append(cell)
    return {
        vis: (
            sum(c.accuracy for c in group) / len(group),
            sum(c.mean_response_time for c in group) / len(group),
        )
        for vis, group in grouped.items()
    }


def format_result(cells: list[CellResult]) -> str:
    """Accuracy and response-time tables in the paper's dataset order."""
    datasets = list(dict.fromkeys(cell.dataset for cell in cells))
    by_key = {(c.dataset, c.visualization): c for c in cells}

    accuracy_rows = []
    time_rows = []
    for dataset in datasets:
        accuracy_rows.append(
            [dataset]
            + [f"{by_key[(dataset, v)].accuracy:.0%}" for v in VISUALIZATIONS]
        )
        time_rows.append(
            [dataset]
            + [f"{by_key[(dataset, v)].mean_response_time:.1f}" for v in VISUALIZATIONS]
        )
    headers = ["Dataset"] + list(VISUALIZATIONS)
    acc_table = format_table(headers, accuracy_rows, title="Figure 6 (top): accuracy")
    time_table = format_table(
        headers, time_rows, title="Figure 6 (bottom): response time (model sec)"
    )

    summary = summarize(cells)
    asap_acc, asap_rt = summary["ASAP"]
    others = [v for v in VISUALIZATIONS if v != "ASAP"]
    mean_other_acc = sum(summary[v][0] for v in others) / len(others)
    mean_other_rt = sum(summary[v][1] for v in others) / len(others)
    delta_acc = (asap_acc - mean_other_acc) * 100
    delta_rt = (1 - asap_rt / mean_other_rt) * 100
    return (
        f"{acc_table}\n\n{time_table}\n\n"
        f"ASAP vs mean of others: {delta_acc:+.1f} accuracy points, "
        f"{delta_rt:.1f}% faster (paper: +32.7% accuracy, 28.8% faster)"
    )


if __name__ == "__main__":
    print(format_result(run()))
