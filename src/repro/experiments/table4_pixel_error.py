"""Table 4: pixel error of ASAP, M4, line simplification, and PAA800.

Renders the original and each transformed series at the study resolution and
measures pixel disagreement.  The point of this exhibit is the *contrast in
goals*: M4 reproduces the raster almost exactly (error ~0.02), line
simplification stays close, PAA800 lands mid-range, and ASAP — which distorts
the plot on purpose — disagrees on most pixels (~0.9).  High ASAP pixel error
together with high Figure 6 task accuracy is the paper's argument that pixel
fidelity is the wrong metric for attention prioritization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..perception.study import USER_STUDY_DATASETS, render_visualization
from ..timeseries.datasets import load
from ..vis.pixel_error import pixel_error
from .common import format_table

__all__ = ["Row", "run", "format_result", "COMPARED", "PAPER_ERRORS"]

#: Techniques in the paper's Table 4 column order.
COMPARED = ("ASAP", "M4", "simp", "PAA800")

#: The paper's reported pixel errors, keyed (dataset, technique).
PAPER_ERRORS = {
    ("temp", "ASAP"): 0.94, ("temp", "M4"): 0.02, ("temp", "simp"): 0.06, ("temp", "PAA800"): 0.36,
    ("taxi", "ASAP"): 0.94, ("taxi", "M4"): 0.02, ("taxi", "simp"): 0.05, ("taxi", "PAA800"): 0.22,
    ("eeg", "ASAP"): 0.92, ("eeg", "M4"): 0.02, ("eeg", "simp"): 0.21, ("eeg", "PAA800"): 0.61,
    ("sine", "ASAP"): 0.93, ("sine", "M4"): 0.00, ("sine", "simp"): 0.00, ("sine", "PAA800"): 0.00,
    ("power", "ASAP"): 0.94, ("power", "M4"): 0.04, ("power", "simp"): 0.17, ("power", "PAA800"): 0.56,
}

_WIDTH = 800
_HEIGHT = 200


@dataclass(frozen=True)
class Row:
    dataset: str
    errors: dict[str, float]


def run(
    dataset_names: Sequence[str] = USER_STUDY_DATASETS,
    scale: float = 1.0,
    width: int = _WIDTH,
    height: int = _HEIGHT,
) -> list[Row]:
    """Measure pixel error of every compared technique on every dataset."""
    rows: list[Row] = []
    for name in dataset_names:
        values = load(name, scale=scale).series.values
        errors: dict[str, float] = {}
        for technique in COMPARED:
            plot = render_visualization(technique, values, width)
            errors[technique] = pixel_error(
                values,
                plot.values,
                width=width,
                height=height,
                transformed_positions=plot.positions,
            )
        rows.append(Row(dataset=name, errors=errors))
    return rows


def format_result(rows: list[Row]) -> str:
    body = []
    for row in rows:
        cells = [row.dataset]
        for technique in COMPARED:
            paper = PAPER_ERRORS.get((row.dataset, technique))
            paper_txt = f" ({paper:.2f})" if paper is not None else ""
            cells.append(f"{row.errors[technique]:.2f}{paper_txt}")
        body.append(cells)
    return format_table(
        ["Dataset"] + [f"{t} (paper)" for t in COMPARED],
        body,
        title="Table 4: pixel error, measured (paper)",
    )


if __name__ == "__main__":
    print(format_result(run()))
