"""Figure 8: search strategies over preaggregated data, varying resolution.

Compares grid search (steps 2 and 10), binary search, and ASAP against
exhaustive search on the same preaggregated inputs, across target
resolutions.  Both panels of the paper's figure are reported:

* **speed-up** — exhaustive search time / strategy search time;
* **roughness ratio** — strategy's achieved roughness / exhaustive's.

Paper shape: ASAP tracks binary search's speed (lagging up to ~50% due to
the ACF computation) at up to ~60x over exhaustive, with a roughness ratio
near 1; binary search is up to 7.5x rougher; Grid2 matches quality but not
speed; Grid10 has the worst quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.preaggregation import prepare_search_input
from ..core.search import run_strategy
from ..timeseries.datasets import PERFORMANCE_DATASETS, load
from .common import format_ratio, format_table, time_call

__all__ = ["Cell", "run", "format_result", "COMPARED_STRATEGIES"]

COMPARED_STRATEGIES = ("grid2", "grid10", "binary", "asap")

_RESOLUTIONS = (1000, 2000, 3000, 4000, 5000)
_EPSILON = 1e-12


@dataclass(frozen=True)
class Cell:
    """Averages for one (resolution, strategy) across the benchmark datasets."""

    resolution: int
    strategy: str
    speedup: float
    roughness_ratio: float


def run(
    resolutions: Sequence[int] = _RESOLUTIONS,
    dataset_names: Sequence[str] = PERFORMANCE_DATASETS,
    scale: float = 1.0,
    repeats: int = 3,
) -> list[Cell]:
    """Time every strategy on every dataset at every resolution."""
    datasets = [load(name, scale=scale) for name in dataset_names]
    cells: list[Cell] = []
    for resolution in resolutions:
        speedups: dict[str, list[float]] = {s: [] for s in COMPARED_STRATEGIES}
        ratios: dict[str, list[float]] = {s: [] for s in COMPARED_STRATEGIES}
        for dataset in datasets:
            # The shared pipeline stage produces the searched representation;
            # only the searches themselves are timed, as in the paper.
            values = prepare_search_input(dataset.series.values, resolution).values
            baseline = time_call(
                lambda v=values: run_strategy("exhaustive", v), repeats=repeats
            )
            base_roughness = max(baseline.result.roughness, _EPSILON)
            for strategy in COMPARED_STRATEGIES:
                timed = time_call(
                    lambda v=values, s=strategy: run_strategy(s, v), repeats=repeats
                )
                speedups[strategy].append(baseline.seconds / max(timed.seconds, _EPSILON))
                ratios[strategy].append(
                    max(timed.result.roughness, _EPSILON) / base_roughness
                )
        for strategy in COMPARED_STRATEGIES:
            cells.append(
                Cell(
                    resolution=resolution,
                    strategy=strategy,
                    speedup=float(np.mean(speedups[strategy])),
                    roughness_ratio=float(np.mean(ratios[strategy])),
                )
            )
    return cells


def format_result(cells: list[Cell]) -> str:
    resolutions = sorted({c.resolution for c in cells})
    by_key = {(c.resolution, c.strategy): c for c in cells}
    speed_rows = []
    ratio_rows = []
    for resolution in resolutions:
        speed_rows.append(
            [resolution]
            + [format_ratio(by_key[(resolution, s)].speedup) for s in COMPARED_STRATEGIES]
        )
        ratio_rows.append(
            [resolution]
            + [
                f"{by_key[(resolution, s)].roughness_ratio:.2f}"
                for s in COMPARED_STRATEGIES
            ]
        )
    headers = ["Resolution"] + [s.capitalize() for s in COMPARED_STRATEGIES]
    return (
        format_table(headers, speed_rows, title="Figure 8 (left): speed-up vs exhaustive")
        + "\n\n"
        + format_table(
            headers, ratio_rows, title="Figure 8 (right): roughness ratio vs exhaustive"
        )
    )


if __name__ == "__main__":
    print(format_result(run()))
