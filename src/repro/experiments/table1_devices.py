"""Table 1: devices and search-space reduction via pixel-aware preaggregation.

The paper lists five displays and the factor by which targeting each one
shrinks the window-search space for a 1M-point series.  The reduction is the
point-to-pixel ratio, so this exhibit is exact by construction — it validates
that our preaggregation module computes the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vis.devices import DEVICES, Device, reduction_factor
from .common import format_table

__all__ = ["Row", "run", "format_result", "PAPER_REDUCTIONS"]

_SERIES_POINTS = 1_000_000

#: Reductions reported in the paper's Table 1, keyed by device name.
PAPER_REDUCTIONS = {
    "38mm Apple Watch": 3676,
    "Samsung Galaxy S7": 694,
    '13" MacBook Pro': 434,
    "Dell 34 Curved Monitor": 291,
    '27" iMac Retina': 195,
}


@dataclass(frozen=True)
class Row:
    device: Device
    reduction: int
    paper_reduction: int


def run(n_points: int = _SERIES_POINTS) -> list[Row]:
    """Compute the reduction factor per Table 1 device."""
    return [
        Row(
            device=device,
            reduction=reduction_factor(n_points, device.horizontal),
            paper_reduction=PAPER_REDUCTIONS[device.name],
        )
        for device in DEVICES
    ]


def format_result(rows: list[Row]) -> str:
    """Print the table in the paper's layout, with the paper column."""
    return format_table(
        ["Device", "Resolution", "Reduction on 1M pts", "Paper"],
        [
            (
                row.device.name,
                row.device.resolution,
                f"{row.reduction}x",
                f"{row.paper_reduction}x",
            )
            for row in rows
        ],
        title="Table 1: search-space reduction via pixel-aware preaggregation",
    )


if __name__ == "__main__":
    print(format_result(run()))
