"""Experiment regenerators: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured rows and a
``format_result(...)`` printer.  ``python -m repro.experiments <exhibit>``
runs one from the command line; see DESIGN.md for the exhibit index.
"""

from . import (
    casestudies,
    fig6_user_study,
    fig7_preference,
    fig8_strategies,
    fig9_preagg,
    fig10_streaming,
    fig11_factor,
    figa1_estimate,
    figa3_linear_algos,
    figb1_sensitivity,
    figb2_filters,
    table1_devices,
    table2_datasets,
    table4_pixel_error,
)

#: CLI name -> module, in paper order.
EXHIBITS = {
    "table1": table1_devices,
    "table2": table2_datasets,
    "fig6": fig6_user_study,
    "fig7": fig7_preference,
    "fig8": fig8_strategies,
    "fig9": fig9_preagg,
    "fig10": fig10_streaming,
    "fig11": fig11_factor,
    "figa1": figa1_estimate,
    "figa2": fig9_preagg,  # Figure A.2 shares the preaggregation module
    "figa3": figa3_linear_algos,
    "table4": table4_pixel_error,
    "figb1": figb1_sensitivity,
    "figb2": figb2_filters,
    "casestudies": casestudies,
}

__all__ = ["EXHIBITS"]
