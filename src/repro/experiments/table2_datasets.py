"""Table 2: batch results per dataset — window choice and candidates searched.

For every reconstructed dataset, preaggregate to the paper's 1200-pixel
target, run exhaustive search and ASAP, and report the selected window plus
how many candidates each strategy actually smoothed.  The paper's headline:
ASAP matches exhaustive search's window on every dataset while checking ~13x
fewer candidates; Twitter AAPL is left unsmoothed (window 1) because of its
extreme kurtosis.

Window values are data-dependent, so our synthetic reconstructions yield
their own windows; the reproduction targets are (a) agreement between ASAP
and exhaustive search, (b) the candidate-count gap, and (c) the unsmoothed
Twitter AAPL row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.batch import find_window
from ..timeseries.datasets import DatasetInfo, available, load
from .common import format_table

__all__ = ["Row", "run", "format_result"]

_TARGET_RESOLUTION = 1200


@dataclass(frozen=True)
class Row:
    info: DatasetInfo
    n_loaded: int
    window_exhaustive: int
    candidates_exhaustive: int
    window_asap: int
    candidates_asap: int

    @property
    def windows_agree(self) -> bool:
        return self.window_exhaustive == self.window_asap


def run(
    scale: float = 1.0,
    resolution: int = _TARGET_RESOLUTION,
    dataset_names=None,
) -> list[Row]:
    """Run exhaustive vs ASAP over the (optionally scaled) datasets."""
    names = list(dataset_names) if dataset_names is not None else [
        name for name in available() if name != "cpu_util"
    ]
    rows: list[Row] = []
    for name in names:
        dataset = load(name, scale=scale)
        # The public pipeline path: preaggregate + search in one call, so the
        # exhibit exercises exactly what smooth() runs.
        exhaustive, _ = find_window(
            dataset.series.values, resolution=resolution, strategy="exhaustive"
        )
        asap, _ = find_window(dataset.series.values, resolution=resolution, strategy="asap")
        rows.append(
            Row(
                info=dataset.info,
                n_loaded=len(dataset.series),
                window_exhaustive=exhaustive.window,
                candidates_exhaustive=exhaustive.candidates_evaluated,
                window_asap=asap.window,
                candidates_asap=asap.candidates_evaluated,
            )
        )
    return rows


def format_result(rows: list[Row]) -> str:
    """Table 2 layout plus the paper's window/candidate columns."""
    body = []
    for row in rows:
        body.append(
            (
                row.info.name,
                row.n_loaded,
                row.info.duration,
                row.window_exhaustive,
                row.candidates_exhaustive,
                row.window_asap,
                row.candidates_asap,
                "yes" if row.windows_agree else "NO",
                f"{row.info.paper_window}/"
                f"{row.info.paper_candidates_exhaustive}/"
                f"{row.info.paper_candidates_asap}",
            )
        )
    mean_ex = sum(r.candidates_exhaustive for r in rows) / len(rows)
    mean_asap = sum(r.candidates_asap for r in rows) / len(rows)
    table = format_table(
        [
            "Dataset", "# points", "Duration",
            "Exh window", "Exh #cand", "ASAP window", "ASAP #cand",
            "Agree", "Paper w/ex/asap",
        ],
        body,
        title="Table 2: batch ASAP vs exhaustive search @1200px",
    )
    return (
        f"{table}\n"
        f"mean candidates: exhaustive {mean_ex:.2f}, ASAP {mean_asap:.2f} "
        f"({mean_ex / max(mean_asap, 1e-12):.1f}x fewer; paper: 113.64 vs 8.64, 13x)"
    )


if __name__ == "__main__":
    print(format_result(run()))
