"""Figure 10: streaming throughput vs refresh interval.

Streams two traces through :class:`~repro.core.streaming.StreamingASAP` at a
2000-pixel target, sweeping the on-demand refresh interval (measured in
aggregated points, as in the paper).  Expectation: a linear relationship in
log-log space — refreshing half as often processes points roughly twice as
fast, because the search dominates per-refresh cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..spec import AsapSpec
from ..stream.sources import ReplaySource
from ..timeseries.datasets import load
from .common import BudgetedRun, format_table, run_with_budget

__all__ = ["Cell", "run", "format_result", "fit_loglog_slope"]

_DATASETS = ("traffic_data", "machine_temp")
_INTERVALS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_RESOLUTION = 2000


@dataclass(frozen=True)
class Cell:
    dataset: str
    refresh_interval: int
    throughput: float
    points_processed: int


def run(
    dataset_names: Sequence[str] = _DATASETS,
    intervals: Sequence[int] = _INTERVALS,
    resolution: int = _RESOLUTION,
    scale: float = 1.0,
    time_budget: float = 3.0,
) -> list[Cell]:
    """Measure streaming throughput per (dataset, refresh interval)."""
    cells: list[Cell] = []
    for name in dataset_names:
        dataset = load(name, scale=scale)
        n = len(dataset.series)
        pane_size = max(n // resolution, 1)
        for interval in intervals:
            # The paper's measurement configuration, spelled as a spec: the
            # serving-tier extras (incremental stats, pyramid) are off so the
            # measured cost is exactly the operator the figure describes.
            operator = AsapSpec(
                pane_size=pane_size,
                resolution=resolution,
                refresh_interval=interval,
                incremental=False,
                keep_pane_sketches=True,
                pyramid=False,
            ).build_operator()
            outcome: BudgetedRun = run_with_budget(
                operator.push, ReplaySource(dataset.series), time_budget
            )
            cells.append(
                Cell(
                    dataset=name,
                    refresh_interval=interval,
                    throughput=outcome.throughput,
                    points_processed=outcome.points_processed,
                )
            )
    return cells


def fit_loglog_slope(cells: list[Cell], dataset: str) -> float:
    """Least-squares slope of log(throughput) vs log(interval) for one trace.

    The paper's Figure 10 shows this relationship is linear with slope ~1
    until per-point ingest costs (rather than search) dominate.
    """
    import numpy as np

    points = [(c.refresh_interval, c.throughput) for c in cells if c.dataset == dataset]
    if len(points) < 2:
        raise ValueError(f"need >= 2 intervals for dataset {dataset!r}")
    x = np.log([p[0] for p in points])
    y = np.log([max(p[1], 1e-12) for p in points])
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def format_result(cells: list[Cell]) -> str:
    datasets = list(dict.fromkeys(c.dataset for c in cells))
    intervals = sorted({c.refresh_interval for c in cells})
    by_key = {(c.dataset, c.refresh_interval): c for c in cells}
    rows = [
        [interval]
        + [f"{by_key[(d, interval)].throughput:,.0f}" for d in datasets]
        for interval in intervals
    ]
    table = format_table(
        ["Refresh interval (pts)"] + datasets,
        rows,
        title="Figure 10: streaming throughput (points/sec) @2000px",
    )
    slopes = ", ".join(
        f"{d}: slope={fit_loglog_slope(cells, d):.2f}" for d in datasets
    )
    return f"{table}\nlog-log fit ({slopes}); paper: linear (slope ~1)"


if __name__ == "__main__":
    print(format_result(run()))
