"""Figure B.2: alternative smoothing functions under ASAP's selection criterion.

For each user-study dataset, select every filter's parameter by ASAP's own
rule — minimize roughness subject to kurtosis preservation — and report the
achieved roughness relative to SMA's.  Paper shape:

* FFT-low can undercut SMA in roughness (ratios 0.03-0.36);
* SG1/SG4 land within roughly an order of magnitude of SMA;
* FFT-dominant and minmax are orders of magnitude rougher (they keep the
  strong high frequencies / maximize within-window spread respectively).

To keep the parameter sweeps tractable the comparison runs on the
pixel-aggregated series (800px), which is also what any of these filters
would be applied to in the ASAP pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.preaggregation import prepare_search_input
from ..core.search import asap_search
from ..spectral.convolution import sma
from ..spectral.filters import ParameterizedFilter, filter_registry
from ..timeseries.datasets import load
from ..timeseries.stats import kurtosis, roughness
from .common import format_table

__all__ = ["Cell", "run", "format_result", "select_parameter"]

_RESOLUTION = 800
_USER_STUDY = ("temp", "taxi", "eeg", "sine", "power")

#: The paper's reported roughness-vs-SMA ratios, keyed (dataset, filter).
PAPER_RATIOS = {
    ("temp", "FFT-low"): 0.08, ("temp", "FFT-dominant"): 315.82,
    ("temp", "SG1"): 1.77, ("temp", "SG4"): 6.50, ("temp", "minmax"): 316.35,
    ("taxi", "FFT-low"): 0.36, ("taxi", "FFT-dominant"): 169.51,
    ("taxi", "SG1"): 8.30, ("taxi", "SG4"): 20.98, ("taxi", "minmax"): 204.84,
    ("eeg", "FFT-low"): 0.03, ("eeg", "FFT-dominant"): 120.81,
    ("eeg", "SG1"): 0.63, ("eeg", "SG4"): 2.44, ("eeg", "minmax"): 148.77,
    ("sine", "FFT-low"): 0.04, ("sine", "FFT-dominant"): 49.21,
    ("sine", "SG1"): 2.58, ("sine", "SG4"): 23.91, ("sine", "minmax"): 50.45,
    ("power", "FFT-low"): 0.23, ("power", "FFT-dominant"): 31.13,
    ("power", "SG1"): 0.60, ("power", "SG4"): 1.04, ("power", "minmax"): 38.17,
}


@dataclass(frozen=True)
class Cell:
    dataset: str
    filter_name: str
    parameter: int | None
    achieved_roughness: float
    ratio_vs_sma: float


def select_parameter(
    values: np.ndarray, smoother: ParameterizedFilter
) -> tuple[int | None, float]:
    """Apply ASAP's criterion to one filter's parameter sweep.

    Returns ``(best_parameter, achieved_roughness)``; parameter None means no
    candidate satisfied the kurtosis constraint and the series stays
    unfiltered (achieved roughness = the input's).
    """
    original_kurtosis = kurtosis(values)
    best_param: int | None = None
    best_roughness = roughness(values)
    for param in smoother.candidates(values.size):
        try:
            smoothed = smoother.apply(values, param)
        except ValueError:
            continue
        if smoothed.size < 4:
            continue
        if kurtosis(smoothed) >= original_kurtosis and roughness(smoothed) < best_roughness:
            best_param = param
            best_roughness = roughness(smoothed)
    return best_param, best_roughness


def run(dataset_names: Sequence[str] = _USER_STUDY, scale: float = 1.0) -> list[Cell]:
    """Select parameters per filter and compare achieved roughness to SMA's."""
    registry = filter_registry()
    cells: list[Cell] = []
    for name in dataset_names:
        values = prepare_search_input(load(name, scale=scale).series.values, _RESOLUTION).values
        sma_window = asap_search(values).window
        sma_roughness = max(roughness(sma(values, sma_window)), 1e-12)
        for filter_name, smoother in registry.items():
            parameter, achieved = select_parameter(values, smoother)
            cells.append(
                Cell(
                    dataset=name,
                    filter_name=filter_name,
                    parameter=parameter,
                    achieved_roughness=achieved,
                    ratio_vs_sma=achieved / sma_roughness,
                )
            )
    return cells


def format_result(cells: list[Cell]) -> str:
    datasets = list(dict.fromkeys(c.dataset for c in cells))
    filters = list(dict.fromkeys(c.filter_name for c in cells))
    by_key = {(c.dataset, c.filter_name): c for c in cells}
    rows = []
    for dataset in datasets:
        cells_row = [dataset]
        for filter_name in filters:
            cell = by_key[(dataset, filter_name)]
            paper = PAPER_RATIOS.get((dataset, filter_name))
            paper_txt = f" ({paper:g})" if paper is not None else ""
            cells_row.append(f"{cell.ratio_vs_sma:.2f}x{paper_txt}")
        rows.append(cells_row)
    return format_table(
        ["Dataset"] + [f"{f} (paper)" for f in filters],
        rows,
        title="Figure B.2: achieved roughness vs SMA, measured (paper)",
    )


if __name__ == "__main__":
    print(format_result(run()))
