"""Figure 9 / Figure A.2: impact of pixel-aware preaggregation.

Four configurations over the baseline (exhaustive search on the raw series):

* ``Exhaustive`` — exhaustive search, raw series (the baseline itself);
* ``ASAPRaw``    — ASAP's pruned search, raw series (paper: ASAPno-agg);
* ``Grid1``      — exhaustive search on the preaggregated series;
* ``ASAP``       — the full pipeline (preaggregation + pruned search).

Reported per resolution: average speed-up over the baseline and average
achieved-roughness ratio (strategy output / baseline output).  The paper
finds preaggregation contributes several orders of magnitude while keeping
roughness within ~1.2x of the raw-series optimum.

Note on magnitudes: our exhaustive baseline evaluates each window in O(n)
via prefix sums, where the paper's strawman recomputes each window
aggregation; absolute speed-ups are therefore smaller here while the
ordering and per-optimization gaps are preserved (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.preaggregation import prepare_search_input
from ..core.search import run_strategy
from ..timeseries.datasets import load
from .common import format_ratio, format_table, time_call

__all__ = ["Cell", "run", "format_result", "CONFIGURATIONS", "run_datasets", "DatasetRow"]

#: Configuration -> (strategy, uses preaggregation).
CONFIGURATIONS = {
    "Exhaustive": ("exhaustive", False),
    "ASAPRaw": ("asap", False),
    "Grid1": ("exhaustive", True),
    "ASAP": ("asap", True),
}

_RESOLUTIONS = (1000, 2000, 3000, 4000, 5000)
_DATASETS = ("machine_temp", "traffic_data")
_EPSILON = 1e-12


@dataclass(frozen=True)
class Cell:
    resolution: int
    configuration: str
    speedup: float
    roughness_ratio: float


def _run_configuration(values: np.ndarray, configuration: str, resolution: int, repeats: int):
    strategy, preagg = CONFIGURATIONS[configuration]
    searched = prepare_search_input(values, resolution, use_preaggregation=preagg).values
    return time_call(lambda: run_strategy(strategy, searched), repeats=repeats)


def run(
    resolutions: Sequence[int] = _RESOLUTIONS,
    dataset_names: Sequence[str] = _DATASETS,
    scale: float = 1.0,
    repeats: int = 1,
) -> list[Cell]:
    """Sweep configurations x resolutions, averaging over datasets."""
    datasets = [load(name, scale=scale) for name in dataset_names]
    cells: list[Cell] = []
    for resolution in resolutions:
        speedups: dict[str, list[float]] = {c: [] for c in CONFIGURATIONS}
        ratios: dict[str, list[float]] = {c: [] for c in CONFIGURATIONS}
        for dataset in datasets:
            values = dataset.series.values
            baseline = _run_configuration(values, "Exhaustive", resolution, repeats)
            base_roughness = max(baseline.result.roughness, _EPSILON)
            for configuration in CONFIGURATIONS:
                if configuration == "Exhaustive":
                    timed = baseline
                else:
                    timed = _run_configuration(values, configuration, resolution, repeats)
                speedups[configuration].append(
                    baseline.seconds / max(timed.seconds, _EPSILON)
                )
                ratios[configuration].append(
                    max(timed.result.roughness, _EPSILON) / base_roughness
                )
        for configuration in CONFIGURATIONS:
            cells.append(
                Cell(
                    resolution=resolution,
                    configuration=configuration,
                    speedup=float(np.mean(speedups[configuration])),
                    roughness_ratio=float(np.mean(ratios[configuration])),
                )
            )
    return cells


@dataclass(frozen=True)
class DatasetRow:
    """Figure A.2's per-dataset throughput view (points/sec per config)."""

    dataset: str
    throughput: dict[str, float]


def run_datasets(
    dataset_names: Sequence[str] = _DATASETS,
    resolution: int = 1200,
    scale: float = 1.0,
    repeats: int = 1,
) -> list[DatasetRow]:
    """Figure A.2: throughput of each configuration on each dataset."""
    rows: list[DatasetRow] = []
    for name in dataset_names:
        dataset = load(name, scale=scale)
        values = dataset.series.values
        throughput: dict[str, float] = {}
        for configuration in CONFIGURATIONS:
            timed = _run_configuration(values, configuration, resolution, repeats)
            throughput[configuration] = values.size / max(timed.seconds, _EPSILON)
        rows.append(DatasetRow(dataset=name, throughput=throughput))
    return rows


def format_result(cells: list[Cell]) -> str:
    resolutions = sorted({c.resolution for c in cells})
    by_key = {(c.resolution, c.configuration): c for c in cells}
    names = list(CONFIGURATIONS)
    speed_rows = [
        [r] + [format_ratio(by_key[(r, c)].speedup) for c in names] for r in resolutions
    ]
    ratio_rows = [
        [r] + [f"{by_key[(r, c)].roughness_ratio:.2f}" for c in names]
        for r in resolutions
    ]
    headers = ["Resolution"] + names
    return (
        format_table(headers, speed_rows, title="Figure 9 (left): speed-up over baseline")
        + "\n\n"
        + format_table(
            headers, ratio_rows, title="Figure 9 (right): roughness ratio over baseline"
        )
    )


def format_datasets(rows: list[DatasetRow]) -> str:
    names = list(CONFIGURATIONS)
    body = [
        [row.dataset] + [f"{row.throughput[c]:,.0f}" for c in names] for row in rows
    ]
    return format_table(
        ["Dataset"] + names,
        body,
        title="Figure A.2: search throughput (points/sec) @1200px",
    )


if __name__ == "__main__":
    print(format_result(run()))
    print()
    print(format_datasets(run_datasets()))
