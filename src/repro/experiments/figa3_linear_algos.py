"""Figure A.3: runtime of ASAP against the O(n) reductions PAA and M4.

ASAP searches for a window, so it costs more than a single linear reduction
pass; the paper reports ASAP up to ~20x slower than PAA and ~13x slower than
M4 in absolute runtime (tens of milliseconds either way).  This experiment
times all three on the ten datasets of the paper's figure at the 1200-pixel
target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.batch import smooth
from ..timeseries.datasets import load
from ..vis.m4 import m4_aggregate
from ..vis.paa import paa
from .common import format_table, time_call

__all__ = ["Row", "run", "format_result", "FIGURE_DATASETS"]

#: The ten datasets of the paper's Figure A.3 (everything but Sine).
FIGURE_DATASETS = (
    "temp", "taxi", "eeg", "power", "sim_daily",
    "ramp_traffic", "twitter_aapl", "machine_temp", "traffic_data", "gas_sensor",
)

_RESOLUTION = 1200


@dataclass(frozen=True)
class Row:
    dataset: str
    n_points: int
    asap_ms: float
    paa_ms: float
    m4_ms: float


def run(
    dataset_names: Sequence[str] = FIGURE_DATASETS,
    resolution: int = _RESOLUTION,
    scale: float = 1.0,
    repeats: int = 3,
) -> list[Row]:
    """Time ASAP end-to-end vs one PAA pass vs one M4 pass per dataset."""
    rows: list[Row] = []
    for name in dataset_names:
        values = load(name, scale=scale).series.values
        asap = time_call(lambda v=values: smooth(v, resolution=resolution), repeats=repeats)
        paa_run = time_call(lambda v=values: paa(v, resolution), repeats=repeats)
        m4_run = time_call(lambda v=values: m4_aggregate(v, resolution), repeats=repeats)
        rows.append(
            Row(
                dataset=name,
                n_points=values.size,
                asap_ms=asap.seconds * 1e3,
                paa_ms=paa_run.seconds * 1e3,
                m4_ms=m4_run.seconds * 1e3,
            )
        )
    return rows


def format_result(rows: list[Row]) -> str:
    body = [
        (
            row.dataset,
            row.n_points,
            f"{row.asap_ms:.2f}",
            f"{row.paa_ms:.2f}",
            f"{row.m4_ms:.2f}",
        )
        for row in rows
    ]
    mean_asap = sum(r.asap_ms for r in rows) / len(rows)
    mean_paa = sum(r.paa_ms for r in rows) / len(rows)
    mean_m4 = sum(r.m4_ms for r in rows) / len(rows)
    table = format_table(
        ["Dataset", "# points", "ASAP (ms)", "PAA (ms)", "M4 (ms)"],
        body,
        title="Figure A.3: runtime of ASAP vs linear-time reductions @1200px",
    )
    return (
        f"{table}\n"
        f"means: ASAP {mean_asap:.1f}ms, PAA {mean_paa:.1f}ms, M4 {mean_m4:.1f}ms "
        f"(paper: 72.9 / 33.4 / 35.9 ms)"
    )


if __name__ == "__main__":
    print(format_result(run()))
