"""Figure 7: visual-preference study (Study II).

Twenty simulated participants per dataset choose which of four plots —
original, ASAP, PAA100, oversmoothed — best highlights the described anomaly.
Paper findings reproduced: ASAP preferred ~65% of trials overall (random
would be 25%); >70% on Taxi/EEG/Power; the Temp dataset flips to the
oversmoothed plot, and nobody prefers the original Temp plot.
"""

from __future__ import annotations

from ..perception.study import PREFERENCE_VISUALIZATIONS, StudyConfig, preference_study
from .common import format_table

__all__ = ["run", "format_result"]


def run(
    n_participants: int = 20, dataset_scale: float = 1.0, seed: int = 7
) -> dict[str, dict[str, float]]:
    """Run Study II; returns {dataset: {visualization: vote share}}."""
    config = StudyConfig(dataset_scale=dataset_scale, seed=seed)
    return preference_study(n_participants=n_participants, config=config)


def format_result(shares: dict[str, dict[str, float]]) -> str:
    rows = [
        [dataset] + [f"{shares[dataset][vis]:.0%}" for vis in PREFERENCE_VISUALIZATIONS]
        for dataset in shares
    ]
    datasets = list(shares)
    asap_mean = sum(shares[d]["ASAP"] for d in datasets) / len(datasets)
    table = format_table(
        ["Dataset"] + list(PREFERENCE_VISUALIZATIONS),
        rows,
        title="Figure 7: visual preference shares",
    )
    return (
        f"{table}\n"
        f"mean ASAP preference: {asap_mean:.0%} (paper: 65%; random: 25%)"
    )


if __name__ == "__main__":
    print(format_result(run()))
