"""Figure A.1: accuracy of the Equation 5 roughness estimate.

For the Temp dataset, compare the true roughness of ``SMA(X, w)`` against the
closed-form estimate ``sqrt(2)*sigma/w * sqrt(1 - N/(N-w)*ACF(X, w))`` across
all window sizes.  The paper reports estimate errors within 1.2% of the true
value; the roughness curve drops sharply at windows aligned with the ACF
peaks (multiples of the seasonal period).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.acf import autocorrelation
from ..core.metrics import roughness_estimate
from ..spectral.convolution import sma
from ..timeseries.datasets import load
from ..timeseries.stats import roughness, std
from .common import format_table

__all__ = ["Point", "run", "format_result", "max_error_percent"]


@dataclass(frozen=True)
class Point:
    window: int
    true_roughness: float
    estimated_roughness: float

    @property
    def error_percent(self) -> float:
        if self.true_roughness == 0.0:
            return 0.0
        return abs(self.estimated_roughness - self.true_roughness) / self.true_roughness * 100.0


def run(dataset: str = "temp", max_window: int = 140, scale: float = 1.0) -> list[Point]:
    """Evaluate the estimate for every window ``2..max_window``."""
    series = load(dataset, scale=scale).series
    values = series.values
    n = values.size
    limit = min(max_window, n - 2)
    sigma = std(values)
    acf = autocorrelation(values, max_lag=limit)
    points = []
    for window in range(2, limit + 1):
        points.append(
            Point(
                window=window,
                true_roughness=roughness(sma(values, window)),
                estimated_roughness=roughness_estimate(
                    sigma, n, window, float(acf[window])
                ),
            )
        )
    return points


def max_error_percent(points: list[Point]) -> float:
    """Worst relative estimate error across windows."""
    return max(p.error_percent for p in points)


def format_result(points: list[Point], every: int = 10) -> str:
    rows = [
        (p.window, p.true_roughness, p.estimated_roughness, f"{p.error_percent:.2f}%")
        for p in points
        if p.window % every == 0 or p.window == points[0].window
    ]
    table = format_table(
        ["Window", "True roughness", "Eq.5 estimate", "Error"],
        rows,
        title="Figure A.1: roughness estimate accuracy (Temp dataset)",
    )
    worst = max_error_percent(points)
    mean_err = float(np.mean([p.error_percent for p in points]))
    return (
        f"{table}\n"
        f"max error {worst:.2f}%, mean {mean_err:.2f}% over windows 2..{points[-1].window} "
        f"(paper: within 1.2%)"
    )


if __name__ == "__main__":
    print(format_result(run()))
