"""Shared plumbing for the experiment regenerators.

Each ``repro.experiments.<exhibit>`` module reproduces one table or figure:
it builds the paper's workload, runs the relevant code paths, and returns
structured rows plus a ``format_table`` printer emitting the same rows/series
the paper reports.  This module holds the pieces they share: wall-clock
timing, throughput measurement under a time budget, and plain-text table
formatting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "time_call",
    "Timed",
    "format_table",
    "format_ratio",
    "BudgetedRun",
    "run_with_budget",
]


@dataclass(frozen=True)
class Timed:
    """A function result together with its wall-clock duration."""

    result: object
    seconds: float


def time_call(fn: Callable[[], object], repeats: int = 1) -> Timed:
    """Run *fn* ``repeats`` times; keep the last result and the best time.

    Best-of-N damps scheduler noise the same way pytest-benchmark's min does.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return Timed(result=result, seconds=best)


@dataclass(frozen=True)
class BudgetedRun:
    """Outcome of feeding a stream operator under a time budget."""

    points_processed: int
    seconds: float

    @property
    def throughput(self) -> float:
        """Points per second (0 when nothing ran)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.points_processed / self.seconds


def run_with_budget(
    push: Callable[[object], object],
    items: Iterable[object],
    time_budget: float,
    check_every: int = 256,
) -> BudgetedRun:
    """Push items until exhausted or *time_budget* seconds elapse.

    Slow configurations (the paper's 0.01 pts/sec baseline would need a month
    to drain a full trace) are measured on however many points fit in the
    budget; throughput is points/elapsed either way.
    """
    if time_budget <= 0:
        raise ValueError(f"time_budget must be positive, got {time_budget}")
    start = time.perf_counter()
    processed = 0
    for item in items:
        push(item)
        processed += 1
        if processed % check_every == 0 and time.perf_counter() - start > time_budget:
            break
    return BudgetedRun(points_processed=processed, seconds=time.perf_counter() - start)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render rows as a fixed-width text table (right-aligned numerics)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Compact human formatting for speedups/ratios spanning many decades."""
    if value >= 1000:
        return f"{value:,.0f}x"
    if value >= 10:
        return f"{value:.0f}x"
    return f"{value:.2f}x"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:,.4g}" if abs(value) >= 1 else f"{value:.4f}"
    return str(value)
