"""Figure 11: factor analysis and lesion study of ASAP's three optimizations.

Streams the machine_temp trace at two display settings, toggling the three
optimizations:

* **Pixel** — pixel-aware preaggregation (pane size = point-to-pixel ratio
  vs 1);
* **AC** — autocorrelation-pruned search (ASAP vs exhaustive per refresh);
* **Lazy** — on-demand refresh (daily interval vs every aggregated point).

The factor analysis enables them cumulatively
(Baseline → +Pixel → +AC → +Lazy); the lesion study removes each one from the
full system.  Paper shape: each optimization contributes orders of magnitude;
removing any one costs two to three orders; without Pixel the two display
settings coincide (no resolution dependence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.streaming import StreamingASAP
from ..spec import AsapSpec
from ..stream.sources import ReplaySource
from ..timeseries.datasets import load
from .common import format_table, run_with_budget

__all__ = ["Config", "Cell", "FACTOR_STEPS", "LESION_STEPS", "run", "format_result"]

_DAILY_RAW_POINTS = 288  # the paper's "daily" refresh on 5-minute readings


@dataclass(frozen=True)
class Config:
    """One on/off assignment of the three optimizations."""

    label: str
    pixel: bool
    autocorrelation: bool
    lazy: bool


#: Cumulative enablement, in the paper's left-panel order.
FACTOR_STEPS = (
    Config("Baseline", pixel=False, autocorrelation=False, lazy=False),
    Config("+Pixel", pixel=True, autocorrelation=False, lazy=False),
    Config("+AC", pixel=True, autocorrelation=True, lazy=False),
    Config("+Lazy", pixel=True, autocorrelation=True, lazy=True),
)

#: Single-removal lesions, in the paper's right-panel order.
LESION_STEPS = (
    Config("no Pixel", pixel=False, autocorrelation=True, lazy=True),
    Config("no AC", pixel=True, autocorrelation=False, lazy=True),
    Config("no Lazy", pixel=True, autocorrelation=True, lazy=False),
    Config("ASAP", pixel=True, autocorrelation=True, lazy=True),
)


@dataclass(frozen=True)
class Cell:
    config: Config
    resolution: int
    throughput: float
    points_processed: int


def _build_operator(config: Config, n: int, resolution: int) -> StreamingASAP:
    ratio = max(n // resolution, 1)
    pane_size = ratio if config.pixel else 1
    if config.lazy:
        refresh = max(_DAILY_RAW_POINTS // pane_size, 1)
    else:
        refresh = 1
    strategy = "asap" if config.autocorrelation else "exhaustive"
    # The lesion grid as a spec; serving-tier extras stay off so each cell
    # measures exactly the factor combination the figure names.
    return AsapSpec(
        pane_size=pane_size,
        resolution=resolution,
        refresh_interval=refresh,
        strategy=strategy,
        incremental=False,
        keep_pane_sketches=True,
        pyramid=False,
    ).build_operator()


def run(
    configs: Sequence[Config] = FACTOR_STEPS + LESION_STEPS,
    resolutions: Sequence[int] = (2000, 5000),
    dataset: str = "machine_temp",
    scale: float = 1.0,
    time_budget: float = 2.0,
) -> list[Cell]:
    """Measure throughput for every configuration at every display setting."""
    data = load(dataset, scale=scale)
    n = len(data.series)
    cells: list[Cell] = []
    for resolution in resolutions:
        for config in configs:
            operator = _build_operator(config, n, resolution)
            outcome = run_with_budget(
                operator.push, ReplaySource(data.series), time_budget
            )
            cells.append(
                Cell(
                    config=config,
                    resolution=resolution,
                    throughput=outcome.throughput,
                    points_processed=outcome.points_processed,
                )
            )
    return cells


def format_result(cells: list[Cell]) -> str:
    resolutions = sorted({c.resolution for c in cells})
    by_key = {(c.config.label, c.resolution): c for c in cells}

    def table(steps, title):
        rows = []
        for config in steps:
            if (config.label, resolutions[0]) not in by_key:
                continue
            rows.append(
                [config.label]
                + [f"{by_key[(config.label, r)].throughput:,.1f}" for r in resolutions]
            )
        headers = ["Config"] + [f"{r}px" for r in resolutions]
        return format_table(headers, rows, title=title)

    return (
        table(FACTOR_STEPS, "Figure 11 (left): factor analysis, throughput pts/sec")
        + "\n\n"
        + table(LESION_STEPS, "Figure 11 (right): lesion study, throughput pts/sec")
    )


if __name__ == "__main__":
    print(format_result(run()))
