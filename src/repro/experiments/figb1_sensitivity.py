"""Figure B.1: sensitivity of study outcomes to roughness and kurtosis targets.

Two sweeps around ASAP's operating point, re-running the observer study on
each variant plot:

* **Roughness** — plots whose roughness is 8x, 4x, 2x, and 0.5x ASAP's
  (found by scanning windows for the closest achieved roughness);
* **Kurtosis** — windows chosen by ASAP's objective under a scaled
  constraint ``Kurt[Y] >= c * Kurt[X]`` for c in {0.5, 1.5, 2.0}.

Paper finding: rougher plots hurt accuracy (61.5%/55.8% at 8x/4x vs ~79% at
2x/0.5x); the kurtosis factor matters less; ASAP's configuration attains the
best average accuracy and lowest response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.preaggregation import prepare_search_input
from ..core.search import asap_search
from ..perception.observer import Observer
from ..perception.study import USER_STUDY_DATASETS, StudyConfig
from ..spectral.convolution import sma
from ..timeseries.datasets import load
from ..timeseries.stats import kurtosis, roughness
from .common import format_table

__all__ = ["Variant", "Cell", "VARIANTS", "run", "format_result"]

_RESOLUTION = 800


@dataclass(frozen=True)
class Variant:
    """One plot configuration of the sensitivity grid."""

    label: str
    kind: str  # "asap" | "roughness" | "kurtosis"
    factor: float = 1.0


VARIANTS: tuple[Variant, ...] = (
    Variant("ASAP", "asap"),
    Variant("8x", "roughness", 8.0),
    Variant("4x", "roughness", 4.0),
    Variant("2x", "roughness", 2.0),
    Variant("1/2x", "roughness", 0.5),
    Variant("k0.5", "kurtosis", 0.5),
    Variant("k1.5", "kurtosis", 1.5),
    Variant("k2", "kurtosis", 2.0),
)


@dataclass(frozen=True)
class Cell:
    dataset: str
    variant: str
    window: int
    accuracy: float
    mean_response_time: float


def _window_for_roughness(values: np.ndarray, target: float, max_window: int) -> int:
    """Window whose smoothed roughness is closest to *target*."""
    best_window, best_gap = 1, abs(roughness(values) - target)
    for window in range(2, max_window + 1):
        gap = abs(roughness(sma(values, window)) - target)
        if gap < best_gap:
            best_window, best_gap = window, gap
    return best_window


def _window_for_kurtosis_factor(values: np.ndarray, factor: float, max_window: int) -> int:
    """Exhaustive argmin-roughness under ``Kurt[Y] >= factor * Kurt[X]``."""
    threshold = factor * kurtosis(values)
    best_window, best_roughness = 1, roughness(values)
    for window in range(2, max_window + 1):
        smoothed = sma(values, window)
        if kurtosis(smoothed) >= threshold and roughness(smoothed) < best_roughness:
            best_window, best_roughness = window, roughness(smoothed)
    return best_window


def run(
    dataset_names: Sequence[str] = USER_STUDY_DATASETS,
    variants: Sequence[Variant] = VARIANTS,
    trials_per_cell: int = 50,
    dataset_scale: float = 1.0,
    seed: int = 11,
) -> list[Cell]:
    """Run the observer study on every variant of every dataset."""
    cfg = StudyConfig(trials_per_cell=trials_per_cell, dataset_scale=dataset_scale)
    cells: list[Cell] = []
    for dataset_index, name in enumerate(dataset_names):
        dataset = load(name, scale=dataset_scale)
        raw = dataset.series.values
        n_raw = raw.size
        agg = prepare_search_input(raw, _RESOLUTION)
        values, ratio = agg.values, agg.ratio
        max_window = max(values.size // 10, 2)
        asap_window = asap_search(values).window
        asap_roughness = roughness(sma(values, asap_window))
        true_region = dataset.anomalies[0].region_index(n_raw, cfg.regions)
        x_range = (0.0, float(n_raw - 1))
        for variant_index, variant in enumerate(variants):
            if variant.kind == "asap":
                window = asap_window
            elif variant.kind == "roughness":
                window = _window_for_roughness(
                    values, variant.factor * asap_roughness, max_window
                )
            else:
                window = _window_for_kurtosis_factor(values, variant.factor, max_window)
            displayed = sma(values, window)
            positions = np.arange(displayed.size) * ratio + (window * ratio - 1) / 2.0
            observer = Observer(seed=seed + 997 * dataset_index + variant_index)
            correct = np.zeros(trials_per_cell, dtype=bool)
            times = np.zeros(trials_per_cell)
            for trial_index in range(trials_per_cell):
                trial = observer.identify(
                    displayed,
                    true_region,
                    regions=cfg.regions,
                    width=cfg.width,
                    height=cfg.height,
                    positions=positions,
                    x_range=x_range,
                )
                correct[trial_index] = trial.correct
                times[trial_index] = trial.response_time
            cells.append(
                Cell(
                    dataset=name,
                    variant=variant.label,
                    window=window,
                    accuracy=float(correct.mean()),
                    mean_response_time=float(times.mean()),
                )
            )
    return cells


def format_result(cells: list[Cell]) -> str:
    datasets = list(dict.fromkeys(c.dataset for c in cells))
    variants = list(dict.fromkeys(c.variant for c in cells))
    by_key = {(c.dataset, c.variant): c for c in cells}
    acc_rows = [
        [d] + [f"{by_key[(d, v)].accuracy:.0%}" for v in variants] for d in datasets
    ]
    rt_rows = [
        [d] + [f"{by_key[(d, v)].mean_response_time:.1f}" for v in variants]
        for d in datasets
    ]
    headers = ["Dataset"] + variants
    means = {
        v: float(np.mean([by_key[(d, v)].accuracy for d in datasets])) for v in variants
    }
    mean_row = "mean accuracy: " + "  ".join(f"{v}={means[v]:.0%}" for v in variants)
    return (
        format_table(headers, acc_rows, title="Figure B.1 (top): accuracy by variant")
        + "\n\n"
        + format_table(
            headers, rt_rows, title="Figure B.1 (bottom): response time (model sec)"
        )
        + "\n"
        + mean_row
        + "\n(paper: 8x=61.5%, 4x=55.8%, 2x=78.6%, 1/2x=79.8%; ASAP best overall)"
    )


if __name__ == "__main__":
    print(format_result(run()))
