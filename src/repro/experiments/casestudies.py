"""Case-study plots: Figures 1-3 and Appendix C.

Renders raw-vs-ASAP comparisons for the narrative exhibits:

* Figure 1 — NYC taxi, the Thanksgiving dip (raw / ASAP / oversmoothed);
* Figure 2 — cluster CPU utilization, the obscured usage spike;
* Figure 3 — England temperature, the warming trend;
* Figure C.1 — Twitter AAPL, correctly left unsmoothed;
* Figure C.2 — remaining datasets, original vs ASAP.

Output is ASCII (sparklines/charts) since the environment has no display;
the same data can be exported to CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import smooth
from ..spectral.convolution import sma
from ..timeseries.datasets import load
from ..timeseries.stats import zscore
from ..vis.ascii_plot import side_by_side

__all__ = ["CaseStudy", "figure1", "figure2", "figure3", "figure_c1", "figure_c2", "render_all"]

_RESOLUTION = 800


@dataclass(frozen=True)
class CaseStudy:
    """A labelled set of plots sharing one underlying trace."""

    title: str
    plots: list[tuple[str, np.ndarray]]

    def render(self, width: int = 64) -> str:
        return f"{self.title}\n{side_by_side(self.plots, width=width)}"


def _asap_values(values: np.ndarray) -> np.ndarray:
    return smooth(values, resolution=_RESOLUTION).series.values


def figure1(scale: float = 1.0) -> CaseStudy:
    """Taxi: unsmoothed / ASAP / oversmoothed (the paper's opening example)."""
    values = load("taxi", scale=scale).series.values
    oversmoothed = sma(values, max(values.size // 4, 2))
    return CaseStudy(
        title="Figure 1: NYC taxi passengers (z-scores), Thanksgiving dip",
        plots=[
            ("Unsmoothed", zscore(values)),
            ("ASAP", zscore(_asap_values(values))),
            ("Oversmoothed", zscore(oversmoothed)),
        ],
    )


def figure2(scale: float = 1.0) -> CaseStudy:
    """CPU utilization: the spike hidden by fluctuations."""
    values = load("cpu_util", scale=scale).series.values
    return CaseStudy(
        title="Figure 2: cluster CPU utilization, spike near the end",
        plots=[
            ("Original", zscore(values)),
            ("ASAP", zscore(_asap_values(values))),
        ],
    )


def figure3(scale: float = 1.0) -> CaseStudy:
    """England temperature: the warming trend."""
    values = load("temp", scale=scale).series.values
    return CaseStudy(
        title="Figure 3: temperature in England, warming trend",
        plots=[
            ("Original", zscore(values)),
            ("ASAP", zscore(_asap_values(values))),
        ],
    )


def figure_c1(scale: float = 1.0) -> CaseStudy:
    """Twitter AAPL: high kurtosis, left unsmoothed by design."""
    values = load("twitter_aapl", scale=scale).series.values
    result = smooth(values, resolution=_RESOLUTION)
    label = f"ASAP (window={result.window}, unsmoothed)" if not result.smoothed else "ASAP"
    return CaseStudy(
        title="Figure C.1: Twitter mentions of Apple",
        plots=[("Original", values), (label, result.series.values)],
    )


def figure_c2(scale: float = 1.0) -> list[CaseStudy]:
    """Remaining datasets: original vs ASAP."""
    studies = []
    for name in ("sim_daily", "gas_sensor", "ramp_traffic", "machine_temp", "traffic_data"):
        values = load(name, scale=scale).series.values
        studies.append(
            CaseStudy(
                title=f"Figure C.2: {name}",
                plots=[
                    ("Original", zscore(values)),
                    ("ASAP", zscore(_asap_values(values))),
                ],
            )
        )
    return studies


def render_all(scale: float = 1.0, width: int = 64) -> str:
    """All case studies as one printable document."""
    sections = [
        figure1(scale).render(width),
        figure2(scale).render(width),
        figure3(scale).render(width),
        figure_c1(scale).render(width),
    ]
    sections.extend(study.render(width) for study in figure_c2(scale))
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(render_all())
