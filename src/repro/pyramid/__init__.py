"""repro.pyramid — the multi-resolution rollup tier.

Pixel-aware pre-aggregation (Section 4.4) is ASAP's biggest speedup lever,
and the serving workload multiplies it: many clients chart the *same* stream
at *different* pixel widths.  Instead of one pinned-resolution session per
client, a :class:`Pyramid` mirrors a stream's sliding window once and
maintains geometric rollup levels (1/4/16/64 base points per bucket)
incrementally in O(new values); a :class:`ViewSpec` then resolves any
requested pixel width to the nearest coarser level whose ratio divides the
window's point-to-pixel ratio, plus a residual re-bucket.

The resulting :class:`PyramidView` carries exactly the series the direct
pipeline (:func:`repro.core.preaggregation.prepare_search_input`) would have
searched — bit-identical when a level matches the ratio (residual 1), within
1e-9 otherwise — plus the ``window_in_original_units`` map back to base
units, so every consumer (the streaming operator's attached pyramid, the
StreamHub's ``snapshot(stream_id, resolution=...)``) serves results
equivalent to running the from-scratch operator on the directly
pre-aggregated window.

Maintenance is exact (the same reshape/mean reduction as ``bucket_means``,
with raw-tail carry-over across batch boundaries), and the drift guard
mirrors :class:`repro.core.streaming.RollingWindowState`:
``Pyramid.verify_levels()`` recomputes every coverable bucket from the base
mirror and raises :class:`PyramidDriftError` on any disagreement;
``Pyramid.rebuild()`` forces the recomputation.
"""

from .rollup import (
    DEFAULT_LEVEL_RATIOS,
    LevelStats,
    Pyramid,
    PyramidDriftError,
    PyramidError,
    PyramidLevel,
    PyramidStats,
)
from .view import PyramidView, ViewSpec

__all__ = [
    "DEFAULT_LEVEL_RATIOS",
    "LevelStats",
    "Pyramid",
    "PyramidDriftError",
    "PyramidError",
    "PyramidLevel",
    "PyramidStats",
    "PyramidView",
    "ViewSpec",
]
