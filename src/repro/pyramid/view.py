"""View resolution: requested pixel width -> pyramid level + residual re-bucket.

A client asks for a pixel width; the pyramid owns rollup levels at a few
geometric ratios.  :class:`ViewSpec` names the request and
:class:`PyramidView` is the resolved answer: the bucketed series at exactly
the point-to-pixel ratio the direct pipeline would have used, assembled from
the *nearest coarser level whose ratio divides it* plus a residual re-bucket
(groups of ``residual`` level buckets averaged into one view bucket).

The divisibility constraint is what keeps views honest: a view bucket must
cover exactly ``ratio`` base points, so the serving path's output is
equivalent to running the from-scratch operator on the directly
pre-aggregated window — bit-identical values when a level matches the ratio
exactly (``residual == 1``), within 1e-9 otherwise (mean-of-equal-sized-means
vs one flat mean).  When no coarser level divides the ratio the base level
(ratio 1) always does, and the view degenerates to the direct bucketing
itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ViewSpec", "PyramidView"]


@dataclass(frozen=True)
class ViewSpec:
    """One client's view request: a pixel width plus tail semantics.

    ``include_partial`` mirrors :func:`repro.core.preaggregation.preaggregate`'s
    switch: when True, base points beyond the last complete view bucket are
    appended as one final (under-weighted) point instead of being dropped.
    """

    resolution: int
    include_partial: bool = False

    def __post_init__(self) -> None:
        if self.resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {self.resolution}")


@dataclass(frozen=True)
class PyramidView:
    """A resolved multi-resolution view: the searched series plus its map back.

    ``values``/``timestamps`` are the view's bucketed series (timestamps are
    each bucket's first base timestamp).  ``ratio`` is the effective
    point-to-pixel ratio in *base* units — exactly what direct
    preaggregation of the covered span would use — served from the rollup
    level with ``level_ratio`` by averaging ``residual`` consecutive level
    buckets per view bucket.  ``base_start``/``base_end`` are global base
    indices (counted from the first value ever ingested) of the covered
    span; ``partial_points`` counts the base values represented by a trailing
    partial bucket (0 unless the view was requested with
    ``include_partial=True`` and a remainder existed).
    """

    values: np.ndarray
    timestamps: np.ndarray
    ratio: int
    level_ratio: int
    residual: int
    base_start: int
    base_end: int
    partial_points: int

    @property
    def applied(self) -> bool:
        """Whether any bucketing actually happened (ratio > 1)."""
        return self.ratio > 1

    @property
    def base_length(self) -> int:
        """Base values covered by this view (complete buckets + partial)."""
        return self.base_end - self.base_start

    def window_in_original_units(self, window: int) -> int:
        """Translate a window on the view back to base-unit points.

        The inverse direction round-trips exactly for any window the view
        can express: ``window_in_original_units(w) // ratio == w``.
        """
        return int(window) * self.ratio
